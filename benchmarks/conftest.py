"""Shared fixtures and helpers for the benchmark harness.

Every module in this directory regenerates one figure of the paper (or one
ablation called out in DESIGN.md).  The benchmarks are written against
pytest-benchmark: run them with

    pytest benchmarks/ --benchmark-only

Absolute times will differ from the 1986 VAX/Pascal numbers; the reproduced
quantity is the *shape* of each figure (who wins and by roughly what
factor), which the modules assert explicitly.
"""

from __future__ import annotations

import pytest

from repro.machines.sieve import prepare_sieve_workload
from repro.machines.stack_machine import build_stack_machine

#: Sieve size whose workload is of the same order as the paper's benchmark
#: (the thesis ran its stack machine for 5545 cycles; size 20 needs ~5600).
PAPER_SIEVE_SIZE = 20

#: The exact cycle count reported in Figure 5.1.
PAPER_CYCLES = 5545


@pytest.fixture(scope="session")
def sieve_workload():
    """The Figure 5.1 workload: the sieve program plus its ISP measurements."""
    return prepare_sieve_workload(PAPER_SIEVE_SIZE)


@pytest.fixture(scope="session")
def sieve_machine(sieve_workload):
    """The stack machine built around the Figure 5.1 sieve program."""
    return build_stack_machine(sieve_workload.program)


@pytest.fixture(scope="session")
def small_sieve_workload():
    """A smaller sieve used by benchmarks that run many repetitions."""
    return prepare_sieve_workload(6)


@pytest.fixture(scope="session")
def small_sieve_machine(small_sieve_workload):
    return build_stack_machine(small_sieve_workload.program)
