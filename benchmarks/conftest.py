"""Shared fixtures and helpers for the benchmark harness.

Every module in this directory regenerates one figure of the paper (or one
ablation called out in DESIGN.md).  The benchmarks are written against
pytest-benchmark: run them with

    pytest benchmarks/ --benchmark-only

Absolute times will differ from the 1986 VAX/Pascal numbers; the reproduced
quantity is the *shape* of each figure (who wins and by roughly what
factor), which the modules assert explicitly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.machines.sieve import prepare_sieve_workload
from repro.machines.stack_machine import build_stack_machine

#: Sieve size whose workload is of the same order as the paper's benchmark
#: (the thesis ran its stack machine for 5545 cycles; size 20 needs ~5600).
PAPER_SIEVE_SIZE = 20

#: The exact cycle count reported in Figure 5.1.
PAPER_CYCLES = 5545

#: Machine-readable performance trajectory written after the Figure 5.1
#: module runs: per-backend prepare/run seconds plus speedup ratios, so CI
#: can hold the perf line across PRs without parsing benchmark output.
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_fig5_1.json"

#: Schema version of the trajectory file (bump when keys change).
TRAJECTORY_SCHEMA = 1


def write_trajectory(
    backends: dict[str, dict[str, float]],
    cycles: int = PAPER_CYCLES,
    path: Path = TRAJECTORY_PATH,
) -> dict:
    """Write ``BENCH_fig5_1.json`` from per-backend timing rows.

    *backends* maps backend name to a dict with at least
    ``prepare_seconds`` and ``run_seconds``.  Speedups are computed against
    the interpreter row (run phase, and prepare+run end to end).
    """
    interpreter = backends["interpreter"]
    speedups = {}
    for name, row in backends.items():
        if name == "interpreter":
            continue
        if row["run_seconds"] > 0:
            speedups[f"{name}_vs_interpreter"] = round(
                interpreter["run_seconds"] / row["run_seconds"], 3
            )
        total = row["prepare_seconds"] + row["run_seconds"]
        reference_total = (
            interpreter["prepare_seconds"] + interpreter["run_seconds"]
        )
        if total > 0:
            speedups[f"{name}_end_to_end"] = round(reference_total / total, 3)
    document = {
        "schema": TRAJECTORY_SCHEMA,
        "figure": "5.1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": {
            "machine": "stack-machine-sieve",
            "sieve_size": PAPER_SIEVE_SIZE,
            "cycles": cycles,
        },
        "backends": {
            name: {key: round(value, 6) for key, value in row.items()}
            for name, row in backends.items()
        },
        "speedups": speedups,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


@pytest.fixture(scope="session")
def sieve_workload():
    """The Figure 5.1 workload: the sieve program plus its ISP measurements."""
    return prepare_sieve_workload(PAPER_SIEVE_SIZE)


@pytest.fixture(scope="session")
def sieve_machine(sieve_workload):
    """The stack machine built around the Figure 5.1 sieve program."""
    return build_stack_machine(sieve_workload.program)


@pytest.fixture(scope="session")
def small_sieve_workload():
    """A smaller sieve used by benchmarks that run many repetitions."""
    return prepare_sieve_workload(6)


@pytest.fixture(scope="session")
def small_sieve_machine(small_sieve_workload):
    return build_stack_machine(small_sieve_workload.program)
