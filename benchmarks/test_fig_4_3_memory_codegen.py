"""Experiment E4 — Figure 4.3: memory specification and generated code.

The figure's memory ``M memory address data operation -4 12 34 56 78``
demonstrates three things the benchmark asserts and measures: the
initialisation procedure built from the value list, the four-way operation
dispatch (read / write / input / output), and the trace-read / trace-write
statements guarded by the paper's ``land(op, 5) = 5`` and ``land(op, 9) = 8``
conditions.
"""

import pytest

from repro.compiler import CodegenOptions, generate_pascal, generate_python
from repro.compiler.compiled import CompiledBackend
from repro.core.simulator import Simulator
from repro.rtl.parser import parse_spec

FIGURE_4_3_SPEC = """\
# figure 4.3 memory example: cycles through read and write operations
memory address data operation tick .
M memory address.0.1 data operation.0.1 -4 12 34 56 78
A address 4 tick 0
A data 4 memory 1
A operation 2 tick.0 0
A tick 4 ticker 1
M ticker 0 tick 1 1
.
"""


@pytest.fixture(scope="module")
def spec():
    return parse_spec(FIGURE_4_3_SPEC)


def test_fig_4_3_python_code_generation(benchmark, spec):
    source = benchmark(generate_python, spec)
    assert "m_memory[0] = 12" in source and "m_memory[3] = 78" in source
    assert "_op = o_memory & 3" in source
    assert "io.read(a_memory, cycle=cyclecount)" in source
    assert "io.write(a_memory, d_memory, cycle=cyclecount)" in source


def test_fig_4_3_pascal_code_generation(benchmark, spec):
    source = benchmark(generate_pascal, spec)
    assert "ljbmemory[0] := 12;" in source
    assert "case land(opnmemory, 3) of" in source
    assert "tempmemory := sinput(adrmemory);" in source


def test_fig_4_3_trace_statements_emitted(benchmark):
    traced_spec = parse_spec(
        "# traced memory\nm .\nM m 0 7 5 1\n.",
    )
    source = benchmark(generate_python, traced_spec)
    assert "trace_log.record_access" in source


def test_fig_4_3_memory_simulation(benchmark, spec):
    """Alternating read/write traffic against the initialised memory."""
    simulator = Simulator(spec, backend="compiled")

    def run():
        return simulator.run(cycles=400, trace=False, collect_stats=False)

    result = benchmark(run)
    assert len(result.memory("memory")) == 4


def test_fig_4_3_constant_operation_specialisation(benchmark):
    """Constant memory operations drop the dispatch (Section 4.4)."""
    spec = parse_spec("# register\nr .\nM r 0 5 1 1\n.")
    generic = generate_python(spec, CodegenOptions(specialize_constant_memory_ops=False))
    specialised = benchmark(generate_python, spec)
    assert "_op = o_r & 3" in generic
    assert "_op = o_r & 3" not in specialised
