"""Experiment E9 — how the compiled-vs-interpreted speedup scales with design size.

Section 5.2 notes that ASIM's interpretation overhead made it "too slow to
simulate a usable microprocessor specification" while small designs were
tolerable.  This ablation measures both backends across the bundled machines
— from the 4-component counter to the 42-component stack machine — so the
speedup-vs-size trend can be read off the benchmark table.
"""

import pytest

from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.interp.interpreter import InterpreterBackend
from repro.machines import (
    build_counter_spec,
    build_gcd_spec,
    build_stack_machine_spec,
    build_traffic_light_spec,
    prepare_division_workload,
    prepare_sieve_workload,
)
from repro.machines.tiny_computer import build_tiny_computer_spec

CYCLES = 2000


def _machines():
    return {
        "counter-4-components": build_counter_spec(width_bits=8),
        "traffic-light-9-components": build_traffic_light_spec(),
        "gcd-9-components": build_gcd_spec(2520, 1155),
        "tiny-computer-29-components": build_tiny_computer_spec(
            prepare_division_workload(900, 7).program
        ),
        "stack-machine-42-components": build_stack_machine_spec(
            prepare_sieve_workload(20).program
        ),
    }


_SPECS = _machines()


@pytest.mark.parametrize("name", list(_SPECS))
def test_scaling_interpreter(benchmark, name):
    spec = _SPECS[name]
    prepared = InterpreterBackend().prepare(spec)

    def run():
        return prepared.run(cycles=CYCLES, trace=False, collect_stats=False)

    result = benchmark(run)
    assert result.cycles_run == CYCLES
    benchmark.extra_info["components"] = len(spec.components)


@pytest.mark.parametrize("name", list(_SPECS))
def test_scaling_compiled(benchmark, name):
    spec = _SPECS[name]
    prepared = CompiledBackend(CodegenOptions.fastest()).prepare(spec)

    def run():
        return prepared.run(cycles=CYCLES, trace=False, collect_stats=False)

    result = benchmark(run)
    assert result.cycles_run == CYCLES
    benchmark.extra_info["components"] = len(spec.components)


def test_scaling_speedup_grows_with_design_size(benchmark):
    """The bigger the specification, the more the compiled backend gains."""
    import time

    def measure():
        speedups = {}
        for name, spec in _SPECS.items():
            interpreter = InterpreterBackend().prepare(spec)
            compiled = CompiledBackend(CodegenOptions.fastest()).prepare(spec)
            start = time.perf_counter()
            interpreter.run(cycles=500, trace=False, collect_stats=False)
            interp_seconds = time.perf_counter() - start
            start = time.perf_counter()
            compiled.run(cycles=500, trace=False, collect_stats=False)
            compiled_seconds = time.perf_counter() - start
            speedups[name] = interp_seconds / max(compiled_seconds, 1e-9)
        return speedups

    speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, speedup in speedups.items():
        benchmark.extra_info[name] = round(speedup, 1)
    # every design benefits, and the processor-scale designs benefit at least
    # as much as the toy designs (the paper's motivation for ASIM II)
    assert all(speedup > 1.0 for speedup in speedups.values())
    assert speedups["stack-machine-42-components"] >= speedups["counter-4-components"]
