"""Experiment E3 — Figure 4.2: selector specification and generated code.

The figure shows a four-way selector compiling to a case statement over the
index expression.  The benchmark regenerates the code for both backends,
asserts the dispatch structure, and measures a simulation in which the
selector is exercised across all of its cases every cycle.
"""

import pytest

from repro.compiler import generate_pascal, generate_python
from repro.core.simulator import Simulator
from repro.rtl.parser import parse_spec

FIGURE_4_2_SPEC = """\
# figure 4.2 selector example
selector index value0 value1 value2 value3 out .
S selector index.0.1 value0 value1 value2 value3
A index 4 out 1
M value0 0 0 0 -1 10
M value1 0 0 0 -1 11
M value2 0 0 0 -1 12
M value3 0 0 0 -1 13
M out 0 selector 1 1
.
"""


@pytest.fixture(scope="module")
def spec():
    return parse_spec(FIGURE_4_2_SPEC)


def test_fig_4_2_python_code_generation(benchmark, spec):
    source = benchmark(generate_python, spec)
    assert "if _i == 0:" in source
    assert "v_selector = t_value0" in source
    assert "selector_case_error('selector', _i, 4, cyclecount)" in source


def test_fig_4_2_pascal_code_generation(benchmark, spec):
    source = benchmark(generate_pascal, spec)
    assert "0 : ljbselector := tempvalue0;" in source
    assert "3 : ljbselector := tempvalue3;" in source


def test_fig_4_2_selector_simulation(benchmark, spec):
    """Simulate the figure's selector sweeping its whole case list."""
    simulator = Simulator(spec, backend="compiled")

    def run():
        return simulator.run(cycles=200, trace=False, collect_stats=False)

    result = benchmark(run)
    # after the pipeline fills, the selector endlessly cycles 10, 11, 12, 13
    assert result.value("selector") in (10, 11, 12, 13)
