"""Experiment E7 — level-of-abstraction ablation: ISP vs RTL simulation.

Sections 1.2-1.3 of the paper place ISP (instruction set level) simulation
above RTL simulation: it is faster but "does not provide any data concerning
concurrency, timing, or interconnection".  This benchmark runs the same
sieve program at both levels — the instruction-level simulator of
:mod:`repro.isa.isp` and the compiled RTL stack machine — and records the
cost of the extra fidelity (cycles, per-component activity) that only the
RTL model provides.
"""

from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.isa.isp import StackIspSimulator


def test_ablation_isp_simulation(benchmark, small_sieve_workload):
    simulator = StackIspSimulator(small_sieve_workload.program)
    result = benchmark(simulator.run)
    assert result.outputs == small_sieve_workload.outputs
    assert result.halted
    benchmark.extra_info["instructions"] = result.instructions_executed


def test_ablation_rtl_simulation(benchmark, small_sieve_machine, small_sieve_workload):
    prepared = CompiledBackend(CodegenOptions.fastest()).prepare(
        small_sieve_machine.spec
    )

    def run():
        return prepared.run(
            cycles=small_sieve_workload.cycles_needed, trace=False,
            collect_stats=False,
        )

    result = benchmark(run)
    assert result.output_integers() == small_sieve_workload.outputs
    benchmark.extra_info["cycles"] = result.cycles_run


def test_ablation_rtl_provides_timing_information(
    benchmark, small_sieve_machine, small_sieve_workload
):
    """Only the RTL run yields cycle counts and per-memory access statistics."""
    prepared = CompiledBackend(CodegenOptions.fastest()).prepare(
        small_sieve_machine.spec
    )

    def run():
        return prepared.run(cycles=small_sieve_workload.cycles_needed, trace=False)

    rtl_result = benchmark(run)
    isp_result = StackIspSimulator(small_sieve_workload.program).run()

    # identical architecture-level behaviour ...
    assert rtl_result.output_integers() == isp_result.outputs
    # ... but the RTL model additionally reports the machine-cycle cost
    assert rtl_result.stats.cycles == small_sieve_workload.cycles_needed
    assert rtl_result.stats.cycles >= 4 * isp_result.instructions_executed
