"""Experiment E6 — ablation of the Section 4.4 optimizations.

ASIM II inlines constant ALU functions and drops the operation dispatch of
constant-operation memories.  This ablation compiles the sieve stack machine
with and without those optimizations (plus the constant-selector folding
this reproduction adds) and compares simulation time; results must stay
functionally identical in every configuration.
"""

import pytest

from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions, analyze_specification

CONFIGURATIONS = {
    "all-optimizations": CodegenOptions.fastest(),
    "no-inline-alu": CodegenOptions(
        inline_constant_functions=False,
        emit_cycle_trace=False, emit_access_trace=False,
    ),
    "no-memory-specialisation": CodegenOptions(
        specialize_constant_memory_ops=False,
        emit_cycle_trace=False, emit_access_trace=False,
    ),
    "no-selector-folding": CodegenOptions(
        fold_constant_selectors=False,
        emit_cycle_trace=False, emit_access_trace=False,
    ),
    "unoptimized": CodegenOptions(
        inline_constant_functions=False,
        specialize_constant_memory_ops=False,
        fold_constant_selectors=False,
        emit_cycle_trace=False, emit_access_trace=False,
    ),
}


@pytest.fixture(scope="module")
def reference_outputs(small_sieve_machine, small_sieve_workload):
    prepared = CompiledBackend(CodegenOptions.fastest()).prepare(
        small_sieve_machine.spec
    )
    result = prepared.run(cycles=small_sieve_workload.cycles_needed, trace=False)
    assert result.output_integers() == small_sieve_workload.outputs
    return result.output_integers()


@pytest.mark.parametrize("name", list(CONFIGURATIONS))
def test_ablation_codegen_configuration(
    benchmark, name, small_sieve_machine, small_sieve_workload, reference_outputs
):
    options = CONFIGURATIONS[name]
    prepared = CompiledBackend(options).prepare(small_sieve_machine.spec)

    def run():
        return prepared.run(
            cycles=small_sieve_workload.cycles_needed,
            trace=False,
            collect_stats=False,
        )

    result = benchmark(run)
    assert result.output_integers() == reference_outputs

    report = analyze_specification(small_sieve_machine.spec, options)
    benchmark.extra_info["inlined_alus"] = report.inlined_alu_count
    benchmark.extra_info["specialized_memories"] = report.specialized_memory_count


def test_ablation_optimizations_do_not_change_results(
    benchmark, small_sieve_machine, small_sieve_workload
):
    """Functional invariance across every configuration (run once each)."""

    def run_all():
        outputs = []
        for options in CONFIGURATIONS.values():
            prepared = CompiledBackend(options).prepare(small_sieve_machine.spec)
            result = prepared.run(
                cycles=small_sieve_workload.cycles_needed, trace=False,
                collect_stats=False,
            )
            outputs.append(tuple(result.output_integers()))
        return outputs

    outputs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert len(set(outputs)) == 1
    assert list(outputs[0]) == small_sieve_workload.outputs
