"""Experiment E1 — Figure 3.1: bit concatenation.

The figure illustrates the expression ``mem.3.4, #01, count.1``: two bits of
``mem``, a two-bit literal and one bit of ``count`` concatenated into a
five-bit value.  The benchmark measures parsing and evaluating that exact
expression (the operation at the heart of every generated statement) and
asserts the layout the figure draws.
"""

from repro.rtl.expressions import parse_expression

FIGURE_EXPRESSION = "mem.3.4,#01,count.1"
_VALUES = {"mem": 0b11000, "count": 0b10}


def _lookup(name: str) -> int:
    return _VALUES[name]


def test_fig_3_1_parse_expression(benchmark):
    expression = benchmark(parse_expression, FIGURE_EXPRESSION)
    assert expression.total_width == 5
    assert [field.to_spec() for field in expression.fields] == [
        "mem.3.4", "#01", "count.1",
    ]


def test_fig_3_1_evaluate_concatenation(benchmark):
    expression = parse_expression(FIGURE_EXPRESSION)
    value = benchmark(expression.evaluate, _lookup)
    # leftmost field most significant: [mem.4 mem.3 | 0 1 | count.1]
    assert value == 0b11_01_1


def test_fig_3_1_generated_python_matches(benchmark):
    expression = parse_expression(FIGURE_EXPRESSION)
    code = expression.to_python(lambda name: f"v_{name}")
    compiled = compile(code, "<figure31>", "eval")
    env = {f"v_{name}": value for name, value in _VALUES.items()}
    value = benchmark(eval, compiled, env)
    assert value == expression.evaluate(_lookup)
