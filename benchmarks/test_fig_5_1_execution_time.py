"""Experiment E5 — Figure 5.1: execution time comparison of ASIM and ASIM II.

The paper's table (times in seconds, VAX 11/780, stack machine sieve run for
5545 cycles):

    ASIM            Generate tables    10.8
                    Simulation time   310.6
    ASIM II         Generate code      34.2
                    Pascal Compile     43.2
                    Simulation time    15.0
    Traditional     Generate Prototype ~100000
                    Run Prototype       ~0.01

i.e. the compiled simulator is ~20x faster than the interpreter on the
simulation phase and ~2.5x faster end to end, at the price of a longer
preparation phase.  This module reproduces each row on the same workload
(our rebuilt stack machine running the sieve for exactly 5545 cycles) and a
summary test asserts the shape: an order-of-magnitude simulation speedup,
preparation being the compiled backend's dominant cost, and identical
outputs from both systems.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.conftest import PAPER_CYCLES, TRAJECTORY_PATH, write_trajectory
from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.threaded import ThreadedBackend
from repro.interp.interpreter import InterpreterBackend

#: The constants the paper quotes for hand-built prototypes (seconds).
PAPER_PROTOTYPE_BUILD_SECONDS = 100_000
PAPER_PROTOTYPE_RUN_SECONDS = 0.01

#: Paper-reported rows (seconds) for EXPERIMENTS.md cross-referencing.
PAPER_FIGURE_5_1 = {
    ("ASIM", "generate tables"): 10.8,
    ("ASIM", "simulation"): 310.6,
    ("ASIM II", "generate code"): 34.2,
    ("ASIM II", "compile"): 43.2,
    ("ASIM II", "simulation"): 15.0,
}


@pytest.fixture(scope="module")
def fast_options():
    return CodegenOptions.fastest()


# ---------------------------------------------------------------------------
# Row 1/2: ASIM (interpreter) — generate tables, simulation time
# ---------------------------------------------------------------------------


def test_fig_5_1_asim_generate_tables(benchmark, sieve_machine):
    """'Generate tables 10.8' — preparing the interpreter's sorted tables."""
    backend = InterpreterBackend()
    prepared = benchmark(backend.prepare, sieve_machine.spec)
    assert prepared.spec is sieve_machine.spec


def test_fig_5_1_asim_simulation_time(benchmark, sieve_machine, sieve_workload):
    """'Simulation time 310.6' — interpreting 5545 cycles of the sieve."""
    prepared = InterpreterBackend().prepare(sieve_machine.spec)

    def run():
        return prepared.run(cycles=PAPER_CYCLES, trace=False, collect_stats=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.cycles_run == PAPER_CYCLES
    assert result.output_integers() == sieve_workload.outputs[
        : len(result.output_integers())
    ]


# ---------------------------------------------------------------------------
# Rows 3-5: ASIM II (compiler) — generate code, compile, simulation time
# ---------------------------------------------------------------------------


def test_fig_5_1_asim2_generate_code(benchmark, sieve_machine, fast_options):
    """'Generate code 34.2' — emitting the simulator program source."""
    from repro.compiler.codegen_python import generate_python

    source = benchmark(generate_python, sieve_machine.spec, fast_options)
    assert "def simulate" in source


def test_fig_5_1_asim2_compile(benchmark, sieve_machine, fast_options):
    """'Pascal Compile 43.2' — byte-compiling the generated program."""
    from repro.compiler.codegen_python import generate_python

    source = generate_python(sieve_machine.spec, fast_options)

    def compile_it():
        namespace: dict = {}
        exec(compile(source, "<fig51>", "exec"), namespace)
        return namespace["simulate"]

    simulate = benchmark(compile_it)
    assert callable(simulate)


def test_fig_5_1_asim2_simulation_time(benchmark, sieve_machine, sieve_workload,
                                        fast_options):
    """'Simulation time 15.0' — running the compiled simulator 5545 cycles."""
    prepared = CompiledBackend(fast_options).prepare(sieve_machine.spec)

    def run():
        return prepared.run(cycles=PAPER_CYCLES, trace=False, collect_stats=False)

    result = benchmark(run)
    assert result.cycles_run == PAPER_CYCLES
    assert result.output_integers() == sieve_workload.outputs[
        : len(result.output_integers())
    ]


# ---------------------------------------------------------------------------
# The threaded middle point: prepare is interpreter-cheap, simulation is
# several times faster than interpreting
# ---------------------------------------------------------------------------


def test_fig_5_1_threaded_prepare(benchmark, sieve_machine):
    """Threaded prepare: closure compilation, no source generation."""
    backend = ThreadedBackend(cache=False)
    prepared = benchmark(backend.prepare, sieve_machine.spec)
    assert prepared.spec is sieve_machine.spec


def test_fig_5_1_threaded_simulation_time(benchmark, sieve_machine,
                                          sieve_workload):
    """Threaded simulation: the flat op list, 5545 sieve cycles."""
    prepared = ThreadedBackend(cache=False).prepare(sieve_machine.spec)

    def run():
        return prepared.run(cycles=PAPER_CYCLES, trace=False, collect_stats=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.cycles_run == PAPER_CYCLES
    assert result.output_integers() == sieve_workload.outputs[
        : len(result.output_integers())
    ]


# ---------------------------------------------------------------------------
# The whole figure: measure every row and assert the paper's shape
# ---------------------------------------------------------------------------

#: The trajectory document written by the full-table test *this session*
#: (None until it runs), so the schema test never validates a stale file.
_TRAJECTORY_WRITTEN: dict | None = None


def _measure_figure(spec, cycles, options) -> dict[tuple[str, str], float]:
    rows: dict[tuple[str, str], float] = {}

    start = time.perf_counter()
    interpreter = InterpreterBackend().prepare(spec)
    rows[("ASIM", "generate tables")] = time.perf_counter() - start
    start = time.perf_counter()
    interpreter_result = interpreter.run(cycles=cycles, trace=False,
                                         collect_stats=False)
    rows[("ASIM", "simulation")] = time.perf_counter() - start

    start = time.perf_counter()
    threaded = ThreadedBackend(cache=False).prepare(spec)
    rows[("Threaded", "compile closures")] = time.perf_counter() - start
    start = time.perf_counter()
    threaded_result = threaded.run(cycles=cycles, trace=False,
                                   collect_stats=False)
    rows[("Threaded", "simulation")] = time.perf_counter() - start

    compiled = CompiledBackend(options, cache=False).prepare(spec)
    rows[("ASIM II", "generate code")] = compiled.generate_seconds
    rows[("ASIM II", "compile")] = compiled.compile_seconds
    start = time.perf_counter()
    compiled_result = compiled.run(cycles=cycles, trace=False, collect_stats=False)
    rows[("ASIM II", "simulation")] = time.perf_counter() - start

    rows[("Traditional", "generate prototype")] = PAPER_PROTOTYPE_BUILD_SECONDS
    rows[("Traditional", "run prototype")] = PAPER_PROTOTYPE_RUN_SECONDS

    assert interpreter_result.output_integers() == compiled_result.output_integers()
    assert interpreter_result.final_values == compiled_result.final_values
    assert interpreter_result.output_integers() == threaded_result.output_integers()
    assert interpreter_result.final_values == threaded_result.final_values
    return rows


def test_fig_5_1_full_table(benchmark, sieve_machine, fast_options):
    """Regenerate the whole Figure 5.1 table and assert its shape."""
    rows = benchmark.pedantic(
        _measure_figure,
        args=(sieve_machine.spec, PAPER_CYCLES, fast_options),
        rounds=1,
        iterations=1,
    )

    interpreter_sim = rows[("ASIM", "simulation")]
    compiled_sim = rows[("ASIM II", "simulation")]
    threaded_sim = rows[("Threaded", "simulation")]
    speedup = interpreter_sim / compiled_sim
    threaded_speedup = interpreter_sim / threaded_sim
    compiled_total = (
        rows[("ASIM II", "generate code")]
        + rows[("ASIM II", "compile")]
        + compiled_sim
    )
    interpreter_total = rows[("ASIM", "generate tables")] + interpreter_sim
    end_to_end_speedup = interpreter_total / compiled_total

    # machine-readable trajectory for CI (BENCH_fig5_1.json)
    global _TRAJECTORY_WRITTEN
    _TRAJECTORY_WRITTEN = write_trajectory({
        "interpreter": {
            "prepare_seconds": rows[("ASIM", "generate tables")],
            "run_seconds": interpreter_sim,
        },
        "threaded": {
            "prepare_seconds": rows[("Threaded", "compile closures")],
            "run_seconds": threaded_sim,
        },
        "compiled": {
            "prepare_seconds": (
                rows[("ASIM II", "generate code")]
                + rows[("ASIM II", "compile")]
            ),
            "generate_seconds": rows[("ASIM II", "generate code")],
            "compile_seconds": rows[("ASIM II", "compile")],
            "run_seconds": compiled_sim,
        },
    }, cycles=PAPER_CYCLES)

    lines = ["", "Figure 5.1 — execution time comparison (seconds)",
             f"(stack machine sieve, {PAPER_CYCLES} cycles)"]
    paper = dict(PAPER_FIGURE_5_1)
    paper[("Traditional", "generate prototype")] = PAPER_PROTOTYPE_BUILD_SECONDS
    paper[("Traditional", "run prototype")] = PAPER_PROTOTYPE_RUN_SECONDS
    for (system, phase), seconds in rows.items():
        reported = paper.get((system, phase))
        reported_text = f"{reported:>10}" if reported is not None else "          "
        lines.append(
            f"  {system:<12s} {phase:<20s} measured {seconds:10.4f}   paper {reported_text}"
        )
    lines.append(
        f"  simulation-phase speedup: measured {speedup:.1f}x, paper ~20x"
    )
    lines.append(
        f"  threaded-code speedup:    measured {threaded_speedup:.1f}x (target >=5x)"
    )
    lines.append(
        f"  end-to-end speedup:       measured {end_to_end_speedup:.1f}x, paper ~2.5x"
    )
    print("\n".join(lines))

    benchmark.extra_info["simulation_speedup"] = round(speedup, 2)
    benchmark.extra_info["threaded_speedup"] = round(threaded_speedup, 2)
    benchmark.extra_info["end_to_end_speedup"] = round(end_to_end_speedup, 2)

    # ---- the shape the paper reports -------------------------------------------
    # 1. the compiled simulator is at least several times faster per cycle
    assert speedup >= 3.0, f"expected an ASIM II simulation speedup, got {speedup:.2f}x"
    # 1b. the threaded middle point beats the interpreter by >=5x (this PR's
    #     target) while its preparation stays far below generate+compile
    assert threaded_speedup >= 5.0, (
        f"expected a >=5x threaded-code speedup, got {threaded_speedup:.2f}x"
    )
    assert rows[("Threaded", "compile closures")] < (
        rows[("ASIM II", "generate code")] + rows[("ASIM II", "compile")]
    )
    # 2. preparation dominates the compiled backend's one-shot cost far less
    #    than simulation dominates the interpreter's (prepare-once/run-many wins)
    assert rows[("ASIM", "simulation")] > rows[("ASIM", "generate tables")]
    # 3. both systems remain far cheaper than building a hardware prototype
    assert compiled_total < PAPER_PROTOTYPE_BUILD_SECONDS
    assert interpreter_total < PAPER_PROTOTYPE_BUILD_SECONDS


# ---------------------------------------------------------------------------
# The machine-readable trajectory: schema check
# ---------------------------------------------------------------------------


def test_bench_trajectory_schema():
    """``BENCH_fig5_1.json`` (written by the full-table test above) is
    well-formed: every backend row has timings, speedups are positive."""
    if _TRAJECTORY_WRITTEN is None:
        pytest.skip("full-table test did not run this session")
    document = json.loads(TRAJECTORY_PATH.read_text())
    # freshness: the file on disk is the one this session's run produced
    assert document == _TRAJECTORY_WRITTEN
    assert document["schema"] == 1
    assert document["figure"] == "5.1"
    assert document["workload"]["machine"] == "stack-machine-sieve"
    assert document["workload"]["cycles"] == PAPER_CYCLES
    backends = document["backends"]
    assert set(backends) >= {"interpreter", "threaded", "compiled"}
    for name, row in backends.items():
        assert row["prepare_seconds"] >= 0, name
        assert row["run_seconds"] > 0, name
    speedups = document["speedups"]
    assert speedups["threaded_vs_interpreter"] > 0
    assert speedups["compiled_vs_interpreter"] > 0
    # the compiled backend also tracks the paper's two preparation phases;
    # the three values are rounded to 6 decimals independently, so allow
    # up to three half-ulp rounding errors
    assert backends["compiled"]["prepare_seconds"] == pytest.approx(
        backends["compiled"]["generate_seconds"]
        + backends["compiled"]["compile_seconds"], abs=2e-6,
    )
