"""Experiment E2 — Figure 4.1: ALU specification and generated code.

The figure shows the two flavours of ALU code ASIM II emits:

    A alu compute left 3048   ->   alu := dologic(compute, left, 3048);
    A add 4 left 3048         ->   add := left + 3048;

The benchmark regenerates both (Python and Pascal backends), asserts the
generic-vs-inlined split, and measures the runtime advantage of the inlined
form — the optimization Section 4.4 motivates.
"""

import pytest

from repro.compiler import CodegenOptions, generate_pascal, generate_python
from repro.compiler.compiled import CompiledBackend
from repro.rtl.parser import parse_spec

FIGURE_4_1_SPEC = """\
# figure 4.1 alu example
alu add compute left .
A alu compute left 3048
A add 4 left 3048
M compute 0 4 1 1
M left 0 alu 1 1
.
"""


@pytest.fixture(scope="module")
def spec():
    return parse_spec(FIGURE_4_1_SPEC)


def test_fig_4_1_python_code_generation(benchmark, spec):
    source = benchmark(generate_python, spec)
    assert "v_alu = dologic(t_compute, t_left, 3048)" in source
    assert "v_add = (((t_left) + (3048)) & 2147483647)" in source


def test_fig_4_1_pascal_code_generation(benchmark, spec):
    source = benchmark(generate_pascal, spec)
    assert "ljbalu := dologic(tempcompute, templeft, 3048);" in source
    assert "ljbadd := templeft + 3048;" in source


def test_fig_4_1_inlined_alu_runs_faster_than_generic(benchmark, spec):
    """The constant-function ALU should simulate at least as fast as the
    generic dologic call (Section 4.4's rationale for the optimization)."""
    cycles = 3000
    optimized = CompiledBackend(CodegenOptions.fastest()).prepare(spec)
    generic = CompiledBackend(
        CodegenOptions(
            inline_constant_functions=False,
            emit_cycle_trace=False,
            emit_access_trace=False,
        )
    ).prepare(spec)

    def run_optimized():
        return optimized.run(cycles=cycles, trace=False, collect_stats=False)

    result = benchmark(run_optimized)
    generic_result = generic.run(cycles=cycles, trace=False, collect_stats=False)
    assert result.final_values == generic_result.final_values
    # the inlined ALU ("add") computes the same value as the generic one
    # ("alu" with its function register holding 4) every cycle
    assert result.value("add") == result.value("alu")
