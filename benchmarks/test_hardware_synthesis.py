"""Experiment E8 — hardware construction (Section 5.3, Appendix F).

Appendix F translates the tiny computer specification into a circuit built
from catalog parts (RAM, multiplexors, adders, comparators, flip-flops, an
ALU).  This benchmark runs our hardware-construction pass over the same
machine (and over the stack machine for scale) and asserts that the bill of
materials is drawn from the Appendix F part vocabulary.
"""

import pytest

from repro.machines import prepare_division_workload, prepare_sieve_workload
from repro.machines.stack_machine import build_stack_machine_spec
from repro.machines.tiny_computer import build_tiny_computer_spec
from repro.synth import (
    APPENDIX_F_PART_NAMES,
    bill_of_materials,
    extract_netlist,
    hardware_report,
)


@pytest.fixture(scope="module")
def tiny_spec():
    return build_tiny_computer_spec(prepare_division_workload(100, 7).program)


@pytest.fixture(scope="module")
def stack_spec():
    return build_stack_machine_spec(prepare_sieve_workload(10).program)


def test_hw_tiny_computer_bill_of_materials(benchmark, tiny_spec):
    bom = benchmark(bill_of_materials, tiny_spec)
    allowed = set(APPENDIX_F_PART_NAMES) | {"quad OR", "quad XOR", "hex inverter"}
    assert bom.part_names <= allowed
    assert "2K x 8 bit RAM" in bom.part_names
    assert "4 bit adder" in bom.part_names
    assert any("multiplexor" in part for part in bom.part_names)
    benchmark.extra_info["total_packages"] = bom.total_packages


def test_hw_tiny_computer_netlist(benchmark, tiny_spec):
    netlist = benchmark(extract_netlist, tiny_spec)
    assert len(netlist.wires) > 30
    # every component is reachable in the wiring list text
    wiring = netlist.render_wiring_list()
    for name in tiny_spec.component_names():
        assert name in wiring


def test_hw_stack_machine_report(benchmark, stack_spec):
    report = benchmark(hardware_report, stack_spec)
    bom = report.bill_of_materials
    assert bom.total_packages > 50          # a processor, not a toy
    assert "2K x 8 bit RAM" in bom.part_names
    benchmark.extra_info["total_packages"] = bom.total_packages
    benchmark.extra_info["wires"] = len(report.netlist.wires)
