"""Serving-layer benchmark: the HTTP round-trip tax over in-process pools.

The long-lived server (`repro serve`) wraps :class:`SimulationPool` in
HTTP + JSON.  That wrapper costs something — socket round-trips, JSON
encode/decode of every result — and this module measures exactly how
much, per backend, into ``BENCH_server.json``:

* **in-process**: a warm ``SimulationPool.run_batch`` (the PR-4 path);
* **HTTP**: the same batch POSTed to a live ``SimulationServer`` on an
  ephemeral port, timed around the whole round trip, results checked
  bit-identical to the in-process run.

The number that matters operationally is ``http_overhead_ratio``
(in-process runs/sec over HTTP runs/sec): it tells a deployer how large
a request has to be before the wire tax disappears into the noise —
tiny runs pay it, sieve-sized runs do not.  The warm-pool win is also
asserted: the *second* HTTP batch must not pay the pool construction
the first one did.

Schema v2 adds tail latency: each backend row carries p50/p99 of single
``/v1/run`` round trips against one warm server (``latency_ms.single_*``)
and against a routed two-node fleet (``latency_ms.fleet_*``) — the
trajectory now tracks what the front-door router costs per request, not
just bulk throughput.

Schema v3 adds the tracing tax: ``http_runs_per_second`` is measured
against a server with tracing disabled, ``http_traced_runs_per_second``
against one recording full request traces *and* exporting them through
the JSONL sink, and ``tracing_overhead_ratio`` is their quotient —
gated below 1.05 (<5% overhead), best-of-N minimum times on both sides
so scheduler noise cannot fake a regression.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the workload and writes to
a temp path, schema-check only.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import urllib.request
from pathlib import Path

import pytest

from repro.core.comparison import compare_results
from repro.machines.library import get_machine
from repro.serving import RunRequest, SimulationPool, SimulationServer
from repro.serving.protocol import result_from_json
from repro.serving.router import ServingFleet

#: Quick mode for CI gates: tiny workload, schema check only.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Machine-readable server-overhead trajectory (sibling of BENCH_batch.json).
SERVER_TRAJECTORY_PATH = (
    Path(tempfile.gettempdir()) / f"BENCH_server_smoke-{os.getpid()}.json"
    if SMOKE
    else Path(__file__).resolve().parent.parent / "BENCH_server.json"
)

#: Schema version of the server trajectory file (bump when keys change).
#: v2: ``latency_ms`` per backend — single-node and routed-fleet p50/p99.
#: v3: ``http_traced_runs_per_second`` + ``tracing_overhead_ratio`` —
#: throughput with full tracing + JSONL export vs tracing disabled.
SERVER_TRAJECTORY_SCHEMA = 3

#: The workload: small counter batches — the regime where per-request
#: overhead (the thing measured here) is largest relative to the work.
MACHINE = "counter"
RUNS = 4 if SMOKE else 16
CYCLES = 16 if SMOKE else 64

#: Single-run round trips sampled for the latency percentiles.
LATENCY_SAMPLES = 6 if SMOKE else 40

#: Warm batches per throughput figure; the minimum time wins (noise
#: only ever adds time, so best-of-N converges on the true cost).
BEST_OF = 1 if SMOKE else 5

#: The tracing-overhead gate: traced+exporting throughput must stay
#: within 5% of the untraced server's.
TRACING_OVERHEAD_LIMIT = 1.05

#: Nodes in the routed fleet the latency tax is measured against.
FLEET_NODES = 2

#: Backends measured over the wire.
BACKENDS = ("threaded", "compiled")

#: The trajectory document written by the measurement test *this session*
#: (None until it runs), so the schema test never validates a stale file.
_TRAJECTORY_WRITTEN: dict | None = None


def _http_batch(server: SimulationServer, backend: str) -> tuple[float, dict]:
    """POST one batch; returns (round-trip seconds, response document)."""
    body = json.dumps({
        "machine": MACHINE,
        "backend": backend,
        "runs": [{"cycles": CYCLES, "collect_stats": False,
                  "trace": False}] * RUNS,
    }).encode()
    request = urllib.request.Request(
        server.url + "/v1/batch", data=body,
        headers={"Content-Type": "application/json"},
    )
    start = time.perf_counter()
    with urllib.request.urlopen(request, timeout=120) as response:
        document = json.loads(response.read())
    elapsed = time.perf_counter() - start
    assert document["ok"], document
    return elapsed, document


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile — no interpolation, honest at small N."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_latencies_ms(url: str, backend: str, samples: int) -> list[float]:
    """Round-trip times of warm single ``/v1/run`` requests, in ms."""
    body = json.dumps({
        "machine": MACHINE, "backend": backend, "cycles": CYCLES,
        "collect_stats": False, "trace": False,
    }).encode()
    latencies = []
    for _ in range(samples):
        request = urllib.request.Request(
            url + "/v1/run", data=body,
            headers={"Content-Type": "application/json"},
        )
        start = time.perf_counter()
        with urllib.request.urlopen(request, timeout=120) as response:
            document = json.loads(response.read())
        latencies.append((time.perf_counter() - start) * 1000.0)
        assert document["result"]["cycles_run"] == CYCLES
    return latencies


def write_server_trajectory(backends: dict[str, dict],
                            path=SERVER_TRAJECTORY_PATH) -> dict:
    document = {
        "schema": SERVER_TRAJECTORY_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": {
            "machine": MACHINE, "runs": RUNS, "cycles": CYCLES,
            "latency_samples": LATENCY_SAMPLES, "fleet_nodes": FLEET_NODES,
            "best_of": BEST_OF,
        },
        "smoke": SMOKE,
        "backends": backends,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def test_server_overhead_table(benchmark):
    """Measure in-process vs HTTP-served throughput per backend, the
    tracing-pipeline tax (traced + JSONL export vs tracing disabled),
    plus single-run tail latency on one node vs through the fleet
    router."""
    spec = get_machine(MACHINE).build()

    def measure() -> dict[str, dict]:
        rows: dict[str, dict] = {}
        trace_dir = tempfile.mkdtemp(prefix="repro-bench-traces-")
        with SimulationServer(port=0, artifact_cache=False,
                              tracing=False) as server, \
             SimulationServer(port=0, artifact_cache=False,
                              trace_sink="jsonl",
                              trace_dir=trace_dir) as traced_server:
            for backend in BACKENDS:
                requests = [RunRequest(cycles=CYCLES, collect_stats=False,
                                       trace=False)] * RUNS
                with SimulationPool(spec, backend=backend) as pool:
                    pool.run_batch(requests)  # warm every worker binding
                    start = time.perf_counter()
                    reference = pool.run_batch(requests)
                    inproc_seconds = time.perf_counter() - start
                assert reference.ok
                # first HTTP batch pays lazy pool construction; the second
                # must ride the warm pool — the server's whole point
                cold_seconds, _ = _http_batch(server, backend)
                warm_seconds, document = _http_batch(server, backend)
                for item, wire_item in zip(reference.items,
                                           document["items"]):
                    rebuilt = result_from_json(wire_item["result"])
                    assert compare_results(item.result, rebuilt) == []
                # best-of-N on both sides of the tracing comparison:
                # noise only ever adds time, so the minimum is the cost
                _http_batch(traced_server, backend)  # warm traced pool
                for _ in range(BEST_OF):
                    seconds, _ = _http_batch(server, backend)
                    warm_seconds = min(warm_seconds, seconds)
                traced_seconds, _ = _http_batch(traced_server, backend)
                for _ in range(BEST_OF):
                    seconds, _ = _http_batch(traced_server, backend)
                    traced_seconds = min(traced_seconds, seconds)
                single = _run_latencies_ms(server.url, backend,
                                           LATENCY_SAMPLES)
                rows[backend] = {
                    "inprocess_runs_per_second": round(
                        RUNS / inproc_seconds, 3),
                    "http_cold_runs_per_second": round(
                        RUNS / cold_seconds, 3),
                    "http_runs_per_second": round(RUNS / warm_seconds, 3),
                    "http_traced_runs_per_second": round(
                        RUNS / traced_seconds, 3),
                    "http_overhead_ratio": round(
                        (RUNS / inproc_seconds) / (RUNS / warm_seconds), 3),
                    "tracing_overhead_ratio": round(
                        traced_seconds / warm_seconds, 3),
                    "latency_ms": {
                        "single_p50": round(_percentile(single, 0.50), 3),
                        "single_p99": round(_percentile(single, 0.99), 3),
                    },
                }
        # the same single-run workload through a routed fleet: what the
        # extra hop (router parse + shard + forward) adds to the tail
        with ServingFleet(nodes=FLEET_NODES, quorum=1, health_interval=0.2,
                          child_args=["--no-disk-cache"]) as fleet:
            for backend in BACKENDS:
                _run_latencies_ms(fleet.url, backend, 2)  # warm the home pool
                routed = _run_latencies_ms(fleet.url, backend,
                                           LATENCY_SAMPLES)
                rows[backend]["latency_ms"]["fleet_p50"] = round(
                    _percentile(routed, 0.50), 3)
                rows[backend]["latency_ms"]["fleet_p99"] = round(
                    _percentile(routed, 0.99), 3)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    global _TRAJECTORY_WRITTEN
    _TRAJECTORY_WRITTEN = write_server_trajectory(rows)

    print(f"\nHTTP serving overhead ({RUNS} runs x {CYCLES} cycles, "
          f"{MACHINE})")
    for backend, row in rows.items():
        latency = row["latency_ms"]
        print(f"  {backend:<10s} in-process={row['inprocess_runs_per_second']:9.1f}"
              f"  http={row['http_runs_per_second']:9.1f}"
              f"  traced={row['http_traced_runs_per_second']:9.1f}"
              f"  overhead={row['http_overhead_ratio']:6.1f}x"
              f"  tracing={row['tracing_overhead_ratio']:5.3f}x"
              f"  p50={latency['single_p50']:6.2f}ms"
              f"  fleet-p50={latency['fleet_p50']:6.2f}ms")

    if SMOKE:
        return  # schema check only
    for backend, row in rows.items():
        assert row["http_runs_per_second"] > 1.0, (
            f"{backend}: HTTP serving pathologically slow "
            f"({row['http_runs_per_second']:.2f} runs/sec)"
        )
        assert row["tracing_overhead_ratio"] < TRACING_OVERHEAD_LIMIT, (
            f"{backend}: tracing pipeline costs "
            f"{(row['tracing_overhead_ratio'] - 1) * 100:.1f}% of warm "
            f"throughput (limit {(TRACING_OVERHEAD_LIMIT - 1) * 100:.0f}%)"
        )
        benchmark.extra_info[f"{backend}_http_overhead"] = (
            row["http_overhead_ratio"]
        )
        benchmark.extra_info[f"{backend}_tracing_overhead"] = (
            row["tracing_overhead_ratio"]
        )
        benchmark.extra_info[f"{backend}_fleet_p99_ms"] = (
            row["latency_ms"]["fleet_p99"]
        )


def test_bench_server_schema():
    """The trajectory file (written by the measurement test above) is
    well-formed: every backend row carries positive throughput, the
    overhead ratios are consistent with their inputs, the v2 latency
    columns are present and ordered (p99 >= p50 > 0), and the v3
    tracing columns exist and agree with the throughput they divide."""
    if _TRAJECTORY_WRITTEN is None:
        pytest.skip("server overhead test did not run this session")
    document = json.loads(SERVER_TRAJECTORY_PATH.read_text())
    assert document == _TRAJECTORY_WRITTEN
    assert document["schema"] == SERVER_TRAJECTORY_SCHEMA
    assert document["workload"]["machine"] == MACHINE
    assert document["workload"]["fleet_nodes"] == FLEET_NODES
    assert set(document["backends"]) == set(BACKENDS)
    for backend, row in document["backends"].items():
        assert row["inprocess_runs_per_second"] > 0, backend
        assert row["http_runs_per_second"] > 0, backend
        assert row["http_cold_runs_per_second"] > 0, backend
        expected = (
            row["inprocess_runs_per_second"] / row["http_runs_per_second"]
        )
        assert row["http_overhead_ratio"] == pytest.approx(expected,
                                                           rel=0.05), backend
        assert row["http_traced_runs_per_second"] > 0, backend
        traced_expected = (
            row["http_runs_per_second"] / row["http_traced_runs_per_second"]
        )
        assert row["tracing_overhead_ratio"] == pytest.approx(
            traced_expected, rel=0.05), backend
        latency = row["latency_ms"]
        for scope in ("single", "fleet"):
            p50, p99 = latency[f"{scope}_p50"], latency[f"{scope}_p99"]
            assert p50 > 0, (backend, scope)
            assert p99 >= p50, (backend, scope)
