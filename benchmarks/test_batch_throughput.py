"""Serving-layer benchmark: batch throughput across execution strategies.

The serving scenario is many small requests against one machine — the
ROADMAP's "one cached prepare artifact driving many concurrent
simulations".  Three dimensions are measured into the schema-v3
``BENCH_batch.json``:

* **prepare amortisation** (the PR-2 rows): the *sequential* baseline is
  the naive serve loop — a fresh (uncached) ``prepare`` plus one ``run``
  per request on one thread — against the thread pool at several sizes,
  where one warm prepare seeds the cache and every worker reuses the
  shared artifact.  Thread workers interleave on the GIL, so this win is
  amortisation, not parallelism; the interpreter row (trivial prepare)
  shows none, while threaded and compiled must beat the naive loop.
* **the executor dimension** (PR 5): the same batch pushed through every
  strategy on a CPU-bound workload.  The process pool ships the lowered
  program to worker processes once and runs truly in parallel, so on a
  multi-core host its runs/sec must beat the thread pool's — by >= 1.5x
  for the compiled backend — and, with the tuned default chunk size (two
  chunks per worker), must no longer lose to serial.  The process row
  also records its dispatch/IPC columns (chunk size and count, queue
  wait, wall vs busy seconds) so chunking regressions are visible in the
  trajectory, not just in the rate.  On a single-core host the rows are
  recorded but the parallelism lines are not asserted (there is nothing
  to parallelise onto).
* **the lane dimension** (this PR): small-cycle batches — the regime
  where per-run dispatch dominates compute — pushed through the lane
  executor at several widths against the serial baseline on the same
  workload.  One walk of the schedule carries the whole lane group, so
  for the compiled backend the lane executor must deliver >= 3x the
  serial strategy's runs/sec.

Every measured batch is checked bit-identical to the naive loop's
results, whatever strategy ran it.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by ``scripts/check.sh``) runs a
tiny workload, writes the trajectory to a temp path instead of
``BENCH_batch.json``, and only schema-checks the document — fast enough
for every push, so the executor matrix cannot silently rot.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.compiler.cache import PrepareCache
from repro.compiler.compiled import CompiledBackend
from repro.compiler.threaded import ThreadedBackend
from repro.interp.interpreter import InterpreterBackend
from repro.machines.library import get_machine
from repro.serving import EXECUTOR_NAMES, RunRequest, SimulationPool
from repro.serving.pool import _available_cpus

#: Quick mode for CI gates: tiny workload, schema check only.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Machine-readable batch-throughput trajectory (sibling of BENCH_fig5_1.json).
#: Smoke runs write to a per-process temp path so they never clobber the
#: real numbers nor collide with another user's or a concurrent CI's run.
BATCH_TRAJECTORY_PATH = (
    Path(tempfile.gettempdir()) / f"BENCH_batch_smoke-{os.getpid()}.json"
    if SMOKE
    else Path(__file__).resolve().parent.parent / "BENCH_batch.json"
)

#: Schema version of the batch trajectory file (bump when keys change).
#: v2 added the executor dimension (serial/thread/process rows); v3 added
#: the lane dimension (runs/sec per lane width on a small-cycle batch)
#: and the process executor's dispatch/IPC columns.
BATCH_TRAJECTORY_SCHEMA = 3

#: Requests per amortisation measurement, cycles per request.  256 cycles
#: keeps each request small enough that preparation is a real fraction of
#: its cost — the regime the thread-pool serving layer exists for.
BATCH_RUNS = 4 if SMOKE else 16
BATCH_CYCLES = 64 if SMOKE else 256

#: Measured attempts per pooled batch; the best rate wins.  Batches are
#: tens of milliseconds, so a single scheduler hiccup on a busy host can
#: halve one attempt — steady-state throughput is the best of a few.
BATCH_ATTEMPTS = 1 if SMOKE else 3

#: Thread-pool sizes measured; the amortisation line is drawn at 4 workers.
POOL_SIZES = (1, 2, 4)

#: The executor dimension runs a CPU-bound batch: enough cycles that the
#: simulation phase dominates and parallelism (not amortisation) decides
#: the row.  Cycle counts are scaled per backend so each row costs about
#: the same wall-clock despite the ~40x speed spread.
EXEC_RUNS = 4 if SMOKE else 16
EXEC_CYCLES = (
    {"interpreter": 64, "threaded": 64, "compiled": 64}
    if SMOKE
    else {"interpreter": 256, "threaded": 1024, "compiled": 4096}
)

#: Workers per strategy for the executor dimension (serial and lane run
#: inline on the caller's thread by construction).
EXEC_WORKERS = {
    "serial": 1, "thread": 4, "process": 2 if SMOKE else 4, "lane": 1,
}

#: The lane dimension: a small-cycle batch on a small machine, where
#: per-run dispatch overhead — not simulation compute — dominates.  That
#: is exactly the regime lane vectorization exists for: one schedule walk
#: carries the whole group, so per-run plan construction, scheduling and
#: result plumbing are paid once per lane group instead of once per run.
LANE_MACHINE = "counter"
LANE_RUNS = 8 if SMOKE else 256
LANE_CYCLES = 2
LANE_WIDTHS = (4,) if SMOKE else (16, 64, 256)

#: Lane batches are milliseconds each, so scheduler noise is a far bigger
#: fraction of a measurement than on the CPU-bound rows — take the best
#: of more attempts there.
LANE_ATTEMPTS = 1 if SMOKE else 9

#: The compiled backend's lane line: best-width lane runs/sec over the
#: serial strategy's, on the small-cycle workload (non-smoke only).
LANE_SPEEDUP_FLOOR = 3.0

#: Whether this host can demonstrate process-pool parallelism at all
#: (same detection the pool uses for its default process worker count).
_CPUS = _available_cpus()
MULTI_CORE = _CPUS >= 2

#: Backend rows: (sequential factory with caching off, pooled factory with a
#: private cache).  The interpreter has no prepare cache on either side.
_BACKENDS = {
    "interpreter": (
        lambda: InterpreterBackend(),
        lambda: InterpreterBackend(),
    ),
    "threaded": (
        lambda: ThreadedBackend(cache=False),
        lambda: ThreadedBackend(cache=PrepareCache()),
    ),
    "compiled": (
        lambda: CompiledBackend(cache=False),
        lambda: CompiledBackend(cache=PrepareCache()),
    ),
}

#: The trajectory document written by the measurement test *this session*
#: (None until it runs), so the schema test never validates a stale file.
_TRAJECTORY_WRITTEN: dict | None = None


def _run_observables(result):
    return (
        result.final_values,
        result.memory_contents,
        [(event.address, event.value) for event in result.outputs],
    )


def _measure_sequential(backend_factory, spec, runs, cycles):
    """The naive serve loop: per-request prepare (uncached) + run."""
    reference = None
    start = time.perf_counter()
    for _ in range(runs):
        result = backend_factory().run(spec, cycles=cycles, collect_stats=False)
        reference = _run_observables(result)
    elapsed = time.perf_counter() - start
    return runs / elapsed, reference


def _measure_batch(backend_factory, spec, pool_size, reference,
                   runs=None, cycles=None, executor="thread",
                   lane_width=None, trace=None, attempts=None):
    """Pooled batches on a given strategy, checked bit-identical.

    Returns ``(best runs/sec, dispatch columns of the best batch)`` over
    ``BATCH_ATTEMPTS`` batches on one warmed pool (startup and
    first-binding costs excluded by a warm-up batch, scheduler noise
    rejected by taking the best attempt).  The dispatch columns record
    how the batch was scheduled: requests per chunk, chunk count, mean
    queue wait, and wall vs busy seconds — the IPC overhead a chunking
    regression shows up in first.
    """
    runs = BATCH_RUNS if runs is None else runs
    cycles = BATCH_CYCLES if cycles is None else cycles
    attempts = BATCH_ATTEMPTS if attempts is None else attempts
    requests = [
        RunRequest(cycles=cycles, collect_stats=False, trace=trace)
    ] * runs
    best = 0.0
    dispatch: dict | None = None
    with SimulationPool(spec, backend=backend_factory(),
                        max_workers=pool_size, executor=executor,
                        lane_width=lane_width) as pool:
        # steady-state throughput: a tiny warm-up batch makes every worker
        # (thread or process) bind its prepared simulation before the clock
        pool.run_batch([RunRequest(cycles=1, collect_stats=False)] * pool_size)
        chunk_size = pool._strategy.default_chunk_size(runs)
        for _ in range(attempts):
            batch = pool.run_batch(requests)
            assert batch.ok, [str(item.error) for item in batch.failures]
            # bit-identical to the naive loop, for every run in the batch
            for item in batch.items:
                assert _run_observables(item.result) == reference
            if batch.runs_per_second >= best:
                best = batch.runs_per_second
                dispatch = {
                    "chunk_size": chunk_size,
                    "chunks": math.ceil(runs / chunk_size),
                    "queue_seconds_mean": round(batch.queue_seconds_mean, 6),
                    "wall_seconds": round(batch.wall_seconds, 6),
                    "busy_seconds": round(
                        sum(item.seconds for item in batch.items), 6
                    ),
                }
    return best, dispatch


def _measure_lane_dimension(sequential_factory, pooled_factory):
    """Serial vs lane-at-every-width on the small-cycle lane workload."""
    spec = get_machine(LANE_MACHINE).build()
    spec = getattr(spec, "spec", spec)
    _, reference = _measure_sequential(sequential_factory, spec, 1,
                                       LANE_CYCLES)
    # trace=False explicitly: the counter machine declares trace points,
    # so trace=None would resolve to tracing *on* and every request would
    # fall back to the scalar path instead of riding a lane group
    serial_rps, _ = _measure_batch(
        pooled_factory, spec, 1, reference, runs=LANE_RUNS,
        cycles=LANE_CYCLES, executor="serial", trace=False,
        attempts=LANE_ATTEMPTS,
    )
    widths = {}
    for width in LANE_WIDTHS:
        lane_rps, _ = _measure_batch(
            pooled_factory, spec, 1, reference, runs=LANE_RUNS,
            cycles=LANE_CYCLES, executor="lane", lane_width=width,
            trace=False, attempts=LANE_ATTEMPTS,
        )
        widths[str(width)] = round(lane_rps, 3)
    return {"serial": round(serial_rps, 3), "widths": widths}


def write_batch_trajectory(backends: dict[str, dict], path=BATCH_TRAJECTORY_PATH):
    document = {
        "schema": BATCH_TRAJECTORY_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": {
            "machine": "stack-machine-sieve",
            "sieve_size": 6,
            "cycles": BATCH_CYCLES,
            "runs": BATCH_RUNS,
        },
        "pool_sizes": list(POOL_SIZES),
        "executors": {
            "names": list(EXECUTOR_NAMES),
            "workers": dict(EXEC_WORKERS),
            "runs": EXEC_RUNS,
            "cycles": dict(EXEC_CYCLES),
        },
        "lane_workload": {
            "machine": LANE_MACHINE,
            "cycles": LANE_CYCLES,
            "runs": LANE_RUNS,
            "widths": list(LANE_WIDTHS),
        },
        "multi_core": MULTI_CORE,
        "smoke": SMOKE,
        "backends": backends,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def test_batch_throughput_table(benchmark, small_sieve_machine):
    """Measure every backend x pool size x executor and hold the lines."""
    spec = small_sieve_machine.spec

    def measure():
        rows: dict[str, dict] = {}
        for name, (sequential_factory, pooled_factory) in _BACKENDS.items():
            sequential_rps, reference = _measure_sequential(
                sequential_factory, spec, BATCH_RUNS, BATCH_CYCLES
            )
            batch_rps = {
                str(pool_size): round(
                    _measure_batch(pooled_factory, spec, pool_size,
                                   reference)[0],
                    3,
                )
                for pool_size in POOL_SIZES
            }
            # the executor dimension: a CPU-bound batch per strategy
            _, exec_reference = _measure_sequential(
                sequential_factory, spec, 1, EXEC_CYCLES[name]
            )
            executor_rps = {}
            process_dispatch = None
            for executor in EXECUTOR_NAMES:
                rate, dispatch = _measure_batch(
                    pooled_factory, spec, EXEC_WORKERS[executor],
                    exec_reference, runs=EXEC_RUNS,
                    cycles=EXEC_CYCLES[name], executor=executor,
                )
                executor_rps[executor] = round(rate, 3)
                if executor == "process":
                    process_dispatch = dispatch
            rows[name] = {
                "sequential_runs_per_second": round(sequential_rps, 3),
                "batch_runs_per_second": batch_rps,
                "executor_runs_per_second": executor_rps,
                "process_dispatch": process_dispatch,
                "lane_runs_per_second": _measure_lane_dimension(
                    sequential_factory, pooled_factory
                ),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    global _TRAJECTORY_WRITTEN
    _TRAJECTORY_WRITTEN = write_batch_trajectory(rows)

    lines = ["", "Batch serving throughput (runs/sec, "
             f"{BATCH_RUNS} runs x {BATCH_CYCLES} cycles, small sieve)"]
    for name, row in rows.items():
        batches = "  ".join(
            f"pool{size}={row['batch_runs_per_second'][str(size)]:8.1f}"
            for size in POOL_SIZES
        )
        lines.append(
            f"  {name:<12s} sequential={row['sequential_runs_per_second']:8.1f}  "
            + batches
        )
    lines.append(f"Executor dimension ({EXEC_RUNS} CPU-bound runs, "
                 f"cycles per backend: {EXEC_CYCLES})")
    for name, row in rows.items():
        execs = "  ".join(
            f"{executor}={row['executor_runs_per_second'][executor]:8.1f}"
            for executor in EXECUTOR_NAMES
        )
        lines.append(f"  {name:<12s} {execs}")
    lines.append(f"Lane dimension ({LANE_RUNS} runs x {LANE_CYCLES} cycles, "
                 f"{LANE_MACHINE} machine)")
    for name, row in rows.items():
        lane = row["lane_runs_per_second"]
        widths = "  ".join(
            f"w{width}={lane['widths'][str(width)]:8.1f}"
            for width in LANE_WIDTHS
        )
        lines.append(f"  {name:<12s} serial={lane['serial']:8.1f}  " + widths)
    print("\n".join(lines))

    if SMOKE:
        return  # schema check only: the smoke gate holds shape, not perf

    # ---- the serving layer's acceptance lines ------------------------------
    # (1) amortisation: the backends with a real preparation phase must beat
    # the naive per-request-prepare loop once the artifact is cached/pooled
    for name in ("threaded", "compiled"):
        sequential = rows[name]["sequential_runs_per_second"]
        pooled = rows[name]["batch_runs_per_second"]["4"]
        assert pooled > sequential, (
            f"{name}: pooled {pooled:.1f} runs/sec did not beat the naive "
            f"sequential loop at {sequential:.1f} runs/sec"
        )
        benchmark.extra_info[f"{name}_batch_speedup"] = round(
            pooled / sequential, 2
        )

    # (2) parallelism: on a multi-core host the process pool must beat the
    # GIL-bound thread pool on CPU-bound compiled/threaded batches, and the
    # tuned default chunk size must keep it from losing to plain serial
    if MULTI_CORE:
        for name, factor in (("threaded", 1.0), ("compiled", 1.5)):
            threads = rows[name]["executor_runs_per_second"]["thread"]
            processes = rows[name]["executor_runs_per_second"]["process"]
            assert processes >= factor * threads, (
                f"{name}: process pool at {processes:.1f} runs/sec did not "
                f"beat the thread pool at {threads:.1f} runs/sec "
                f"(required {factor}x on this {_CPUS}-core host)"
            )
            benchmark.extra_info[f"{name}_process_vs_thread"] = round(
                processes / threads, 2
            )
        serial = rows["compiled"]["executor_runs_per_second"]["serial"]
        processes = rows["compiled"]["executor_runs_per_second"]["process"]
        assert processes >= serial, (
            f"compiled: process pool at {processes:.1f} runs/sec lost to "
            f"serial at {serial:.1f} runs/sec on this {_CPUS}-core host "
            "(the tuned chunk size should have prevented that)"
        )

    # (3) vectorization: on the small-cycle workload the compiled backend's
    # lane executor must amortise per-run dispatch into a >= 3x win
    lane = rows["compiled"]["lane_runs_per_second"]
    best_width = max(lane["widths"].values())
    assert best_width >= LANE_SPEEDUP_FLOOR * lane["serial"], (
        f"compiled: lane executor at {best_width:.1f} runs/sec is below "
        f"{LANE_SPEEDUP_FLOOR}x the serial strategy at "
        f"{lane['serial']:.1f} runs/sec on the small-cycle lane workload"
    )
    benchmark.extra_info["compiled_lane_vs_serial"] = round(
        best_width / lane["serial"], 2
    )


def test_bench_batch_schema():
    """The trajectory file (written by the measurement test above) is
    well-formed: every backend row carries positive throughput per pool
    size, per executor and per lane width, and the serving wins hold
    where asserted."""
    if _TRAJECTORY_WRITTEN is None:
        pytest.skip("batch throughput test did not run this session")
    document = json.loads(BATCH_TRAJECTORY_PATH.read_text())
    # freshness: the file on disk is the one this session's run produced
    assert document == _TRAJECTORY_WRITTEN
    assert document["schema"] == BATCH_TRAJECTORY_SCHEMA
    assert document["workload"]["machine"] == "stack-machine-sieve"
    assert document["workload"]["cycles"] == BATCH_CYCLES
    assert document["pool_sizes"] == list(POOL_SIZES)
    assert document["executors"]["names"] == list(EXECUTOR_NAMES)
    assert document["lane_workload"]["machine"] == LANE_MACHINE
    assert document["lane_workload"]["widths"] == list(LANE_WIDTHS)
    backends = document["backends"]
    assert set(backends) == {"interpreter", "threaded", "compiled"}
    for name, row in backends.items():
        assert row["sequential_runs_per_second"] > 0, name
        assert set(row["batch_runs_per_second"]) == {
            str(size) for size in POOL_SIZES
        }
        for rate in row["batch_runs_per_second"].values():
            assert rate > 0, name
        assert set(row["executor_runs_per_second"]) == set(EXECUTOR_NAMES)
        for rate in row["executor_runs_per_second"].values():
            assert rate > 0, name
        dispatch = row["process_dispatch"]
        assert dispatch["chunk_size"] >= 1, name
        assert dispatch["chunks"] >= 1, name
        assert dispatch["wall_seconds"] > 0, name
        assert dispatch["busy_seconds"] > 0, name
        lane = row["lane_runs_per_second"]
        assert lane["serial"] > 0, name
        assert set(lane["widths"]) == {str(w) for w in LANE_WIDTHS}, name
        for rate in lane["widths"].values():
            assert rate > 0, name
    if document["smoke"]:
        return
    for name in ("threaded", "compiled"):
        row = backends[name]
        assert (
            row["batch_runs_per_second"]["4"]
            > row["sequential_runs_per_second"]
        ), name
    lane = backends["compiled"]["lane_runs_per_second"]
    assert max(lane["widths"].values()) >= LANE_SPEEDUP_FLOOR * lane["serial"]
    if document["multi_core"]:
        for name in ("threaded", "compiled"):
            row = backends[name]["executor_runs_per_second"]
            assert row["process"] >= row["thread"], name
        row = backends["compiled"]["executor_runs_per_second"]
        assert row["process"] >= row["serial"]
