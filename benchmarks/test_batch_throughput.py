"""Serving-layer benchmark: batch throughput vs the naive serve loop.

The serving scenario is many small requests against one machine — the
ROADMAP's "one cached prepare artifact driving many concurrent
simulations".  The baseline, labelled *sequential* here, is what a naive
server does: a fresh (uncached) ``prepare`` followed by one ``run`` per
request, on one thread.  The batch rows push the same requests through
:class:`~repro.serving.pool.SimulationPool`, where the pool's single warm
prepare seeds the cache and every worker reuses the shared artifact.

Simulations are pure Python, so workers interleave on the GIL; the
measured win is prepare amortisation, not CPU parallelism.  That is why
the interpreter row (whose prepare is trivial) shows no batch win, while
the threaded and compiled rows — the backends with a real preparation
phase — must beat the naive loop.  The module writes the machine-readable
``BENCH_batch.json`` (runs/sec per backend and pool size), schema-checked
below exactly like ``BENCH_fig5_1.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.compiler.cache import PrepareCache
from repro.compiler.compiled import CompiledBackend
from repro.compiler.threaded import ThreadedBackend
from repro.interp.interpreter import InterpreterBackend
from repro.serving import RunRequest, SimulationPool

#: Machine-readable batch-throughput trajectory (sibling of BENCH_fig5_1.json).
BATCH_TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

#: Schema version of the batch trajectory file (bump when keys change).
BATCH_TRAJECTORY_SCHEMA = 1

#: Requests per measurement, cycles per request.  256 cycles keeps each
#: request small enough that preparation is a real fraction of its cost —
#: the regime the serving layer exists for.
BATCH_RUNS = 10
BATCH_CYCLES = 256

#: Pool sizes measured; the acceptance line is drawn at >= 4 workers.
POOL_SIZES = (1, 2, 4)

#: Backend rows: (sequential factory with caching off, pooled factory with a
#: private cache).  The interpreter has no prepare cache on either side.
_BACKENDS = {
    "interpreter": (
        lambda: InterpreterBackend(),
        lambda: InterpreterBackend(),
    ),
    "threaded": (
        lambda: ThreadedBackend(cache=False),
        lambda: ThreadedBackend(cache=PrepareCache()),
    ),
    "compiled": (
        lambda: CompiledBackend(cache=False),
        lambda: CompiledBackend(cache=PrepareCache()),
    ),
}

#: The trajectory document written by the measurement test *this session*
#: (None until it runs), so the schema test never validates a stale file.
_TRAJECTORY_WRITTEN: dict | None = None


def _run_observables(result):
    return (
        result.final_values,
        result.memory_contents,
        [(event.address, event.value) for event in result.outputs],
    )


def _measure_sequential(backend_factory, spec):
    """The naive serve loop: per-request prepare (uncached) + run."""
    reference = None
    start = time.perf_counter()
    for _ in range(BATCH_RUNS):
        result = backend_factory().run(
            spec, cycles=BATCH_CYCLES, collect_stats=False
        )
        reference = _run_observables(result)
    elapsed = time.perf_counter() - start
    return BATCH_RUNS / elapsed, reference


def _measure_batch(backend_factory, spec, pool_size, reference):
    """The serving layer: one warm prepare, pooled fan-out."""
    requests = [RunRequest(cycles=BATCH_CYCLES, collect_stats=False)] * BATCH_RUNS
    with SimulationPool(spec, backend=backend_factory(),
                        max_workers=pool_size) as pool:
        batch = pool.run_batch(requests)
    assert batch.ok, [str(item.error) for item in batch.failures]
    # bit-identical to the naive loop, for every run in the batch
    for item in batch.items:
        assert _run_observables(item.result) == reference
    return batch.runs_per_second


def write_batch_trajectory(backends: dict[str, dict], path=BATCH_TRAJECTORY_PATH):
    document = {
        "schema": BATCH_TRAJECTORY_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": {
            "machine": "stack-machine-sieve",
            "sieve_size": 6,
            "cycles": BATCH_CYCLES,
            "runs": BATCH_RUNS,
        },
        "pool_sizes": list(POOL_SIZES),
        "backends": backends,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def test_batch_throughput_table(benchmark, small_sieve_machine):
    """Measure every backend × pool size and hold the serving line."""
    spec = small_sieve_machine.spec

    def measure():
        rows: dict[str, dict] = {}
        for name, (sequential_factory, pooled_factory) in _BACKENDS.items():
            sequential_rps, reference = _measure_sequential(
                sequential_factory, spec
            )
            batch_rps = {
                str(pool_size): round(
                    _measure_batch(pooled_factory, spec, pool_size, reference), 3
                )
                for pool_size in POOL_SIZES
            }
            rows[name] = {
                "sequential_runs_per_second": round(sequential_rps, 3),
                "batch_runs_per_second": batch_rps,
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    global _TRAJECTORY_WRITTEN
    _TRAJECTORY_WRITTEN = write_batch_trajectory(rows)

    lines = ["", "Batch serving throughput (runs/sec, "
             f"{BATCH_RUNS} runs x {BATCH_CYCLES} cycles, small sieve)"]
    for name, row in rows.items():
        batches = "  ".join(
            f"pool{size}={row['batch_runs_per_second'][str(size)]:8.1f}"
            for size in POOL_SIZES
        )
        lines.append(
            f"  {name:<12s} sequential={row['sequential_runs_per_second']:8.1f}  "
            + batches
        )
    print("\n".join(lines))

    # ---- the serving layer's acceptance line -------------------------------
    # the backends with a real preparation phase must beat the naive
    # per-request-prepare loop once the artifact is cached and pooled
    for name in ("threaded", "compiled"):
        sequential = rows[name]["sequential_runs_per_second"]
        pooled = rows[name]["batch_runs_per_second"]["4"]
        assert pooled > sequential, (
            f"{name}: pooled {pooled:.1f} runs/sec did not beat the naive "
            f"sequential loop at {sequential:.1f} runs/sec"
        )
        benchmark.extra_info[f"{name}_batch_speedup"] = round(
            pooled / sequential, 2
        )


def test_bench_batch_schema():
    """``BENCH_batch.json`` (written by the measurement test above) is
    well-formed: every backend row has positive throughput per pool size,
    and the serving win holds for the cache-backed backends."""
    if _TRAJECTORY_WRITTEN is None:
        pytest.skip("batch throughput test did not run this session")
    document = json.loads(BATCH_TRAJECTORY_PATH.read_text())
    # freshness: the file on disk is the one this session's run produced
    assert document == _TRAJECTORY_WRITTEN
    assert document["schema"] == BATCH_TRAJECTORY_SCHEMA
    assert document["workload"]["machine"] == "stack-machine-sieve"
    assert document["workload"]["cycles"] == BATCH_CYCLES
    assert document["pool_sizes"] == list(POOL_SIZES)
    backends = document["backends"]
    assert set(backends) == {"interpreter", "threaded", "compiled"}
    for name, row in backends.items():
        assert row["sequential_runs_per_second"] > 0, name
        assert set(row["batch_runs_per_second"]) == {
            str(size) for size in POOL_SIZES
        }
        for rate in row["batch_runs_per_second"].values():
            assert rate > 0, name
    for name in ("threaded", "compiled"):
        row = backends[name]
        assert (
            row["batch_runs_per_second"]["4"]
            > row["sequential_runs_per_second"]
        ), name
