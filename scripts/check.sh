#!/usr/bin/env bash
# One-stop verification gate: byte-compile the package, enforce the docs
# gate, then run the tier-1 test suite.  CI and pre-push hooks call this;
# see README.md ("Development").
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== docs gate =="
python scripts/check_docs.py

echo "== server smoke (boot, /healthz, one /v1/run, graceful shutdown) =="
# the long-lived HTTP server must come up on an ephemeral port, answer a
# liveness probe and serve one real simulation over the wire, then drain
# cleanly — so the serving front door cannot rot between full test runs
REPRO_CACHE_DIR="$(mktemp -d)" python - <<'SMOKE'
import json, sys, urllib.request
from repro.serving import SimulationServer

with SimulationServer(port=0) as server:
    with urllib.request.urlopen(server.url + "/healthz", timeout=30) as r:
        health = json.loads(r.read())
    assert health["status"] == "ok", health
    body = json.dumps({"machine": "counter", "cycles": 24,
                       "backend": "threaded"}).encode()
    with urllib.request.urlopen(urllib.request.Request(
            server.url + "/v1/run", data=body), timeout=60) as r:
        run = json.loads(r.read())
    assert run["result"]["cycles_run"] == 24, run
    assert run["result"]["outputs"], run
print("server smoke: healthz ok, one run served, shut down cleanly")
SMOKE

echo "== fleet smoke (boot 2 nodes, route a run, SIGKILL failover, rolling drain) =="
# the supervised fleet must boot two child servers on ephemeral ports,
# route one real run through the front door, survive a SIGKILL of the
# node that answered (the sibling serves the retry, attributed in the
# X-Repro-Retry header), then drain node by node — so the failover
# story cannot rot between full chaos-test runs
REPRO_CACHE_DIR="$(mktemp -d)" python - <<'FLEETSMOKE'
import json, urllib.request
from repro.serving.chaos import await_condition, hard_kill
from repro.serving.protocol import NODE_HEADER, RETRY_HEADER
from repro.serving.router import ServingFleet

def run(url):
    body = json.dumps({"machine": "counter", "cycles": 24,
                       "backend": "threaded"}).encode()
    with urllib.request.urlopen(urllib.request.Request(
            url + "/v1/run", data=body), timeout=60) as r:
        return json.loads(r.read()), dict(r.headers)

fleet = ServingFleet(nodes=2, quorum=1, health_interval=0.1,
                     child_args=["--no-disk-cache"]).start()
try:
    first, headers = run(fleet.url)
    assert first["result"]["cycles_run"] == 24, first
    home = headers[NODE_HEADER]
    hard_kill(fleet.supervisor.node(home).pid)
    second, headers = run(fleet.url)
    assert second["result"]["cycles_run"] == 24, second
    assert headers[NODE_HEADER] != home, headers
    assert headers[RETRY_HEADER].startswith(home), headers
    await_condition(
        lambda: fleet.supervisor.node(home).state in ("ready", "benched"),
        timeout=30, message="crashed node recovery")
finally:
    report = fleet.close()
assert all(node["clean"] or node["forced"] is False for node in report), report
print(f"fleet smoke: routed, failed over from {home} "
      f"(attributed), drained {len(report)} nodes")
FLEETSMOKE

echo "== tracing smoke (traced batch, JSONL export, /metrics scrape) =="
# one traced batch must leave behind a complete request trace — phases
# tiling the request interval, worker_run spans present — in the JSONL
# export, and /metrics must answer Prometheus text — so the
# observability pipeline cannot silently rot between full test runs
TRACE_DIR="$(mktemp -d)" REPRO_CACHE_DIR="$(mktemp -d)" python - <<'TRACESMOKE'
import json, os, urllib.request
from repro.serving import SimulationServer
from repro.serving.tracing import JsonlExporter, coverage_fraction

trace_dir = os.environ["TRACE_DIR"]
with SimulationServer(port=0, trace_sink="jsonl",
                      trace_dir=trace_dir) as server:
    body = json.dumps({"machine": "counter", "backend": "threaded",
                       "runs": [{"cycles": 24}] * 2}).encode()
    with urllib.request.urlopen(urllib.request.Request(
            server.url + "/v1/batch", data=body), timeout=60) as r:
        document = json.loads(r.read())
        trace_id = r.headers["X-Repro-Trace"]
    assert document["ok"], document
    with urllib.request.urlopen(server.url + "/metrics", timeout=30) as r:
        assert r.headers["Content-Type"].startswith("text/plain"), r.headers
        scrape = r.read().decode()
    assert "repro_http_requests_total" in scrape, scrape[:400]
    assert "repro_span_duration_seconds_bucket" in scrape, scrape[:400]
traces = {t.trace_id: t for t in
          JsonlExporter.read(os.path.join(trace_dir, "traces.jsonl"))}
trace = traces[trace_id]
assert coverage_fraction(trace) >= 0.95, trace.to_json()
assert any(s.name == "worker_run" for s in trace.spans), trace.to_json()
print(f"tracing smoke: trace {trace_id[:8]}… exported "
      f"({len(trace.spans)} spans), /metrics scraped")
TRACESMOKE

echo "== chaos smoke (crash recovery, deadlines, backpressure, degradation) =="
# the fast end-to-end slice of the chaos-injection harness: a worker
# kill is quarantined without hurting innocents, a hung worker is
# bounded by the deadline backstop, a saturated server answers 429
# while /readyz goes not-ready, and a broken backend degrades to the
# fallback chain — so the fault-tolerance story cannot silently rot
REPRO_CHAOS_SMOKE=1 python -m pytest tests/serving/test_chaos.py \
    -x -q -k smoke

echo "== batch benchmark smoke (executor matrix + server overhead, schema only) =="
# tiny sieve batch through every executor strategy plus the HTTP-vs-in-
# process overhead rows; both write schema-checked trajectories to temp
# paths, so the serving matrices cannot silently rot between full runs
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/test_batch_throughput.py \
    benchmarks/test_server_overhead.py -x -q

echo "== lane smoke (serve-batch --executor lane --check on the sieve) =="
# the lane executor must serve a real batch end-to-end through the CLI
# and verify itself bit-identical against the sequential loop (--check),
# both standalone and composed with the process pool — so the
# vectorized path cannot silently rot between full test runs
LANE_SPEC="$(mktemp --suffix=.spec)"
python - "$LANE_SPEC" <<'LANESPEC'
import sys
from repro.machines.library import get_machine
from repro.rtl.writer import spec_to_text

machine = get_machine("stack-machine-sieve").build()
spec = getattr(machine, "spec", machine)
with open(sys.argv[1], "w") as handle:
    handle.write(spec_to_text(spec))
LANESPEC
python -m repro serve-batch "$LANE_SPEC" --executor lane --check \
    -c 1200 -n 8 -b compiled > /dev/null
python -m repro serve-batch "$LANE_SPEC" --executor process --lane-width 4 \
    --check -c 1200 -n 8 -w 2 -b compiled > /dev/null
rm -f "$LANE_SPEC"
echo "lane smoke: batches served and verified bit-identical"

echo "== lane fuzz smoke (fixed seed, lane executor only) =="
# a seeded slice of the differential fuzzer pinned to the lane executor:
# random machines (memories, selectors, specopt rewrites) through lane
# groups, demanding bit-identity with the sequential reference
python -m repro fuzz --seed 11 --count 8 --executors lane

echo "== differential fuzz smoke (fixed seed, full backend x executor matrix) =="
# twenty seeded random machines, each JSON-round-tripped and run through
# every backend x specopt x executor configuration demanding bit-identical
# results — so neither the interchange format nor backend equivalence on
# machines nobody wrote can silently rot between full fuzz sessions
python -m repro fuzz --seed 7 --count 20

echo "== tier-1 tests =="
python -m pytest -x -q
