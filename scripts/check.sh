#!/usr/bin/env bash
# One-stop verification gate: byte-compile the package, enforce the docs
# gate, then run the tier-1 test suite.  CI and pre-push hooks call this;
# see README.md ("Development").
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== docs gate =="
python scripts/check_docs.py

echo "== tier-1 tests =="
python -m pytest -x -q
