#!/usr/bin/env bash
# One-stop verification gate: byte-compile the package, enforce the docs
# gate, then run the tier-1 test suite.  CI and pre-push hooks call this;
# see README.md ("Development").
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== docs gate =="
python scripts/check_docs.py

echo "== batch benchmark smoke (executor matrix, schema only) =="
# tiny sieve batch through every executor strategy; writes the schema-v2
# trajectory to a temp path and schema-checks it, so the serial/thread/
# process matrix cannot silently rot between full benchmark runs
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/test_batch_throughput.py -x -q

echo "== tier-1 tests =="
python -m pytest -x -q
