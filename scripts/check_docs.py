#!/usr/bin/env python3
"""Documentation gate: every public module under ``src/repro`` must carry a
module-level docstring.

A "public module" is any ``.py`` file whose name does not start with an
underscore, plus the package initialisers (``__init__.py``) and the
``__main__.py`` entry point.  The gate runs in tier-1 via
``tests/test_docs_gate.py`` and can be invoked standalone::

    python scripts/check_docs.py

Exit status 0 means every module passes; 1 lists the offenders.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Repository root (this file lives in <root>/scripts/).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: The package tree the gate covers.
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

#: Dunder modules that are public despite the leading underscore.
PUBLIC_DUNDERS = {"__init__.py", "__main__.py"}

#: Modules the gate additionally requires to *exist* (repo-relative to
#: ``src/repro``).  The blanket rule only covers files that are present;
#: these are load-bearing public surfaces whose disappearance should fail
#: the gate too — notably the HTTP serving layer, whose documented wire
#: format (docs/api-reference.md) depends on them.
REQUIRED_MODULES = (
    "serving/server.py",
    "serving/protocol.py",
    "serving/pool.py",
    "serving/fleet.py",
    "serving/router.py",
    "serving/tracing.py",
    "lowering/lanes.py",
    "compiler/cache.py",
    "rtl/interchange.py",
    "fuzz/__init__.py",
    "fuzz/generator.py",
    "fuzz/differential.py",
    "fuzz/shrink.py",
    "fuzz/corpus.py",
)


def is_public_module(path: Path) -> bool:
    """True for modules the gate requires a docstring on."""
    name = path.name
    return not name.startswith("_") or name in PUBLIC_DUNDERS


def missing_docstrings(root: Path = SOURCE_ROOT) -> list[Path]:
    """Public modules under *root* without a module docstring."""
    problems: list[Path] = []
    for path in sorted(root.rglob("*.py")):
        if not is_public_module(path):
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        if not ast.get_docstring(tree):
            problems.append(path)
    return problems


def missing_required_modules(root: Path = SOURCE_ROOT) -> list[str]:
    """Entries of :data:`REQUIRED_MODULES` that do not exist under *root*."""
    return [name for name in REQUIRED_MODULES if not (root / name).is_file()]


def main() -> int:
    absent = missing_required_modules()
    if absent:
        print("required public modules are missing:", file=sys.stderr)
        for name in absent:
            print(f"  src/repro/{name}", file=sys.stderr)
        return 1
    problems = missing_docstrings()
    if problems:
        print("public modules missing a module docstring:", file=sys.stderr)
        for path in problems:
            print(f"  {path.relative_to(REPO_ROOT)}", file=sys.stderr)
        return 1
    count = sum(
        1 for path in SOURCE_ROOT.rglob("*.py") if is_public_module(path)
    )
    print(f"docs gate: {count} public modules all carry docstrings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
