"""Crasher corpus: persisted fuzz cases replayed as regression tests.

When a fuzz session finds a mismatch it shrinks the machine and writes a
*case document* — the interchange-JSON spec plus the run parameters that
reproduce the failure, and enough metadata (seed, failure description) to
understand it later — into a corpus directory.  ``tests/fuzz/corpus/``
holds the committed corpus; ``tests/fuzz/test_corpus.py`` replays every
document through the differential runner on each run of the suite, so a
fixed divergence can never silently return.

The document is a wrapper around the interchange format rather than an
extension of it: :func:`repro.rtl.interchange.spec_from_json` strictly
rejects unknown keys, so run parameters live beside the spec, not inside
it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import SpecFormatError
from repro.rtl.interchange import spec_from_json, spec_to_json
from repro.rtl.spec import Specification

#: Format marker for a persisted fuzz case.
CASE_FORMAT = "repro-fuzz-case"
CASE_VERSION = 1


@dataclass(frozen=True)
class FuzzCase:
    """One persisted fuzz case: a machine plus the run that exposes it."""

    spec: Specification
    cycles: int
    inputs: tuple[int, ...] = ()
    meta: Mapping[str, object] = field(default_factory=dict)
    #: where the case was loaded from (``None`` for in-memory cases)
    path: Path | None = None

    @property
    def name(self) -> str:
        if self.path is not None:
            return self.path.stem
        return self.spec.source_name


def case_to_document(
    spec: Specification,
    cycles: int,
    inputs: Iterable[int] = (),
    meta: Mapping[str, object] | None = None,
) -> dict:
    """The JSON document persisting one fuzz case."""
    document: dict = {
        "format": CASE_FORMAT,
        "version": CASE_VERSION,
        "spec": spec_to_json(spec),
        "run": {"cycles": int(cycles), "inputs": [int(v) for v in inputs]},
    }
    if meta:
        document["meta"] = dict(meta)
    return document


def case_from_document(doc: object, path: Path | None = None) -> FuzzCase:
    """Parse a persisted fuzz case, validating the wrapper strictly."""
    where = str(path) if path is not None else "$"
    if not isinstance(doc, dict):
        raise SpecFormatError("fuzz case document must be a JSON object",
                              where)
    if doc.get("format") != CASE_FORMAT:
        raise SpecFormatError(
            f"expected format {CASE_FORMAT!r}, got {doc.get('format')!r}",
            f"{where}.format",
        )
    if doc.get("version") != CASE_VERSION:
        raise SpecFormatError(
            f"unsupported fuzz case version {doc.get('version')!r}",
            f"{where}.version",
        )
    unknown = set(doc) - {"format", "version", "spec", "run", "meta"}
    if unknown:
        raise SpecFormatError(
            f"unknown key(s) {sorted(unknown)!r}", where
        )
    run = doc.get("run")
    if not isinstance(run, dict):
        raise SpecFormatError("missing or malformed 'run' object",
                              f"{where}.run")
    cycles = run.get("cycles")
    if not isinstance(cycles, int) or isinstance(cycles, bool) or cycles < 1:
        raise SpecFormatError("run.cycles must be a positive integer",
                              f"{where}.run.cycles")
    inputs = run.get("inputs", [])
    if not isinstance(inputs, list) or any(
        not isinstance(v, int) or isinstance(v, bool) for v in inputs
    ):
        raise SpecFormatError("run.inputs must be a list of integers",
                              f"{where}.run.inputs")
    meta = doc.get("meta", {})
    if not isinstance(meta, dict):
        raise SpecFormatError("meta must be an object", f"{where}.meta")
    spec = spec_from_json(doc.get("spec"))
    return FuzzCase(
        spec=spec, cycles=cycles, inputs=tuple(inputs), meta=meta, path=path
    )


def save_case(
    directory: Path | str,
    spec: Specification,
    cycles: int,
    inputs: Iterable[int] = (),
    meta: Mapping[str, object] | None = None,
    stem: str | None = None,
) -> Path:
    """Persist a case into *directory* and return the written path.

    The file name defaults to ``crasher-<fingerprint12>.json`` so the same
    minimised machine is never stored twice.
    """
    from repro.compiler.cache import spec_fingerprint

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if stem is None:
        stem = f"crasher-{spec_fingerprint(spec)[:12]}"
    path = directory / f"{stem}.json"
    document = case_to_document(spec, cycles, inputs, meta)
    path.write_text(json.dumps(document, indent=2) + "\n",
                    encoding="utf-8")
    return path


def load_case(path: Path | str) -> FuzzCase:
    """Load one persisted fuzz case from *path*."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SpecFormatError(f"not valid JSON: {exc}", str(path)) from exc
    return case_from_document(doc, path=path)


def load_corpus(directory: Path | str) -> list[FuzzCase]:
    """Load every ``*.json`` case under *directory*, sorted by name.

    A missing directory is an empty corpus, not an error — a fresh
    checkout has no crashers yet.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_case(path) for path in sorted(directory.glob("*.json"))]
