"""Differential execution: one spec, every backend × specopt × executor.

The equivalence matrix that guards the lowering pipeline
(``tests/integration/test_backend_equivalence.py``) asserts bit-identity
over the seven bundled machines; this module is the same assertion as a
*function over arbitrary specifications*, so the fuzzer can apply it to
thousands of generated machines:

* **sequential phase** — the interpreter without spec-level optimization
  is the reference; every backend × specopt on/off runs with identical
  inputs and full instrumentation.  Results and traces must match the
  reference bit for bit; statistics must match within each schedule class
  (plain configs against the reference, specopt configs against the
  specopt'd interpreter, which executes the same optimized schedule).
* **executor phase** — every backend × specopt configuration again, but
  through a :class:`~repro.serving.SimulationPool` on each executor
  strategy (serial / thread / process / lane).  Each pooled run must be
  bit-identical — results, traces *and statistics* — to the sequential
  run of the same configuration.  Lane groups run untraced by design
  (tracing falls back to the scalar path), so the lane configurations
  drop tracing from the request and skip trace comparison; statistics
  are trace-independent, which keeps the traced sequential run a valid
  reference.  A stats-off pair rides along to exercise the compiled
  backend's generated ``simulate_lanes`` entry point (stats-on groups
  route through the generic lane evaluator).

A failure is a :class:`DifferentialFailure` naming the configuration and
the mismatches; :class:`DifferentialReport` aggregates them per spec.  A
run that *raises* is also differential material: if the reference raises,
every configuration must raise the same error type (a machine that breaks
must break identically everywhere).

:func:`ir_fingerprint` hashes the pickled lowered
:class:`~repro.lowering.program.CycleProgram`, giving the fuzzer a strict
"same IR" check for JSON round-trips on top of the textual
:func:`~repro.compiler.cache.spec_fingerprint`.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.compiler.cache import spec_fingerprint
from repro.compiler.compiled import CompiledBackend
from repro.compiler.threaded import ThreadedBackend
from repro.core.backend import Backend
from repro.core.comparison import compare_results
from repro.core.iosystem import QueueIO
from repro.core.results import SimulationResult
from repro.core.trace import TraceOptions
from repro.errors import SimulationError
from repro.interp.interpreter import InterpreterBackend
from repro.lowering import lower
from repro.rtl.parser import parse_spec
from repro.rtl.spec import Specification
from repro.rtl.writer import spec_to_text
from repro.serving.batch import RunRequest
from repro.serving.executor import EXECUTOR_NAMES
from repro.serving.pool import SimulationPool

#: Reference configuration label (interpreter, no spec-level optimization).
REFERENCE_CONFIG = "interpreter"


def backend_matrix() -> list[tuple[str, bool, "type[Backend]"]]:
    """The (label, specopt, backend factory) configurations under test."""
    matrix: list[tuple[str, bool, type[Backend]]] = []
    for specopt in (False, True):
        suffix = "+specopt" if specopt else ""
        matrix.append((f"interpreter{suffix}", specopt, InterpreterBackend))
        matrix.append((f"threaded{suffix}", specopt, ThreadedBackend))
        matrix.append((f"compiled{suffix}", specopt, CompiledBackend))
    return matrix


def _make_backend(factory: "type[Backend]", specopt: bool) -> Backend:
    if factory is InterpreterBackend:
        return InterpreterBackend(specopt=specopt)
    return factory(specopt=specopt)  # type: ignore[call-arg]


def ir_fingerprint(spec: Specification) -> str:
    """Hash of the pickled lowered IR (the artifact every backend consumes).

    Two specifications with equal IR fingerprints lower to byte-identical
    :class:`~repro.lowering.program.CycleProgram` payloads — the strict
    form of "the DiskCache / PoolRegistry key survives a round trip".  The
    specification is canonicalised through its text form first (exactly the
    normalisation :func:`~repro.compiler.cache.spec_fingerprint` hashes),
    so presentation metadata — expression source strings, the spec's
    ``source_name`` — cannot leak into the hash while any semantic
    difference, or any nondeterminism in lowering itself, still shows.
    """
    canonical = parse_spec(spec_to_text(spec))
    return hashlib.sha256(pickle.dumps(lower(canonical))).hexdigest()


@dataclass(frozen=True)
class DifferentialFailure:
    """One configuration that disagreed with its reference."""

    config: str
    mismatches: tuple[str, ...]

    def describe(self) -> str:
        return f"[{self.config}] " + "; ".join(self.mismatches)


@dataclass
class DifferentialReport:
    """Everything the differential runner learned about one specification."""

    fingerprint: str
    cycles: int
    inputs: tuple[int, ...]
    #: configurations executed (sequential + pooled)
    configs_run: int = 0
    failures: list[DifferentialFailure] = field(default_factory=list)
    #: the error type the reference raised, or ``None`` for a clean run
    reference_error: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        if self.ok:
            return (
                f"ok: {self.configs_run} configurations bit-identical "
                f"({self.cycles} cycles)"
            )
        lines = [failure.describe() for failure in self.failures]
        return f"{len(self.failures)} mismatching configuration(s): " + \
            " | ".join(lines)


_TRACE = TraceOptions(trace_cycles=True, trace_memory_accesses=True)


def _sequential_run(
    backend: Backend, spec: Specification, cycles: int,
    inputs: Sequence[int],
) -> "SimulationResult | type":
    try:
        return backend.run(
            spec, cycles=cycles, io=QueueIO(inputs, strict=False),
            trace=_TRACE,
        )
    except SimulationError as exc:
        return type(exc)


def run_differential(
    spec: Specification,
    cycles: int,
    inputs: Sequence[int] = (),
    executors: Sequence[str] = EXECUTOR_NAMES,
    pool_workers: int = 2,
    runs_per_pool: int = 2,
    matrix: "Sequence[tuple[str, bool, type[Backend]]] | None" = None,
) -> DifferentialReport:
    """Run *spec* through the full backend × specopt × executor matrix.

    Returns a report; never raises on a mismatch (raising is the caller's
    policy decision — the fuzz session shrinks and persists instead).
    *matrix* overrides :func:`backend_matrix`; the sabotage tests inject a
    deliberately corrupted backend this way to prove mismatches are caught,
    shrunk and persisted.
    """
    if matrix is None:
        matrix = backend_matrix()
    report = DifferentialReport(
        fingerprint=spec_fingerprint(spec),
        cycles=cycles,
        inputs=tuple(inputs),
    )

    # -- sequential phase ---------------------------------------------------
    sequential: dict[str, SimulationResult | type] = {}
    for label, specopt, factory in matrix:
        sequential[label] = _sequential_run(
            _make_backend(factory, specopt), spec, cycles, inputs
        )
        report.configs_run += 1

    reference = sequential[REFERENCE_CONFIG]
    if isinstance(reference, type):
        # the machine breaks on the reference: every configuration must
        # break identically, and there is nothing to pool
        report.reference_error = reference.__name__
        for label, outcome in sequential.items():
            if label == REFERENCE_CONFIG:
                continue
            if not isinstance(outcome, type) or outcome is not reference:
                got = (
                    outcome.__name__ if isinstance(outcome, type)
                    else "a clean run"
                )
                report.failures.append(DifferentialFailure(
                    config=label,
                    mismatches=(
                        f"reference raised {reference.__name__} but this "
                        f"configuration produced {got}",
                    ),
                ))
        return report

    # a custom (sabotage) matrix may omit the specopt'd interpreter; specopt
    # stats then have no same-schedule reference and are not compared
    specopt_reference = sequential.get("interpreter+specopt")
    for label, specopt, _factory in matrix:
        outcome = sequential[label]
        if label == REFERENCE_CONFIG:
            continue
        if isinstance(outcome, type):
            report.failures.append(DifferentialFailure(
                config=label,
                mismatches=(f"raised {outcome.__name__} but the reference "
                            "ran cleanly",),
            ))
            continue
        mismatches = compare_results(reference, outcome, compare_trace=True)
        # statistics are schedule-class-wide: plain configs execute the
        # reference schedule, specopt configs the optimized one
        stats_reference = specopt_reference if specopt else reference
        if (
            stats_reference is not None
            and not isinstance(stats_reference, type)
            and outcome.stats != stats_reference.stats
        ):
            mismatches.append(
                "statistics differ from the "
                + ("specopt" if specopt else "reference")
                + " schedule class"
            )
        if mismatches:
            report.failures.append(DifferentialFailure(
                config=label, mismatches=tuple(mismatches)
            ))

    # -- executor phase -----------------------------------------------------
    request = RunRequest(
        cycles=cycles, inputs=tuple(inputs), trace=_TRACE,
        collect_stats=True,
    )
    for executor in executors:
        if executor == "lane":
            # untraced lane-eligible requests; the stats-off pair drives
            # the compiled backend's generated lane entry point
            requests = (
                [replace(request, trace=False)] * runs_per_pool
                + [replace(request, trace=False, collect_stats=False)] * 2
            )
        else:
            requests = [request] * runs_per_pool
        for label, specopt, factory in matrix:
            config = f"{label}@{executor}"
            expected = sequential[label]
            if isinstance(expected, type):  # pragma: no cover - guarded above
                continue
            try:
                with SimulationPool(
                    spec,
                    backend=_make_backend(factory, specopt),
                    executor=executor,
                    max_workers=pool_workers,
                ) as pool:
                    batch = pool.run_batch(requests)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                report.failures.append(DifferentialFailure(
                    config=config,
                    mismatches=(f"pool failed: {type(exc).__name__}: {exc}",),
                ))
                continue
            report.configs_run += 1
            for item in batch.items:
                if not item.ok:
                    report.failures.append(DifferentialFailure(
                        config=config,
                        mismatches=(
                            f"run {item.index} failed: "
                            f"{type(item.error).__name__}: {item.error}",
                        ),
                    ))
                    continue
                mismatches = compare_results(
                    expected, item.result,
                    compare_trace=(executor != "lane"),
                    compare_stats=item.request.collect_stats,
                )
                if mismatches:
                    report.failures.append(DifferentialFailure(
                        config=f"{config}#{item.index}",
                        mismatches=tuple(mismatches),
                    ))
    return report
