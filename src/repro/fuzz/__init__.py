"""Differential fuzzing for the simulator stack.

The equivalence matrix proves the three backends agree on the bundled
machines; this package proves they agree on machines nobody wrote.  A fuzz
session (:func:`run_fuzz_session`) draws seeded random specifications from
:mod:`repro.fuzz.generator` and, for each one:

1. **round-trips** it through the interchange JSON format, asserting that
   both the textual fingerprint (:func:`~repro.compiler.cache.spec_fingerprint`)
   and the lowered-IR fingerprint (:func:`~repro.fuzz.differential.ir_fingerprint`)
   survive unchanged;
2. **runs the differential matrix** (:mod:`repro.fuzz.differential`):
   every backend × specopt on/off, sequentially and through
   :class:`~repro.serving.SimulationPool` on every executor strategy,
   asserting bit-identical results, traces and statistics;
3. on a mismatch, **shrinks** the machine (:mod:`repro.fuzz.shrink`) to a
   1-minimal reproducer and **persists** it (:mod:`repro.fuzz.corpus`) so
   it becomes a regression test.

``repro fuzz --seed N --count K`` is the CLI face of this module; the
committed corpus under ``tests/fuzz/corpus/`` is replayed by the test
suite on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.compiler.cache import spec_fingerprint
from repro.fuzz.corpus import (
    FuzzCase,
    case_from_document,
    case_to_document,
    load_case,
    load_corpus,
    save_case,
)
from repro.fuzz.differential import (
    DifferentialFailure,
    DifferentialReport,
    ir_fingerprint,
    run_differential,
)
from repro.fuzz.generator import (
    GeneratedMachine,
    GeneratorConfig,
    generate_corpus,
    generate_machine,
)
from repro.fuzz.shrink import ShrinkResult, shrink_case
from repro.rtl.interchange import spec_from_json, spec_to_json
from repro.serving.executor import EXECUTOR_NAMES

__all__ = [
    "DifferentialFailure",
    "DifferentialReport",
    "FuzzCase",
    "FuzzCaseResult",
    "FuzzSessionReport",
    "GeneratedMachine",
    "GeneratorConfig",
    "ShrinkResult",
    "case_from_document",
    "case_to_document",
    "generate_corpus",
    "generate_machine",
    "ir_fingerprint",
    "load_case",
    "load_corpus",
    "run_differential",
    "run_fuzz_session",
    "save_case",
    "shrink_case",
]


@dataclass(frozen=True)
class FuzzCaseResult:
    """The outcome of fuzzing one generated machine."""

    seed: int
    fingerprint: str
    #: ``ok`` | ``roundtrip`` (JSON round trip broke) | ``differential``
    status: str
    detail: str = ""
    report: DifferentialReport | None = None
    shrink: ShrinkResult | None = None
    crasher_path: Path | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class FuzzSessionReport:
    """Aggregate outcome of one fuzz session."""

    seed: int
    count: int
    results: list[FuzzCaseResult] = field(default_factory=list)

    @property
    def failures(self) -> list[FuzzCaseResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        configs = sum(
            result.report.configs_run
            for result in self.results if result.report is not None
        )
        if self.ok:
            return (
                f"fuzz: {len(self.results)} machines ok "
                f"({configs} configurations, seed {self.seed})"
            )
        lines = [
            f"fuzz: {len(self.failures)}/{len(self.results)} machines "
            f"failed (seed {self.seed})"
        ]
        for result in self.failures:
            lines.append(f"  seed {result.seed} [{result.status}] "
                         f"{result.detail}")
            if result.crasher_path is not None:
                lines.append(f"    reproducer: {result.crasher_path}")
        return "\n".join(lines)


def _failing_executors(report: DifferentialReport) -> tuple[str, ...]:
    """The executor strategies involved in a report's failures.

    Failures in the sequential phase need no executors at all to
    reproduce, which keeps shrink predicates cheap."""
    executors = set()
    for failure in report.failures:
        config = failure.config.split("#", 1)[0]
        if "@" in config:
            executors.add(config.split("@", 1)[1])
    return tuple(sorted(executors))


def run_fuzz_session(
    seed: int,
    count: int,
    config: GeneratorConfig | None = None,
    executors: Sequence[str] = EXECUTOR_NAMES,
    shrink: bool = True,
    corpus_dir: Path | str | None = None,
    differential: Callable[..., DifferentialReport] = run_differential,
    log: Callable[[str], None] | None = None,
) -> FuzzSessionReport:
    """Fuzz *count* machines derived from *seed*; see the module docstring.

    ``differential`` is injectable so tests can run a sabotaged matrix
    through the full session machinery (mismatch → shrink → corpus).
    """
    session = FuzzSessionReport(seed=seed, count=count)
    for machine in generate_corpus(seed, count, config):
        fingerprint = spec_fingerprint(machine.spec)

        # 1. JSON round trip must preserve both fingerprints exactly
        restored = spec_from_json(spec_to_json(machine.spec))
        if (
            spec_fingerprint(restored) != fingerprint
            or ir_fingerprint(restored) != ir_fingerprint(machine.spec)
        ):
            session.results.append(FuzzCaseResult(
                seed=machine.seed, fingerprint=fingerprint,
                status="roundtrip",
                detail="JSON round trip changed the specification",
            ))
            if log:
                log(f"seed {machine.seed}: ROUND-TRIP MISMATCH")
            continue

        # 2. the differential matrix
        report = differential(
            machine.spec, machine.cycles, machine.inputs,
            executors=executors,
        )
        if report.ok:
            session.results.append(FuzzCaseResult(
                seed=machine.seed, fingerprint=fingerprint, status="ok",
                report=report,
            ))
            continue
        if log:
            log(f"seed {machine.seed}: MISMATCH — {report.describe()}")

        # 3. shrink to a 1-minimal reproducer, then persist it
        case = (machine.spec, machine.cycles, machine.inputs)
        shrink_result = None
        if shrink:
            predicate_executors = _failing_executors(report)

            def still_failing(spec, cycles, inputs):
                return not differential(
                    spec, cycles, inputs, executors=predicate_executors
                ).ok

            shrink_result = shrink_case(
                machine.spec, machine.cycles, machine.inputs, still_failing
            )
            case = (shrink_result.spec, shrink_result.cycles,
                    shrink_result.inputs)
            if log:
                log(f"seed {machine.seed}: {shrink_result.describe()}")

        crasher_path = None
        if corpus_dir is not None:
            crasher_path = save_case(
                corpus_dir, *case,
                meta={
                    "seed": machine.seed,
                    "session_seed": seed,
                    "original_fingerprint": fingerprint,
                    "failure": report.describe(),
                },
            )
            if log:
                log(f"seed {machine.seed}: reproducer saved to "
                    f"{crasher_path}")

        session.results.append(FuzzCaseResult(
            seed=machine.seed, fingerprint=fingerprint,
            status="differential", detail=report.describe(),
            report=report, shrink=shrink_result, crasher_path=crasher_path,
        ))
    return session
