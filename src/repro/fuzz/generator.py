"""Seeded random machine generator.

Builds sized random — but always *valid* — specifications: layered
component graphs of ALUs, selectors, registers, RAMs and I/O ports, plus
an optional microcode section (a program counter walking a control ROM
whose bit fields drive ALU function selects and memory operations).  Every
structural choice comes from one ``random.Random(seed)``, so a seed fully
determines the machine: the differential fuzzer and the regression corpus
both rely on ``generate_machine(seed)`` being reproducible forever.

Validity is by construction, then enforced:

* combinational components only reference *earlier* producers, so the
  dependency graph is acyclic;
* selector select expressions are bit fields exactly as wide as the case
  list (``2**k`` cases for a ``k``-bit field), so indices cannot run off
  the end;
* RAM addresses are bit fields exactly as wide as the (power-of-two)
  memory, so addresses cannot leave the cell range;
* microcode control words are composed from fields that are individually
  valid — ALU function nibbles stay within the fourteen defined codes;
* the result must pass :func:`repro.rtl.validate.ensure_valid` — a
  generator bug raises instead of producing a corrupt corpus entry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.rtl import alu_ops
from repro.rtl.bits import WORD_BITS
from repro.rtl.builder import SpecBuilder
from repro.rtl.expressions import (
    BitStringField,
    ComponentRef,
    ConstantField,
    Expression,
    Field,
)
from repro.rtl.spec import Specification

#: ALU function codes the generator draws from (every defined code except
#: the degenerate always-zero pair, which adds nothing to a differential).
_FUNCTIONS = (
    alu_ops.FN_RIGHT,
    alu_ops.FN_LEFT,
    alu_ops.FN_NOT,
    alu_ops.FN_ADD,
    alu_ops.FN_SUB,
    alu_ops.FN_SHIFT_LEFT,
    alu_ops.FN_MUL,
    alu_ops.FN_AND,
    alu_ops.FN_OR,
    alu_ops.FN_XOR,
    alu_ops.FN_EQ,
    alu_ops.FN_LT,
)

#: Memory operation words for stateful components: read, write,
#: write+trace, read+trace.
_MEMORY_OPS = (0, 1, 5, 9)


@dataclass(frozen=True)
class GeneratorConfig:
    """Size knobs for one generated machine."""

    #: ceiling on the number of components (the generator may stay under)
    max_components: int = 16
    #: inclusive cycle-count range for the default run
    min_cycles: int = 8
    max_cycles: int = 48
    #: probability of emitting the microcode (control ROM) section
    microcode_probability: float = 0.5
    #: largest power-of-two RAM size
    max_memory_bits: int = 4
    #: most memory-mapped input values supplied to a run
    max_inputs: int = 4

    def __post_init__(self) -> None:
        if self.max_components < 4:
            raise ValueError("max_components must be at least 4")
        if not 0 < self.min_cycles <= self.max_cycles:
            raise ValueError("cycle range must satisfy 0 < min <= max")


@dataclass(frozen=True)
class GeneratedMachine:
    """One generated machine plus the run parameters to exercise it."""

    spec: Specification
    seed: int
    cycles: int
    inputs: tuple[int, ...] = ()
    config: GeneratorConfig = field(default_factory=GeneratorConfig)

    def with_spec(self, spec: Specification) -> "GeneratedMachine":
        """The same case over a different (e.g. shrunk) specification."""
        return replace(self, spec=spec)


def _operand(rng: random.Random, producers: list[str]) -> Field:
    """One random expression field reading a producer or a constant."""
    roll = rng.random()
    if roll < 0.15:
        return ConstantField(rng.randrange(0, 1 << 12))
    if roll < 0.22:
        width = rng.randrange(2, 9)
        return ConstantField(rng.randrange(0, 1 << width), width)
    if roll < 0.30:
        bits = "".join(rng.choice("01") for _ in range(rng.randrange(1, 9)))
        return BitStringField(bits)
    name = rng.choice(producers)
    shape = rng.random()
    if shape < 0.5:
        return ComponentRef(name)
    if shape < 0.7:
        return ComponentRef(name, rng.randrange(0, 8))
    low = rng.randrange(0, 12)
    high = low + rng.randrange(0, 8)
    return ComponentRef(name, low, min(high, WORD_BITS - 1))


def _expression(rng: random.Random, producers: list[str]) -> Expression:
    """A random expression: one field, or a bounded concatenation."""
    if rng.random() < 0.7:
        return Expression((_operand(rng, producers),))
    # concatenation: leftmost field may be unbounded, the rest must carry
    # explicit widths; keep the bounded widths comfortably inside the word
    fields: list[Field] = [_operand(rng, producers)]
    for _ in range(rng.randrange(1, 3)):
        bounded = _operand(rng, producers)
        if bounded.width is None:
            if isinstance(bounded, ComponentRef):
                low = rng.randrange(0, 8)
                bounded = ComponentRef(bounded.name, low,
                                       low + rng.randrange(0, 6))
            else:
                assert isinstance(bounded, ConstantField)
                width = rng.randrange(2, 9)
                bounded = ConstantField(bounded.value & ((1 << width) - 1),
                                        width)
        fields.append(bounded)
    bounded_width = sum(f.width for f in fields[1:])
    head_width = fields[0].width
    if bounded_width + (head_width or 1) > WORD_BITS:
        return Expression((fields[0],))
    return Expression(tuple(fields))


def _bit_field(rng: random.Random, producers: list[str], bits: int) -> str:
    """A reference exactly *bits* wide, in specification syntax."""
    name = rng.choice(producers)
    low = rng.randrange(0, 4)
    if bits == 1:
        return f"{name}.{low}"
    return f"{name}.{low}.{low + bits - 1}"


def _control_word(rng: random.Random) -> int:
    """One microcode word: two valid function nibbles, an operation
    nibble and an 8-bit literal, packed low to high."""
    funct_a = rng.choice(_FUNCTIONS)
    funct_b = rng.choice(_FUNCTIONS)
    operation = rng.choice(_MEMORY_OPS + (2, 3))
    literal = rng.randrange(0, 256)
    return funct_a | (funct_b << 4) | (operation << 8) | (literal << 12)


def generate_machine(
    seed: int, config: GeneratorConfig | None = None
) -> GeneratedMachine:
    """Generate the machine determined by *seed* under *config*."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    builder = SpecBuilder(f"fuzz machine seed={seed}")
    budget = rng.randrange(4, config.max_components + 1)

    #: names combinational components may read (grows as layers are added)
    producers: list[str] = []
    #: (name, traced) for every component, to pick trace marks at the end
    component_names: list[str] = []

    def spend(count: int = 1) -> bool:
        nonlocal budget
        if budget < count:
            return False
        budget -= count
        return True

    # -- registers: the sequential backbone (wired at the end) --------------
    register_count = rng.randrange(1, 4)
    registers = [f"r{i}" for i in range(register_count)]
    spend(register_count)
    producers.extend(registers)
    component_names.extend(registers)

    # -- optional microcode section: pc -> control ROM ----------------------
    control = None
    if rng.random() < config.microcode_probability and spend(3):
        rom_bits = rng.randrange(2, 4)
        words = [_control_word(rng) for _ in range(1 << rom_bits)]
        builder.alu("pcinc", alu_ops.FN_ADD, "pc", 1)
        builder.register("pc", data="pcinc", initial_value=0)
        builder.rom("ctrl", address=f"pc.0.{rom_bits - 1}", contents=words)
        control = "ctrl"
        producers.extend(["pc", "ctrl"])
        component_names.extend(["pcinc", "pc", "ctrl"])

    # -- combinational layers: ALUs and selectors ---------------------------
    alu_index = 0
    selector_index = 0
    layer_budget = rng.randrange(1, 6)
    for _ in range(layer_budget):
        if not spend():
            break
        if rng.random() < 0.25 and len(producers) >= 2:
            bits = rng.randrange(1, 3)
            name = f"s{selector_index}"
            selector_index += 1
            builder.selector(
                name,
                _bit_field(rng, producers, bits),
                [_expression(rng, producers) for _ in range(1 << bits)],
            )
        else:
            name = f"a{alu_index}"
            alu_index += 1
            if control is not None and rng.random() < 0.5:
                # microcode-driven function select: the ROM word's low (or
                # next) nibble, both constrained to valid codes
                funct = control + rng.choice((".0.3", ".4.7"))
            else:
                funct = rng.choice(_FUNCTIONS)
            builder.alu(
                name,
                funct,
                _expression(rng, producers),
                _expression(rng, producers),
            )
        producers.append(name)
        component_names.append(name)

    # -- stateful tail: RAM, input and output ports -------------------------
    if spend():
        ram_bits = rng.randrange(1, config.max_memory_bits + 1)
        if control is not None and rng.random() < 0.5:
            # microcode-driven operation: bits 8..9 give read/write/in/out
            operation = f"{control}.8.9"
        else:
            operation = rng.choice(_MEMORY_OPS)
        initial = None
        if rng.random() < 0.5:
            initial = [
                rng.randrange(0, 1 << 16) for _ in range(1 << ram_bits)
            ]
        builder.memory(
            "ram",
            address=_bit_field(rng, producers, ram_bits),
            data=_expression(rng, producers),
            operation=operation,
            size=1 << ram_bits,
            initial_values=initial,
        )
        producers.append("ram")
        component_names.append("ram")

    inputs: tuple[int, ...] = ()
    if rng.random() < 0.5 and spend():
        builder.memory(
            "inport",
            address=0,
            data=0,
            operation=2,
            size=1,
        )
        producers.append("inport")
        component_names.append("inport")
        inputs = tuple(
            rng.randrange(0, 1 << 16)
            for _ in range(rng.randrange(0, config.max_inputs + 1))
        )

    spend()
    builder.memory(
        "outport",
        address=0,
        data=_expression(rng, producers),
        operation=3,
        size=1,
    )
    component_names.append("outport")

    # -- wire the registers (any producer: feedback through state is fine) --
    for register in registers:
        gate = 1
        roll = rng.random()
        if roll < 0.2:
            gate = _bit_field(rng, producers, 1)
        elif roll < 0.3:
            gate = 5
        builder.register(
            register,
            data=_expression(rng, producers),
            operation=gate,
            initial_value=rng.randrange(0, 1 << 16),
        )

    # -- trace a few components so per-cycle traces carry real content ------
    traced = rng.sample(component_names,
                        k=min(len(component_names), rng.randrange(1, 4)))
    builder.trace(*traced)

    cycles = rng.randrange(config.min_cycles, config.max_cycles + 1)
    builder.cycles(cycles)

    # build(validate=True): a generator bug raises here, never later
    spec = builder.build(validate=True)
    return GeneratedMachine(
        spec=spec, seed=seed, cycles=cycles, inputs=inputs, config=config
    )


def generate_corpus(
    seed: int, count: int, config: GeneratorConfig | None = None
) -> list[GeneratedMachine]:
    """The *count* machines of the session derived from *seed*.

    Machine ``i`` uses derived seed ``seed * 1_000_003 + i``, so one corpus
    is stable under ``count`` growth: extending a session re-generates the
    same machines plus new ones.
    """
    return [
        generate_machine(seed * 1_000_003 + index, config)
        for index in range(count)
    ]
