"""Greedy spec shrinking: minimise a mismatching machine to a reproducer.

A fuzzer that only reports "seed 193482 disagrees" leaves the debugging to
an archaeologist.  This module takes a failing case — a specification plus
run parameters and a *predicate* that re-checks the failure — and greedily
applies semantics-shrinking transformations while the predicate keeps
failing:

* drop a whole component, replacing every reference to it with a
  width-matched zero constant;
* replace a multi-field concatenation with one of its fields;
* replace an expression with the constant ``0``;
* zero / drop a memory's initial values;
* drop trace marks, shed memory-mapped inputs, halve the cycle count.

Every candidate is validated (:func:`repro.rtl.validate.ensure_valid`)
before the predicate runs, so shrinking can never manufacture an *invalid*
reproducer; a candidate that makes the predicate pass (or raises) is
simply discarded.  The loop restarts after every accepted candidate and
stops at a fixed point, so the result is 1-minimal with respect to the
transformation set: no single remaining transformation keeps the failure.

The predicate decides what "still failing" means — the fuzz session wires
it to the differential runner restricted to the configurations that
originally disagreed, which keeps shrinking cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import SpecificationError
from repro.rtl.components import Alu, Component, Memory, Selector
from repro.rtl.expressions import (
    ComponentRef,
    ConstantField,
    Expression,
    Field,
)
from repro.rtl.spec import Declaration, Specification
from repro.rtl.validate import validate

#: ``predicate(spec, cycles, inputs) -> bool`` — True means "still failing".
Predicate = Callable[[Specification, int, tuple[int, ...]], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """The minimised case and how much work finding it took."""

    spec: Specification
    cycles: int
    inputs: tuple[int, ...]
    #: accepted shrink steps (0 = the original case was already minimal)
    steps: int
    #: candidates tried, including rejected ones
    attempts: int

    def describe(self) -> str:
        return (
            f"shrunk to {len(self.spec)} components / {self.cycles} cycles "
            f"in {self.steps} steps ({self.attempts} candidates tried)"
        )


# ---------------------------------------------------------------------------
# Spec surgery helpers
# ---------------------------------------------------------------------------


def _zero_for(field: Field) -> Field:
    """A zero constant with the same width as *field* (layout-preserving)."""
    width = field.width
    return ConstantField(0, width)


def _without_reference(expression: Expression, name: str) -> Expression:
    """Replace every reference to *name* with a width-matched zero."""
    fields = tuple(
        _zero_for(field)
        if isinstance(field, ComponentRef) and field.name == name
        else field
        for field in expression.fields
    )
    if fields == expression.fields:
        return expression
    return Expression(fields)


def _map_expressions(
    component: Component, mapper: Callable[[Expression], Expression]
) -> Component:
    if isinstance(component, Alu):
        return Alu(
            name=component.name,
            funct=mapper(component.funct),
            left=mapper(component.left),
            right=mapper(component.right),
        )
    if isinstance(component, Selector):
        return Selector(
            name=component.name,
            select=mapper(component.select),
            cases=tuple(mapper(case) for case in component.cases),
        )
    if isinstance(component, Memory):
        return Memory(
            name=component.name,
            address=mapper(component.address),
            data=mapper(component.data),
            operation=mapper(component.operation),
            size=component.size,
            initial_values=component.initial_values,
        )
    raise TypeError(f"unknown component type {type(component)!r}")


def _rebuild(
    spec: Specification,
    components: Sequence[Component],
    cycles: int | None = None,
    declarations: Sequence[Declaration] | None = None,
) -> Specification:
    surviving = {component.name for component in components}
    if declarations is None:
        declarations = tuple(
            declaration for declaration in spec.declarations
            if declaration.name in surviving
        )
    return Specification(
        header_comment=spec.header_comment,
        components=tuple(components),
        declarations=tuple(declarations),
        cycles=spec.cycles if cycles is None else cycles,
        source_name=spec.source_name,
    )


def _drop_component(spec: Specification, index: int) -> Specification:
    victim = spec.components[index].name
    components = [
        _map_expressions(c, lambda e: _without_reference(e, victim))
        for i, c in enumerate(spec.components)
        if i != index
    ]
    return _rebuild(spec, components)


def _replace_role(
    spec: Specification, owner: str, role: str, replacement: Expression
) -> Specification:
    components: list[Component] = []
    for component in spec.components:
        if component.name != owner:
            components.append(component)
            continue
        roles = dict(_roles_of(component))
        roles[role] = replacement
        components.append(_with_roles(component, roles))
    return _rebuild(spec, components)


def _roles_of(component: Component) -> list[tuple[str, Expression]]:
    if isinstance(component, Alu):
        return [("function", component.funct), ("left", component.left),
                ("right", component.right)]
    if isinstance(component, Selector):
        return [("select", component.select)] + [
            (f"case{i}", case) for i, case in enumerate(component.cases)
        ]
    if isinstance(component, Memory):
        return [("address", component.address), ("data", component.data),
                ("operation", component.operation)]
    raise TypeError(f"unknown component type {type(component)!r}")


def _with_roles(
    component: Component, roles: dict[str, Expression]
) -> Component:
    if isinstance(component, Alu):
        return Alu(name=component.name, funct=roles["function"],
                   left=roles["left"], right=roles["right"])
    if isinstance(component, Selector):
        cases = tuple(
            roles[f"case{i}"] for i in range(len(component.cases))
        )
        return Selector(name=component.name, select=roles["select"],
                        cases=cases)
    if isinstance(component, Memory):
        return Memory(
            name=component.name, address=roles["address"],
            data=roles["data"], operation=roles["operation"],
            size=component.size, initial_values=component.initial_values,
        )
    raise TypeError(f"unknown component type {type(component)!r}")


_ZERO = Expression((ConstantField(0),))


# ---------------------------------------------------------------------------
# Candidate enumeration
# ---------------------------------------------------------------------------


def _candidates(
    spec: Specification, cycles: int, inputs: tuple[int, ...]
):
    """Yield ``(spec, cycles, inputs)`` candidates, biggest wins first."""
    # drop whole components (skip if it would empty the machine)
    if len(spec.components) > 1:
        for index in range(len(spec.components)):
            yield _drop_component(spec, index), cycles, inputs

    # fewer cycles reproduce faster and read easier (the spec's embedded
    # cycle count is kept in sync so the reproducer is self-describing)
    if cycles > 1:
        for fewer in (max(1, cycles // 2), cycles - 1):
            yield (
                _rebuild(spec, spec.components, cycles=fewer,
                         declarations=spec.declarations),
                fewer, inputs,
            )

    # inputs gone entirely, then halved
    if inputs:
        yield spec, cycles, ()
        yield spec, cycles, inputs[: len(inputs) // 2]

    for component in spec.components:
        for role, expression in _roles_of(component):
            # a concatenation collapses to each of its fields
            if len(expression.fields) > 1:
                for field in expression.fields:
                    yield (
                        _replace_role(spec, component.name, role,
                                      Expression((field,))),
                        cycles, inputs,
                    )
            # any expression collapses to zero
            if not (expression.is_constant
                    and expression.constant_value() == 0):
                yield (
                    _replace_role(spec, component.name, role, _ZERO),
                    cycles, inputs,
                )

    # initial memory contents vanish
    for component in spec.components:
        if isinstance(component, Memory) and component.initial_values:
            cleared = Memory(
                name=component.name, address=component.address,
                data=component.data, operation=component.operation,
                size=component.size, initial_values=(),
            )
            yield (
                _rebuild(spec, [
                    cleared if c.name == component.name else c
                    for c in spec.components
                ]),
                cycles, inputs,
            )

    # trace marks add noise to reproducers
    if any(declaration.traced for declaration in spec.declarations):
        yield (
            _rebuild(
                spec, spec.components,
                declarations=tuple(
                    Declaration(name=d.name, traced=False)
                    for d in spec.declarations
                ),
            ),
            cycles, inputs,
        )


def _is_valid(spec: Specification) -> bool:
    try:
        return validate(spec).ok
    except SpecificationError:
        return False


# ---------------------------------------------------------------------------
# The greedy loop
# ---------------------------------------------------------------------------


def shrink_case(
    spec: Specification,
    cycles: int,
    inputs: Sequence[int],
    is_failing: Predicate,
    max_attempts: int = 4000,
) -> ShrinkResult:
    """Greedily minimise a failing case while *is_failing* stays true.

    The original case is assumed failing (callers check before shrinking).
    A predicate that raises on a candidate counts as "not failing" — a
    shrink step may legitimately push a machine into a runtime error the
    original never hit, and that is a different bug than the one being
    minimised.
    """
    best = (spec, cycles, tuple(inputs))
    steps = 0
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(*best):
            if attempts >= max_attempts:
                break
            candidate_spec, candidate_cycles, candidate_inputs = candidate
            attempts += 1
            try:
                if not _is_valid(candidate_spec):
                    continue
                if not is_failing(candidate_spec, candidate_cycles,
                                  candidate_inputs):
                    continue
            except Exception:  # noqa: BLE001 - a raising candidate is skipped
                continue
            best = (candidate_spec, candidate_cycles, candidate_inputs)
            steps += 1
            improved = True
            break
    return ShrinkResult(
        spec=best[0], cycles=best[1], inputs=best[2],
        steps=steps, attempts=attempts,
    )
