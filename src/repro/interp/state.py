"""Machine state for the table-driven interpreter.

The state mirrors the variables of the paper's generated Pascal program:

* one current value per combinational component (``ljb<name>``),
* one latched output per memory (``temp<name>``), which is what other
  components see during a cycle,
* one cell array per memory (``ljb<name>[...]``).

Everything is initialised to zero except memories declared with an initial
value list (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownComponentError
from repro.rtl.spec import Specification


@dataclass
class MachineState:
    """Mutable simulation state for one run of the interpreter."""

    spec: Specification
    values: dict[str, int] = field(default_factory=dict)
    memory_outputs: dict[str, int] = field(default_factory=dict)
    memory_arrays: dict[str, list[int]] = field(default_factory=dict)
    cycle: int = 0

    @classmethod
    def initial(cls, spec: Specification) -> "MachineState":
        """Build the cycle-0 state: everything zero, memories initialised."""
        state = cls(spec=spec)
        for component in spec.combinational():
            state.values[component.name] = 0
        for memory in spec.memories():
            state.memory_outputs[memory.name] = memory.initial_output
            state.memory_arrays[memory.name] = memory.initial_cell_values()
        return state

    # -- lookups ---------------------------------------------------------------

    def lookup(self, name: str) -> int:
        """Value of component *name* as visible to expressions this cycle."""
        if name in self.values:
            return self.values[name]
        if name in self.memory_outputs:
            return self.memory_outputs[name]
        raise UnknownComponentError(f"component <{name}> not found")

    def visible_values(self) -> dict[str, int]:
        """Every component's visible value (used for traces and results)."""
        snapshot = dict(self.values)
        snapshot.update(self.memory_outputs)
        return snapshot

    # -- mutation ----------------------------------------------------------------

    def set_value(self, name: str, value: int) -> None:
        self.values[name] = value

    def set_memory_output(self, name: str, value: int) -> None:
        self.memory_outputs[name] = value

    def write_cell(self, name: str, address: int, value: int) -> None:
        self.memory_arrays[name][address] = value

    def read_cell(self, name: str, address: int) -> int:
        return self.memory_arrays[name][address]

    def memory_snapshot(self) -> dict[str, list[int]]:
        return {name: list(cells) for name, cells in self.memory_arrays.items()}
