"""The ASIM-style table interpreter.

This backend reproduces the *predecessor* system that the paper benchmarks
against: "ASIM reads the specification into tables, and produces a
simulation run by interpreting the symbols in the table" (Section 3.1).

``prepare`` obtains the shared lowered program (:mod:`repro.lowering`) —
whose dependency-sorted schedule *is* the paper's table — and each ``run``
walks that schedule once per cycle, evaluating every expression tree
interpretively.  It is deliberately the straightforward implementation: the
point of the paper — and of the Figure 5.1 benchmark — is that compiling the
specification (see :mod:`repro.compiler`) beats this by a large factor.

Statistics, tracing and the per-cycle ``override`` hook route through the
shared instrumentation layer (:mod:`repro.core.instrument`), the same hook
implementations every other backend calls.  Spec-level optimization is
opt-in (``InterpreterBackend(specopt=True)``); an override run then falls
back to the program's full (pre-specopt) schedule, exactly like the other
backends.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.core.backend import Backend, PreparedSimulation, ValueOverride
from repro.core.instrument import plan_run
from repro.core.iosystem import IOSystem
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceOptions
from repro.compiler.specopt import SpecOptPasses, resolve_passes
from repro.interp.evaluator import (
    apply_memory_request,
    evaluate_alu,
    evaluate_selector,
    latch_memory_request,
)
from repro.interp.state import MachineState
from repro.lowering.program import CycleProgram, ProgramVariant, lower
from repro.rtl.components import Alu
from repro.rtl.spec import Specification


class InterpreterSimulation(PreparedSimulation):
    """A lowered program whose schedule is interpreted table-style."""

    def __init__(
        self,
        spec: Specification,
        program: CycleProgram,
        prepare_seconds: float,
    ) -> None:
        super().__init__(spec, backend_name="interpreter",
                         prepare_seconds=prepare_seconds)
        #: the shared lowered program (schedule + observables map)
        self.program = program
        #: what the spec-level pipeline did, or ``None`` if it was disabled
        self.optimization = program.optimization

    def _typed(self, variant: ProgramVariant):
        """(is_alu, component) pairs: the run loop dispatches on a boolean
        instead of isinstance() per component per cycle."""
        typed, _ = self.program.artifact(
            ("interp-typed", variant is self.program.full),
            lambda: tuple(
                (isinstance(component, Alu), component)
                for component in variant.ordered
            ),
        )
        return typed

    # -- full run --------------------------------------------------------------------

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        plan = plan_run(self.program, cycles, io, trace, collect_stats,
                        override)
        variant = plan.variant
        inst = plan.inst
        io_system = plan.io_system
        state = MachineState.initial(variant.spec)

        # Hoist every method/attribute lookup of the cycle loop into
        # prebound locals.
        typed = self._typed(variant)
        memories = variant.memories
        eval_alu = evaluate_alu
        eval_selector = evaluate_selector
        latch = latch_memory_request
        apply_request = apply_memory_request
        values = state.values
        memory_outputs = state.memory_outputs
        lookup = state.lookup
        hook_alu = inst.alu if inst is not None else None
        hook_selector = inst.selector if inst is not None else None
        hook_memory = inst.memory if inst is not None else None
        trace_entries = inst.traced if inst is not None else ()
        record_cycle = inst.record_cycle if inst is not None else None
        wants_trace = inst.wants_cycle_trace if inst is not None else None

        start = time.perf_counter()
        for _ in range(plan.cycle_count):
            cycle = state.cycle
            # 1. combinational components, producers before consumers
            if hook_alu is None:
                for is_alu, component in typed:
                    if is_alu:
                        _funct, value = eval_alu(component, state)
                    else:
                        _index, value = eval_selector(component, state)
                    values[component.name] = value
            else:
                for is_alu, component in typed:
                    if is_alu:
                        funct, value = eval_alu(component, state)
                        value = hook_alu(component.name, funct, value, cycle)
                    else:
                        index, value = eval_selector(component, state)
                        value = hook_selector(
                            component.name, index, value, cycle
                        )
                    values[component.name] = value

            # 2. cycle trace: traced values as used during this cycle
            if trace_entries and wants_trace():
                record_cycle(
                    cycle,
                    {
                        name: (lookup(payload) if kind == "value" else payload)
                        for name, kind, payload in trace_entries
                    },
                )

            # 3. latch every memory's request against the pre-update state,
            #    then apply them all
            requests = [latch(memory, state) for memory in memories]
            for request in requests:
                apply_request(request, state, io_system)
                if hook_memory is not None:
                    name = request.memory.name
                    memory_outputs[name] = hook_memory(
                        name,
                        request.operation,
                        request.address,
                        memory_outputs[name],
                        cycle,
                    )
            state.cycle += 1
        run_seconds = time.perf_counter() - start

        plan.finish()
        final_values = state.visible_values()
        if not plan.uses_full:
            self.program.restore_final_values(final_values, plan.cycle_count)
        return SimulationResult(
            backend=self.backend_name,
            cycles_run=plan.cycle_count,
            final_values=final_values,
            memory_contents=state.memory_snapshot(),
            outputs=list(io_system.outputs),
            trace=plan.trace_log,
            stats=plan.stats if plan.stats is not None else SimulationStats(),
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
        )


class InterpreterBackend(Backend):
    """Backend factory for the ASIM-style interpreter."""

    name = "interpreter"

    def __init__(self, specopt: bool | SpecOptPasses = False) -> None:
        self.passes = resolve_passes(specopt)

    def prepare(self, spec: Specification) -> InterpreterSimulation:
        start = time.perf_counter()
        program = lower(spec, self.passes)
        return InterpreterSimulation(
            spec, program, prepare_seconds=time.perf_counter() - start
        )
