"""The ASIM-style table interpreter.

This backend reproduces the *predecessor* system that the paper benchmarks
against: "ASIM reads the specification into tables, and produces a
simulation run by interpreting the symbols in the table" (Section 3.1).

``prepare`` builds the tables (the dependency-sorted component list); each
``run`` walks those tables once per cycle, evaluating every expression tree
interpretively.  It is deliberately the straightforward implementation: the
point of the paper — and of the Figure 5.1 benchmark — is that compiling the
specification (see :mod:`repro.compiler`) beats this by a large factor.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.core.backend import (
    Backend,
    PreparedSimulation,
    ValueOverride,
    resolve_cycles,
    resolve_trace,
)
from repro.core.iosystem import IOSystem, coerce_io
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog, TraceOptions
from repro.interp.evaluator import (
    apply_memory_request,
    evaluate_alu,
    evaluate_selector,
    latch_memory_request,
)
from repro.interp.state import MachineState
from repro.rtl.components import Alu, Selector
from repro.rtl.dependency import sort_combinational
from repro.rtl.spec import Specification


class InterpreterSimulation(PreparedSimulation):
    """A specification whose tables have been built for interpretation."""

    def __init__(self, spec: Specification, prepare_seconds: float) -> None:
        super().__init__(spec, backend_name="interpreter",
                         prepare_seconds=prepare_seconds)
        self._ordered = sort_combinational(spec)
        self._memories = spec.memories()

    # -- single cycle -------------------------------------------------------------

    def _step(
        self,
        state: MachineState,
        io: IOSystem,
        trace_log: TraceLog,
        options: TraceOptions,
        stats: SimulationStats | None,
        override: ValueOverride | None,
        traced_names: list[str],
    ) -> None:
        # 1. combinational components, producers before consumers
        for component in self._ordered:
            if isinstance(component, Alu):
                funct, value = evaluate_alu(component, state)
                if stats is not None:
                    stats.record_alu_function(funct)
            else:
                assert isinstance(component, Selector)
                index, value = evaluate_selector(component, state)
                if stats is not None:
                    stats.record_selector_case(component.name, index)
            if override is not None:
                value = override(component.name, value, state.cycle)
            state.set_value(component.name, value)
        if stats is not None:
            stats.record_evaluation(len(self._ordered) + len(self._memories))

        # 2. cycle trace: traced values as used during this cycle
        if options.trace_cycles and traced_names:
            within_limit = options.limit is None or len(trace_log.cycles) < options.limit
            if within_limit:
                trace_log.record_cycle(
                    state.cycle,
                    {name: state.lookup(name) for name in traced_names},
                )

        # 3. latch every memory's request against the pre-update state ...
        requests = [latch_memory_request(memory, state) for memory in self._memories]

        # 4. ... then apply them all
        for request in requests:
            effect = apply_memory_request(request, state, io)
            if override is not None:
                state.set_memory_output(
                    request.memory.name,
                    override(request.memory.name,
                             state.memory_outputs[request.memory.name],
                             state.cycle),
                )
            if stats is not None:
                stats.record_memory_access(
                    effect.memory, effect.operation, effect.address
                )
            if options.trace_memory_accesses:
                if effect.trace_write:
                    trace_log.record_access(
                        state.cycle, effect.memory, "write",
                        effect.address, effect.new_output,
                    )
                if effect.trace_read:
                    trace_log.record_access(
                        state.cycle, effect.memory, "read",
                        effect.address, effect.new_output,
                    )
        if stats is not None:
            stats.record_cycle()
        state.cycle += 1

    # -- full run --------------------------------------------------------------------

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        spec = self.spec
        cycle_count = resolve_cycles(spec, cycles)
        options = resolve_trace(spec, trace)
        io_system = coerce_io(io)
        traced_names = (
            list(options.names) if options.names is not None else spec.traced_names
        )
        trace_log = TraceLog(
            enabled=options.trace_cycles or options.trace_memory_accesses
        )
        stats = SimulationStats() if collect_stats else None
        state = MachineState.initial(spec)

        start = time.perf_counter()
        for _ in range(cycle_count):
            self._step(
                state, io_system, trace_log, options, stats, override, traced_names
            )
        run_seconds = time.perf_counter() - start

        return SimulationResult(
            backend=self.backend_name,
            cycles_run=cycle_count,
            final_values=state.visible_values(),
            memory_contents=state.memory_snapshot(),
            outputs=list(io_system.outputs),
            trace=trace_log,
            stats=stats if stats is not None else SimulationStats(),
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
        )


class InterpreterBackend(Backend):
    """Backend factory for the ASIM-style interpreter."""

    name = "interpreter"

    def prepare(self, spec: Specification) -> InterpreterSimulation:
        start = time.perf_counter()
        simulation = InterpreterSimulation(spec, prepare_seconds=0.0)
        simulation.prepare_seconds = time.perf_counter() - start
        return simulation
