"""The ASIM-style table interpreter.

This backend reproduces the *predecessor* system that the paper benchmarks
against: "ASIM reads the specification into tables, and produces a
simulation run by interpreting the symbols in the table" (Section 3.1).

``prepare`` builds the tables (the dependency-sorted component list); each
``run`` walks those tables once per cycle, evaluating every expression tree
interpretively.  It is deliberately the straightforward implementation: the
point of the paper — and of the Figure 5.1 benchmark — is that compiling the
specification (see :mod:`repro.compiler`) beats this by a large factor.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.core.backend import (
    Backend,
    PreparedSimulation,
    ValueOverride,
    resolve_cycles,
    resolve_trace,
)
from repro.core.iosystem import IOSystem, coerce_io
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog, TraceOptions
from repro.interp.evaluator import (
    apply_memory_request,
    evaluate_alu,
    evaluate_selector,
    latch_memory_request,
)
from repro.interp.state import MachineState
from repro.rtl.components import Alu
from repro.rtl.dependency import sort_combinational
from repro.rtl.spec import Specification


class InterpreterSimulation(PreparedSimulation):
    """A specification whose tables have been built for interpretation."""

    def __init__(self, spec: Specification, prepare_seconds: float) -> None:
        super().__init__(spec, backend_name="interpreter",
                         prepare_seconds=prepare_seconds)
        self._ordered = sort_combinational(spec)
        self._memories = spec.memories()
        # pre-resolved (is_alu, component) pairs: the run loop dispatches on
        # a boolean instead of isinstance() per component per cycle
        self._typed = tuple(
            (isinstance(component, Alu), component)
            for component in self._ordered
        )

    # -- full run --------------------------------------------------------------------

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        spec = self.spec
        cycle_count = resolve_cycles(spec, cycles)
        options = resolve_trace(spec, trace)
        io_system = coerce_io(io)
        traced_names = (
            list(options.names) if options.names is not None else spec.traced_names
        )
        trace_log = TraceLog(
            enabled=options.trace_cycles or options.trace_memory_accesses
        )
        stats = SimulationStats() if collect_stats else None
        state = MachineState.initial(spec)

        # Hoist every method/attribute lookup of the cycle loop into
        # prebound locals.
        typed = self._typed
        memories = self._memories
        eval_alu = evaluate_alu
        eval_selector = evaluate_selector
        latch = latch_memory_request
        apply_request = apply_memory_request
        values = state.values
        memory_outputs = state.memory_outputs
        lookup = state.lookup
        set_output = state.set_memory_output
        record_cycle = trace_log.record_cycle
        record_access = trace_log.record_access
        record_alu = stats.record_alu_function if stats is not None else None
        record_selector = stats.record_selector_case if stats is not None else None
        record_memory = stats.record_memory_access if stats is not None else None
        do_cycle_trace = options.trace_cycles and bool(traced_names)
        trace_limit = options.limit
        trace_memory = options.trace_memory_accesses
        evaluations = len(self._ordered) + len(memories)

        start = time.perf_counter()
        for _ in range(cycle_count):
            # 1. combinational components, producers before consumers
            for is_alu, component in typed:
                if is_alu:
                    funct, value = eval_alu(component, state)
                    if record_alu is not None:
                        record_alu(funct)
                else:
                    index, value = eval_selector(component, state)
                    if record_selector is not None:
                        record_selector(component.name, index)
                if override is not None:
                    value = override(component.name, value, state.cycle)
                values[component.name] = value
            if stats is not None:
                stats.component_evaluations += evaluations

            # 2. cycle trace: traced values as used during this cycle
            if do_cycle_trace and (
                trace_limit is None or len(trace_log.cycles) < trace_limit
            ):
                record_cycle(
                    state.cycle,
                    {name: lookup(name) for name in traced_names},
                )

            # 3. latch every memory's request against the pre-update state,
            #    then apply them all
            requests = [latch(memory, state) for memory in memories]
            for request in requests:
                effect = apply_request(request, state, io_system)
                if override is not None:
                    set_output(
                        request.memory.name,
                        override(request.memory.name,
                                 memory_outputs[request.memory.name],
                                 state.cycle),
                    )
                if record_memory is not None:
                    record_memory(effect.memory, effect.operation, effect.address)
                if trace_memory:
                    if effect.trace_write:
                        record_access(
                            state.cycle, effect.memory, "write",
                            effect.address, effect.new_output,
                        )
                    if effect.trace_read:
                        record_access(
                            state.cycle, effect.memory, "read",
                            effect.address, effect.new_output,
                        )
            if stats is not None:
                stats.cycles += 1
            state.cycle += 1
        run_seconds = time.perf_counter() - start

        return SimulationResult(
            backend=self.backend_name,
            cycles_run=cycle_count,
            final_values=state.visible_values(),
            memory_contents=state.memory_snapshot(),
            outputs=list(io_system.outputs),
            trace=trace_log,
            stats=stats if stats is not None else SimulationStats(),
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
        )


class InterpreterBackend(Backend):
    """Backend factory for the ASIM-style interpreter."""

    name = "interpreter"

    def prepare(self, spec: Specification) -> InterpreterSimulation:
        start = time.perf_counter()
        simulation = InterpreterSimulation(spec, prepare_seconds=0.0)
        simulation.prepare_seconds = time.perf_counter() - start
        return simulation
