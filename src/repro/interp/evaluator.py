"""Per-component evaluation rules used by the interpreter.

These functions implement the semantics of Chapter 4: how one ALU, selector
or memory behaves during a single simulation cycle.  They are kept separate
from the interpreter's driving loop so that analysis passes (fault
injection, coverage) can reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    InvalidAluFunctionError,
    MemoryRangeError,
    SelectorRangeError,
)
from repro.interp.state import MachineState
from repro.rtl.alu_ops import dologic, is_valid_function
from repro.rtl.components import Alu, Memory, Selector
from repro.rtl.memory_ops import MemoryOperation, decode_operation


def evaluate_alu(alu: Alu, state: MachineState) -> tuple[int, int]:
    """Return ``(function_code, value)`` for *alu* this cycle."""
    funct = alu.funct.evaluate(state.lookup)
    if not is_valid_function(funct):
        raise InvalidAluFunctionError(
            f"ALU '{alu.name}' computed function code {funct}", state.cycle
        )
    left = alu.left.evaluate(state.lookup)
    right = alu.right.evaluate(state.lookup)
    return funct, dologic(funct, left, right)


def evaluate_selector(selector: Selector, state: MachineState) -> tuple[int, int]:
    """Return ``(case_index, value)`` for *selector* this cycle."""
    index = selector.select.evaluate(state.lookup)
    if index >= selector.case_count:
        raise SelectorRangeError(
            f"selector '{selector.name}' index {index} exceeds its "
            f"{selector.case_count} cases",
            state.cycle,
        )
    return index, selector.cases[index].evaluate(state.lookup)


@dataclass(frozen=True)
class MemoryRequest:
    """The latched address/data/operation of one memory for one cycle.

    All three expressions are evaluated while the cycle's combinational
    values are still current; the update itself is applied afterwards so
    that every memory sees a consistent pre-update view (all registers clock
    together).
    """

    memory: Memory
    address: int
    data: int
    operation: int


def latch_memory_request(memory: Memory, state: MachineState) -> MemoryRequest:
    """Evaluate a memory's address, data and operation expressions."""
    return MemoryRequest(
        memory=memory,
        address=memory.address.evaluate(state.lookup),
        data=memory.data.evaluate(state.lookup),
        operation=memory.operation.evaluate(state.lookup),
    )


@dataclass(frozen=True)
class MemoryEffect:
    """What applying a :class:`MemoryRequest` did."""

    memory: str
    operation: int
    address: int
    new_output: int
    wrote_cell: bool
    trace_write: bool
    trace_read: bool


def apply_memory_request(
    request: MemoryRequest, state: MachineState, io
) -> MemoryEffect:
    """Perform the memory operation and latch the new output value."""
    memory = request.memory
    decoded = decode_operation(request.operation)
    address = request.address
    wrote_cell = False
    if decoded.operation in (MemoryOperation.READ, MemoryOperation.WRITE):
        if address >= memory.size:
            raise MemoryRangeError(
                f"memory '{memory.name}' address {address} outside its "
                f"declared range 0..{memory.size - 1}",
                state.cycle,
            )
    if decoded.operation is MemoryOperation.READ:
        new_output = state.read_cell(memory.name, address)
    elif decoded.operation is MemoryOperation.WRITE:
        new_output = request.data
        state.write_cell(memory.name, address, request.data)
        wrote_cell = True
    elif decoded.operation is MemoryOperation.INPUT:
        new_output = io.read(address, cycle=state.cycle)
    else:  # OUTPUT
        new_output = request.data
        io.write(address, request.data, cycle=state.cycle)
    state.set_memory_output(memory.name, new_output)
    return MemoryEffect(
        memory=memory.name,
        operation=request.operation,
        address=address,
        new_output=new_output,
        wrote_cell=wrote_cell,
        trace_write=decoded.trace_write,
        trace_read=decoded.trace_read,
    )
