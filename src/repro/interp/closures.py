"""Closure binding of lowered programs (threaded code).

The interpreter backend re-walks every expression tree through
``state.lookup`` dict lookups on every cycle; the compiled backend goes to
the other extreme and generates a whole Python module.  This module is the
classic middle point of that design space: **threaded code**.  The shared
lowering pipeline (:mod:`repro.lowering`) has already turned the
specification into flat step descriptors — slot indices into a flat
``values`` list, pre-computed masks and shifts; here each step is bound
into a Python closure over this run's mutable state, and the closures are
chained into one flat per-cycle op list.  Running a cycle is then just

    for op in ops:
        op()

with no tree walk, no name lookup and no per-cycle dataclass allocation.

Binding happens at the start of every ``run``: the plans close the step
descriptors over the run's :class:`RunContext` (the ``values`` list, the
memory cell arrays, the I/O system, and the optional shared
:class:`~repro.core.instrument.Instrumentation`).  The fast path — no
instrumentation at all — binds ops that do nothing but compute and store;
an instrumented run binds ops that route every evaluation through the same
hook methods the interpreter and the compiled backend call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    InvalidAluFunctionError,
    MemoryRangeError,
    SelectorRangeError,
)
from repro.lowering.descriptors import lower_expression  # noqa: F401  (re-export)
from repro.lowering.program import (
    AluStep,
    CycleProgram,
    MemoryStep,
    SelectorStep,
)
from repro.rtl.alu_ops import FUNCTION_COUNT, dologic, shift_left
from repro.rtl.bits import WORD_MASK

#: A bound per-cycle operation: computes and stores, returns nothing.
Op = Callable[[], None]
#: A bound value producer: returns one masked machine word.
Pull = Callable[[], int]


def bind_pull(desc: tuple, values: list[int]) -> Pull:
    """Bind a descriptor to *values*, returning a zero-argument producer.

    Whole-component references mask on read (like the interpreter's
    ``ComponentRef.evaluate``) because stored values may be raw — e.g. a
    memory-mapped input or an override hook can deposit anything.
    """
    kind = desc[0]
    if kind == "const":
        constant = desc[1]
        return lambda: constant
    if kind == "ref":
        slot = desc[1]
        return lambda: values[slot] & WORD_MASK
    if kind == "bits":
        _, slot, low, mask = desc
        if low == 0:
            return lambda: values[slot] & mask
        return lambda: (values[slot] >> low) & mask
    parts = tuple(
        (bind_pull(part, values), offset) for part, offset in desc[1]
    )
    if len(parts) == 2:
        (pull_a, off_a), (pull_b, off_b) = parts
        return lambda: ((pull_a() << off_a) | (pull_b() << off_b)) & WORD_MASK

    def pull() -> int:
        result = 0
        for part_pull, offset in parts:
            result |= part_pull() << offset
        return result & WORD_MASK

    return pull


# ---------------------------------------------------------------------------
# ALU compute closures, specialised per constant function code
# ---------------------------------------------------------------------------

_M = WORD_MASK


def _alu_zero(l: Pull, r: Pull) -> Pull:
    return lambda: 0


def _alu_right(l: Pull, r: Pull) -> Pull:
    return r


def _alu_left(l: Pull, r: Pull) -> Pull:
    return l


def _alu_not(l: Pull, r: Pull) -> Pull:
    return lambda: _M - l()


def _alu_add(l: Pull, r: Pull) -> Pull:
    return lambda: (l() + r()) & _M


def _alu_sub(l: Pull, r: Pull) -> Pull:
    return lambda: (l() - r()) & _M


def _alu_shift_left(l: Pull, r: Pull) -> Pull:
    return lambda: shift_left(l(), r())


def _alu_mul(l: Pull, r: Pull) -> Pull:
    return lambda: (l() * r()) & _M


def _alu_and(l: Pull, r: Pull) -> Pull:
    return lambda: l() & r()


def _alu_or(l: Pull, r: Pull) -> Pull:
    return lambda: l() | r()


def _alu_xor(l: Pull, r: Pull) -> Pull:
    return lambda: l() ^ r()


def _alu_eq(l: Pull, r: Pull) -> Pull:
    return lambda: 1 if l() == r() else 0


def _alu_lt(l: Pull, r: Pull) -> Pull:
    return lambda: 1 if l() < r() else 0


#: Closure builders indexed by ALU function code (mirrors ``dologic``).
ALU_CLOSURE_BUILDERS: tuple[Callable[[Pull, Pull], Pull], ...] = (
    _alu_zero,       # 0 zero
    _alu_right,      # 1 right
    _alu_left,       # 2 left
    _alu_not,        # 3 not-left
    _alu_add,        # 4 add
    _alu_sub,        # 5 subtract
    _alu_shift_left, # 6 shift-left
    _alu_mul,        # 7 multiply
    _alu_and,        # 8 and
    _alu_or,         # 9 or
    _alu_xor,        # 10 xor
    _alu_zero,       # 11 unused
    _alu_eq,         # 12 equal
    _alu_lt,         # 13 less-than
)


# ---------------------------------------------------------------------------
# Runtime context: everything a bind function may close over
# ---------------------------------------------------------------------------


@dataclass
class RunContext:
    """Mutable per-run state the bound closures operate on."""

    #: flat value array: combinational slots, memory-output slots, latch slots
    values: list[int]
    #: one mutable cell list per memory, keyed by name
    memory_arrays: dict[str, list[int]]
    #: single-element list holding the current cycle (shared by all closures)
    cycle_box: list[int]
    io: object = None
    #: the shared instrumentation layer, or ``None`` for the fast path
    inst: object = None


# ---------------------------------------------------------------------------
# Step plans: IR step -> bind function -> bound closure
# ---------------------------------------------------------------------------


def _plan_alu(step: AluStep):
    """Build the bind function for one ALU step."""
    name = step.component.name
    slot = step.slot
    left_desc, right_desc = step.left, step.right
    constant_funct, funct_desc = step.constant_funct, step.funct

    def bind(ctx: RunContext) -> Op:
        values = ctx.values
        left = bind_pull(left_desc, values)
        right = bind_pull(right_desc, values)
        inst = ctx.inst
        cycle_box = ctx.cycle_box
        if constant_funct is not None:
            compute = ALU_CLOSURE_BUILDERS[constant_funct](left, right)
            if inst is None:
                def op() -> None:
                    values[slot] = compute()
                return op
            hook = inst.alu
            code = constant_funct

            def op() -> None:
                values[slot] = hook(name, code, compute(), cycle_box[0])
            return op

        funct = bind_pull(funct_desc, values)
        if inst is None:
            def op() -> None:
                code = funct()
                if not 0 <= code < FUNCTION_COUNT:
                    raise InvalidAluFunctionError(
                        f"ALU '{name}' computed function code {code}",
                        cycle_box[0],
                    )
                values[slot] = dologic(code, left(), right())
            return op

        hook = inst.alu

        def op() -> None:
            code = funct()
            if not 0 <= code < FUNCTION_COUNT:
                raise InvalidAluFunctionError(
                    f"ALU '{name}' computed function code {code}", cycle_box[0]
                )
            values[slot] = hook(
                name, code, dologic(code, left(), right()), cycle_box[0]
            )
        return op

    return bind


def _plan_selector(step: SelectorStep):
    """Build the bind function for one selector step."""
    name = step.component.name
    slot = step.slot
    count = step.component.case_count
    select_desc, case_descs = step.select, step.cases
    constant_cases = step.constant_cases

    def bind(ctx: RunContext) -> Op:
        values = ctx.values
        select = bind_pull(select_desc, values)
        inst = ctx.inst
        cycle_box = ctx.cycle_box
        if constant_cases is not None and inst is None:
            table = constant_cases

            def op() -> None:
                index = select()
                if index >= count:
                    raise SelectorRangeError(
                        f"selector '{name}' index {index} exceeds its "
                        f"{count} cases", cycle_box[0],
                    )
                values[slot] = table[index]
            return op
        cases = tuple(bind_pull(desc, values) for desc in case_descs)
        if inst is None:
            def op() -> None:
                index = select()
                if index >= count:
                    raise SelectorRangeError(
                        f"selector '{name}' index {index} exceeds its "
                        f"{count} cases", cycle_box[0],
                    )
                values[slot] = cases[index]()
            return op

        hook = inst.selector

        def op() -> None:
            index = select()
            if index >= count:
                raise SelectorRangeError(
                    f"selector '{name}' index {index} exceeds its "
                    f"{count} cases", cycle_box[0],
                )
            values[slot] = hook(name, index, cases[index](), cycle_box[0])
        return op

    return bind


def _plan_memory(step: MemoryStep):
    """Build the (latch, apply) bind functions for one memory step."""
    memory = step.component
    name = memory.name
    out_slot = step.out_slot
    size = memory.size
    address_desc, data_desc, operation_desc = (
        step.address, step.data, step.operation,
    )
    addr_slot = step.latch_base
    data_slot = step.latch_base + 1
    op_slot = step.latch_base + 2

    def bind_latch(ctx: RunContext) -> Op:
        values = ctx.values
        address = bind_pull(address_desc, values)
        data = bind_pull(data_desc, values)
        operation = bind_pull(operation_desc, values)

        def op() -> None:
            values[addr_slot] = address()
            values[data_slot] = data()
            values[op_slot] = operation()
        return op

    def bind_apply(ctx: RunContext) -> Op:
        values = ctx.values
        cells = ctx.memory_arrays[name]
        io = ctx.io
        cycle_box = ctx.cycle_box
        inst = ctx.inst
        io_read = io.read
        io_write = io.write

        if inst is None:
            def op() -> None:
                op_word = values[op_slot] & 3
                address = values[addr_slot]
                if op_word == 0:
                    if address >= size:
                        raise MemoryRangeError(
                            f"memory '{name}' address {address} outside its "
                            f"declared range 0..{size - 1}", cycle_box[0],
                        )
                    values[out_slot] = cells[address]
                elif op_word == 1:
                    if address >= size:
                        raise MemoryRangeError(
                            f"memory '{name}' address {address} outside its "
                            f"declared range 0..{size - 1}", cycle_box[0],
                        )
                    values[out_slot] = cells[address] = values[data_slot]
                elif op_word == 2:
                    values[out_slot] = io_read(address, cycle=cycle_box[0])
                else:
                    data = values[data_slot]
                    io_write(address, data, cycle=cycle_box[0])
                    values[out_slot] = data
            return op

        hook = inst.memory

        def op() -> None:
            op_word = values[op_slot]
            operation = op_word & 3
            address = values[addr_slot]
            if operation == 0:
                if address >= size:
                    raise MemoryRangeError(
                        f"memory '{name}' address {address} outside its "
                        f"declared range 0..{size - 1}", cycle_box[0],
                    )
                output = cells[address]
            elif operation == 1:
                if address >= size:
                    raise MemoryRangeError(
                        f"memory '{name}' address {address} outside its "
                        f"declared range 0..{size - 1}", cycle_box[0],
                    )
                output = cells[address] = values[data_slot]
            elif operation == 2:
                output = io_read(address, cycle=cycle_box[0])
            else:
                output = values[data_slot]
                io_write(address, output, cycle=cycle_box[0])
            values[out_slot] = hook(
                name, op_word, address, output, cycle_box[0]
            )
        return op

    return bind_latch, bind_apply


# ---------------------------------------------------------------------------
# The whole program
# ---------------------------------------------------------------------------


class ThreadedProgram:
    """One variant of a lowered program, ready to bind into closures.

    Built from a :class:`~repro.lowering.program.CycleProgram` (usually via
    its ``artifact`` memo, so every prepared simulation of the same cached
    program shares one plan set); :meth:`bind` is called at the start of
    every ``run`` to close the plans over that run's mutable state.
    """

    def __init__(self, program: CycleProgram, full: bool = False) -> None:
        self.program = program
        self.variant = program.variant(full)
        self.spec = self.variant.spec
        self.slots = program.slots
        self.value_count = program.value_count
        self.ordered = self.variant.ordered
        self.memories = self.variant.memories
        self._combinational_binds = [
            _plan_alu(step) if isinstance(step, AluStep) else _plan_selector(step)
            for step in self.variant.steps
        ]
        self._memory_binds = [
            _plan_memory(step) for step in self.variant.memory_steps
        ]

    # -- per-run state ------------------------------------------------------

    def initial_values(self) -> list[int]:
        """Fresh values array: zeros plus each memory's initial output."""
        return self.program.initial_values()

    def initial_memory_arrays(self) -> dict[str, list[int]]:
        return self.program.initial_memory_arrays()

    def bind(self, ctx: RunContext) -> list[Op]:
        """Bind every plan to *ctx* and return the flat per-cycle op list."""
        ops: list[Op] = [bind(ctx) for bind in self._combinational_binds]
        inst = ctx.inst
        if inst is not None and inst.traced:
            ops.append(self._bind_cycle_trace(ctx))
        latch_ops = []
        apply_ops = []
        for bind_latch, bind_apply in self._memory_binds:
            latch_ops.append(bind_latch(ctx))
            apply_ops.append(bind_apply(ctx))
        ops.extend(latch_ops)
        ops.extend(apply_ops)
        return ops

    def _bind_cycle_trace(self, ctx: RunContext) -> Op:
        values = ctx.values
        cycle_box = ctx.cycle_box
        inst = ctx.inst
        slots = self.slots
        # resolve the shared trace entries down to slots once per run
        entries = tuple(
            (name, slots[payload] if kind == "value" else None, payload)
            for name, kind, payload in inst.traced
        )
        record = inst.record_cycle
        wants = inst.wants_cycle_trace

        def op() -> None:
            if not wants():
                return
            # raw stored values, exactly like the interpreter's state.lookup
            # (an override or memory-mapped input may deposit out-of-word
            # values; the trace shows them unmasked on every backend)
            record(
                cycle_box[0],
                {
                    name: (values[slot] if slot is not None else payload)
                    for name, slot, payload in entries
                },
            )
        return op

    # -- results ------------------------------------------------------------

    def visible_values(self, values: list[int]) -> dict[str, int]:
        """Final values dict in this variant's definition order."""
        return self.program.visible_values(values, self.variant)
