"""Closure compilation of specification expressions (threaded code).

The interpreter backend re-walks every expression tree through
``state.lookup`` dict lookups on every cycle; the compiled backend goes to
the other extreme and generates a whole Python module.  This module is the
classic middle point of that design space: **threaded code**.  At prepare
time every ALU, selector and memory expression is compiled into a Python
closure over pre-bound locals — slot indices into a flat ``values`` list,
pre-computed masks and shifts, the memory cell lists — and the closures are
chained into one flat per-cycle op list.  Running a cycle is then just

    for op in ops:
        op()

with no tree walk, no name lookup and no per-cycle dataclass allocation.

Compilation is split into two phases so a prepared simulation can be run
many times (and with different run options) without re-walking the trees:

* *plan* time (``ThreadedProgram`` construction, done once per ``prepare``):
  expressions are lowered to small descriptor tuples and each component
  gets a ``bind`` function;
* *bind* time (start of each ``run``): the ``bind`` functions close the
  descriptors over this run's mutable state (the ``values`` list, the
  memory cell arrays, the I/O system, optional stats / trace / override
  hooks) and return the zero-argument per-cycle ops.

The fast path — no stats, no override, no tracing — binds ops that do
nothing but compute and store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    InvalidAluFunctionError,
    MemoryRangeError,
    SelectorRangeError,
)
from repro.rtl.alu_ops import FUNCTION_COUNT, dologic, shift_left
from repro.rtl.bits import WORD_BITS, WORD_MASK, mask_for_width
from repro.rtl.components import Alu, Memory, Selector
from repro.rtl.dependency import sort_combinational
from repro.rtl.expressions import ComponentRef, Expression
from repro.rtl.spec import Specification

#: A bound per-cycle operation: computes and stores, returns nothing.
Op = Callable[[], None]
#: A bound value producer: returns one masked machine word.
Pull = Callable[[], int]


# ---------------------------------------------------------------------------
# Expression lowering: Expression -> descriptor -> bound closure
# ---------------------------------------------------------------------------
#
# Descriptors are small tuples so that plans are cheap to build, hash and
# cache.  Kinds:
#   ("const", value)                       constant (already masked)
#   ("ref", slot)                          whole-component reference
#   ("bits", slot, low, mask)              bit-field reference
#   ("concat", ((field_desc, offset), ...))  multi-field concatenation


def lower_expression(expression: Expression, slots: dict[str, int]) -> tuple:
    """Lower *expression* to a descriptor against the slot assignment."""
    if expression.is_constant:
        return ("const", expression.constant_value())
    fields = expression.fields
    if len(fields) == 1:
        return _lower_field(fields[0], slots)
    parts: list[tuple[tuple, int]] = []
    offset = 0
    for f in reversed(fields):
        parts.append((_lower_field(f, slots), offset))
        width = f.width
        offset = WORD_BITS if width is None else offset + width
    return ("concat", tuple(parts))


def _lower_field(f, slots: dict[str, int]) -> tuple:
    if f.is_constant:
        return ("const", f.evaluate(lambda name: 0))
    assert isinstance(f, ComponentRef)
    slot = slots[f.name]
    if f.low is None:
        return ("ref", slot)
    width = f.width
    assert width is not None
    return ("bits", slot, f.low, mask_for_width(width))


def bind_pull(desc: tuple, values: list[int]) -> Pull:
    """Bind a descriptor to *values*, returning a zero-argument producer.

    Whole-component references mask on read (like the interpreter's
    ``ComponentRef.evaluate``) because stored values may be raw — e.g. a
    memory-mapped input or an override hook can deposit anything.
    """
    kind = desc[0]
    if kind == "const":
        constant = desc[1]
        return lambda: constant
    if kind == "ref":
        slot = desc[1]
        return lambda: values[slot] & WORD_MASK
    if kind == "bits":
        _, slot, low, mask = desc
        if low == 0:
            return lambda: values[slot] & mask
        return lambda: (values[slot] >> low) & mask
    parts = tuple(
        (bind_pull(part, values), offset) for part, offset in desc[1]
    )
    if len(parts) == 2:
        (pull_a, off_a), (pull_b, off_b) = parts
        return lambda: ((pull_a() << off_a) | (pull_b() << off_b)) & WORD_MASK

    def pull() -> int:
        result = 0
        for part_pull, offset in parts:
            result |= part_pull() << offset
        return result & WORD_MASK

    return pull


# ---------------------------------------------------------------------------
# ALU compute closures, specialised per constant function code
# ---------------------------------------------------------------------------

_M = WORD_MASK


def _alu_zero(l: Pull, r: Pull) -> Pull:
    return lambda: 0


def _alu_right(l: Pull, r: Pull) -> Pull:
    return r


def _alu_left(l: Pull, r: Pull) -> Pull:
    return l


def _alu_not(l: Pull, r: Pull) -> Pull:
    return lambda: _M - l()


def _alu_add(l: Pull, r: Pull) -> Pull:
    return lambda: (l() + r()) & _M


def _alu_sub(l: Pull, r: Pull) -> Pull:
    return lambda: (l() - r()) & _M


def _alu_shift_left(l: Pull, r: Pull) -> Pull:
    return lambda: shift_left(l(), r())


def _alu_mul(l: Pull, r: Pull) -> Pull:
    return lambda: (l() * r()) & _M


def _alu_and(l: Pull, r: Pull) -> Pull:
    return lambda: l() & r()


def _alu_or(l: Pull, r: Pull) -> Pull:
    return lambda: l() | r()


def _alu_xor(l: Pull, r: Pull) -> Pull:
    return lambda: l() ^ r()


def _alu_eq(l: Pull, r: Pull) -> Pull:
    return lambda: 1 if l() == r() else 0


def _alu_lt(l: Pull, r: Pull) -> Pull:
    return lambda: 1 if l() < r() else 0


#: Closure builders indexed by ALU function code (mirrors ``dologic``).
ALU_CLOSURE_BUILDERS: tuple[Callable[[Pull, Pull], Pull], ...] = (
    _alu_zero,       # 0 zero
    _alu_right,      # 1 right
    _alu_left,       # 2 left
    _alu_not,        # 3 not-left
    _alu_add,        # 4 add
    _alu_sub,        # 5 subtract
    _alu_shift_left, # 6 shift-left
    _alu_mul,        # 7 multiply
    _alu_and,        # 8 and
    _alu_or,         # 9 or
    _alu_xor,        # 10 xor
    _alu_zero,       # 11 unused
    _alu_eq,         # 12 equal
    _alu_lt,         # 13 less-than
)


# ---------------------------------------------------------------------------
# Runtime context: everything a bind function may close over
# ---------------------------------------------------------------------------


@dataclass
class RunContext:
    """Mutable per-run state the bound closures operate on."""

    #: flat value array: combinational slots, memory-output slots, latch slots
    values: list[int]
    #: one mutable cell list per memory, keyed by name
    memory_arrays: dict[str, list[int]]
    #: single-element list holding the current cycle (shared by all closures)
    cycle_box: list[int]
    io: object = None
    stats: object = None
    override: Callable[[str, int, int], int] | None = None
    trace_log: object = None
    trace_accesses: bool = False


# ---------------------------------------------------------------------------
# Component plans
# ---------------------------------------------------------------------------


def _plan_alu(alu: Alu, slots: dict[str, int]):
    """Build the bind function for one ALU."""
    name = alu.name
    slot = slots[name]
    left_desc = lower_expression(alu.left, slots)
    right_desc = lower_expression(alu.right, slots)
    constant_funct: int | None = None
    funct_desc: tuple | None = None
    if alu.funct.is_constant:
        code = alu.funct.constant_value()
        if 0 <= code < FUNCTION_COUNT:
            constant_funct = code
        else:
            funct_desc = ("const", code)
    else:
        funct_desc = lower_expression(alu.funct, slots)

    def bind(ctx: RunContext) -> Op:
        values = ctx.values
        left = bind_pull(left_desc, values)
        right = bind_pull(right_desc, values)
        override = ctx.override
        stats = ctx.stats
        cycle_box = ctx.cycle_box
        if constant_funct is not None:
            compute = ALU_CLOSURE_BUILDERS[constant_funct](left, right)
            if override is None and stats is None:
                def op() -> None:
                    values[slot] = compute()
                return op
            record = stats.record_alu_function if stats is not None else None
            code = constant_funct

            def op() -> None:
                value = compute()
                if record is not None:
                    record(code)
                if override is not None:
                    value = override(name, value, cycle_box[0])
                values[slot] = value
            return op

        funct = bind_pull(funct_desc, values)
        record = stats.record_alu_function if stats is not None else None

        def op() -> None:
            code = funct()
            if not 0 <= code < FUNCTION_COUNT:
                raise InvalidAluFunctionError(
                    f"ALU '{name}' computed function code {code}", cycle_box[0]
                )
            if record is not None:
                record(code)
            value = dologic(code, left(), right())
            if override is not None:
                value = override(name, value, cycle_box[0])
            values[slot] = value
        return op

    return bind


def _plan_selector(selector: Selector, slots: dict[str, int]):
    """Build the bind function for one selector."""
    name = selector.name
    slot = slots[name]
    count = selector.case_count
    select_desc = lower_expression(selector.select, slots)
    case_descs = tuple(lower_expression(c, slots) for c in selector.cases)
    constant_cases: tuple[int, ...] | None = None
    if all(desc[0] == "const" for desc in case_descs):
        constant_cases = tuple(desc[1] for desc in case_descs)

    def bind(ctx: RunContext) -> Op:
        values = ctx.values
        select = bind_pull(select_desc, values)
        override = ctx.override
        stats = ctx.stats
        cycle_box = ctx.cycle_box
        plain = override is None and stats is None
        if constant_cases is not None:
            table = constant_cases
            if plain:
                def op() -> None:
                    index = select()
                    if index >= count:
                        raise SelectorRangeError(
                            f"selector '{name}' index {index} exceeds its "
                            f"{count} cases", cycle_box[0],
                        )
                    values[slot] = table[index]
                return op
        cases = tuple(bind_pull(desc, values) for desc in case_descs)
        if plain:
            def op() -> None:
                index = select()
                if index >= count:
                    raise SelectorRangeError(
                        f"selector '{name}' index {index} exceeds its "
                        f"{count} cases", cycle_box[0],
                    )
                values[slot] = cases[index]()
            return op

        record = stats.record_selector_case if stats is not None else None

        def op() -> None:
            index = select()
            if index >= count:
                raise SelectorRangeError(
                    f"selector '{name}' index {index} exceeds its "
                    f"{count} cases", cycle_box[0],
                )
            if record is not None:
                record(name, index)
            value = cases[index]()
            if override is not None:
                value = override(name, value, cycle_box[0])
            values[slot] = value
        return op

    return bind


def _plan_memory(memory: Memory, slots: dict[str, int], latch_base: int):
    """Build the (latch, apply) bind functions for one memory.

    ``latch_base`` indexes three scratch slots in the values list holding
    this memory's latched address / data / operation for the current cycle,
    so every memory sees a consistent pre-update view (all registers clock
    together) without allocating a request object per cycle.
    """
    name = memory.name
    out_slot = slots[name]
    size = memory.size
    address_desc = lower_expression(memory.address, slots)
    data_desc = lower_expression(memory.data, slots)
    operation_desc = lower_expression(memory.operation, slots)
    addr_slot, data_slot, op_slot = latch_base, latch_base + 1, latch_base + 2

    def bind_latch(ctx: RunContext) -> Op:
        values = ctx.values
        address = bind_pull(address_desc, values)
        data = bind_pull(data_desc, values)
        operation = bind_pull(operation_desc, values)

        def op() -> None:
            values[addr_slot] = address()
            values[data_slot] = data()
            values[op_slot] = operation()
        return op

    def bind_apply(ctx: RunContext) -> Op:
        values = ctx.values
        cells = ctx.memory_arrays[name]
        io = ctx.io
        cycle_box = ctx.cycle_box
        override = ctx.override
        stats = ctx.stats
        trace_log = ctx.trace_log if ctx.trace_accesses else None
        plain = override is None and stats is None and trace_log is None
        io_read = io.read
        io_write = io.write

        if plain:
            def op() -> None:
                op_word = values[op_slot] & 3
                address = values[addr_slot]
                if op_word == 0:
                    if address >= size:
                        raise MemoryRangeError(
                            f"memory '{name}' address {address} outside its "
                            f"declared range 0..{size - 1}", cycle_box[0],
                        )
                    values[out_slot] = cells[address]
                elif op_word == 1:
                    if address >= size:
                        raise MemoryRangeError(
                            f"memory '{name}' address {address} outside its "
                            f"declared range 0..{size - 1}", cycle_box[0],
                        )
                    values[out_slot] = cells[address] = values[data_slot]
                elif op_word == 2:
                    values[out_slot] = io_read(address, cycle=cycle_box[0])
                else:
                    data = values[data_slot]
                    io_write(address, data, cycle=cycle_box[0])
                    values[out_slot] = data
            return op

        record = stats.record_memory_access if stats is not None else None

        def op() -> None:
            op_word = values[op_slot]
            operation = op_word & 3
            address = values[addr_slot]
            if operation == 0:
                if address >= size:
                    raise MemoryRangeError(
                        f"memory '{name}' address {address} outside its "
                        f"declared range 0..{size - 1}", cycle_box[0],
                    )
                output = cells[address]
            elif operation == 1:
                if address >= size:
                    raise MemoryRangeError(
                        f"memory '{name}' address {address} outside its "
                        f"declared range 0..{size - 1}", cycle_box[0],
                    )
                output = cells[address] = values[data_slot]
            elif operation == 2:
                output = io_read(address, cycle=cycle_box[0])
            else:
                output = values[data_slot]
                io_write(address, output, cycle=cycle_box[0])
            values[out_slot] = output
            if override is not None:
                values[out_slot] = override(name, output, cycle_box[0])
            if record is not None:
                record(name, op_word, address)
            if trace_log is not None:
                if (op_word & 5) == 5:
                    trace_log.record_access(
                        cycle_box[0], name, "write", address, output
                    )
                elif (op_word & 9) == 8:
                    trace_log.record_access(
                        cycle_box[0], name, "read", address, output
                    )
        return op

    return bind_latch, bind_apply


# ---------------------------------------------------------------------------
# The whole program
# ---------------------------------------------------------------------------


class ThreadedProgram:
    """A specification lowered to closure plans, ready to bind and run.

    Built once per ``prepare``; :meth:`bind` is called at the start of every
    ``run`` to close the plans over that run's mutable state.
    """

    def __init__(self, spec: Specification) -> None:
        self.spec = spec
        self.ordered = sort_combinational(spec)
        self.memories = spec.memories()
        # slot layout: combinational values, then memory outputs, then three
        # latch scratch slots per memory
        self.slots: dict[str, int] = {}
        for component in self.ordered:
            self.slots[component.name] = len(self.slots)
        for memory in self.memories:
            self.slots[memory.name] = len(self.slots)
        self.latch_base = len(self.slots)
        self.value_count = self.latch_base + 3 * len(self.memories)

        self._combinational_binds = []
        for component in self.ordered:
            if isinstance(component, Alu):
                self._combinational_binds.append(_plan_alu(component, self.slots))
            else:
                assert isinstance(component, Selector)
                self._combinational_binds.append(
                    _plan_selector(component, self.slots)
                )
        self._memory_binds = []
        for index, memory in enumerate(self.memories):
            self._memory_binds.append(
                _plan_memory(memory, self.slots, self.latch_base + 3 * index)
            )

    # -- per-run state ------------------------------------------------------

    def initial_values(self) -> list[int]:
        """Fresh values array: zeros plus each memory's initial output."""
        values = [0] * self.value_count
        for memory in self.memories:
            values[self.slots[memory.name]] = memory.initial_output
        return values

    def initial_memory_arrays(self) -> dict[str, list[int]]:
        return {
            memory.name: memory.initial_cell_values()
            for memory in self.memories
        }

    def bind(self, ctx: RunContext, traced_names: list[str] | None = None,
             trace_limit: int | None = None) -> list[Op]:
        """Bind every plan to *ctx* and return the flat per-cycle op list."""
        ops: list[Op] = [bind(ctx) for bind in self._combinational_binds]
        if traced_names:
            ops.append(self._bind_cycle_trace(ctx, traced_names, trace_limit))
        latch_ops = []
        apply_ops = []
        for bind_latch, bind_apply in self._memory_binds:
            latch_ops.append(bind_latch(ctx))
            apply_ops.append(bind_apply(ctx))
        ops.extend(latch_ops)
        ops.extend(apply_ops)
        return ops

    def _bind_cycle_trace(self, ctx: RunContext, traced_names: list[str],
                          limit: int | None) -> Op:
        values = ctx.values
        cycle_box = ctx.cycle_box
        trace_log = ctx.trace_log
        pairs = tuple((name, self.slots[name]) for name in traced_names)
        record = trace_log.record_cycle

        def op() -> None:
            if limit is not None and len(trace_log.cycles) >= limit:
                return
            # raw stored values, exactly like the interpreter's state.lookup
            # (an override or memory-mapped input may deposit out-of-word
            # values; the trace shows them unmasked on both backends)
            record(
                cycle_box[0],
                {name: values[slot] for name, slot in pairs},
            )
        return op

    # -- results ------------------------------------------------------------

    def visible_values(self, values: list[int]) -> dict[str, int]:
        """Final values dict in the interpreter's (definition) order."""
        slots = self.slots
        return {
            component.name: values[slots[component.name]]
            for component in self.spec.components
        }
