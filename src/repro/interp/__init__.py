"""ASIM-style interpreter backend (the paper's baseline simulator)."""

from repro.interp.interpreter import InterpreterBackend, InterpreterSimulation
from repro.interp.state import MachineState

__all__ = ["InterpreterBackend", "InterpreterSimulation", "MachineState"]
