"""ASIM-style interpreter backend (the paper's baseline simulator).

This package also hosts the closure binder (:mod:`repro.interp.closures`)
that turns the shared lowered program (:mod:`repro.lowering`) into threaded
code; the backend wrapping it lives in :mod:`repro.compiler.threaded`.
"""

from repro.interp.closures import RunContext, ThreadedProgram
from repro.interp.interpreter import InterpreterBackend, InterpreterSimulation
from repro.interp.state import MachineState

__all__ = [
    "InterpreterBackend",
    "InterpreterSimulation",
    "MachineState",
    "RunContext",
    "ThreadedProgram",
]
