"""ASIM-style interpreter backend (the paper's baseline simulator).

This package also hosts the closure compiler (:mod:`repro.interp.closures`)
that lowers specifications to threaded code; the backend wrapping it lives
in :mod:`repro.compiler.threaded`.
"""

from repro.interp.closures import RunContext, ThreadedProgram
from repro.interp.interpreter import InterpreterBackend, InterpreterSimulation
from repro.interp.state import MachineState

__all__ = [
    "InterpreterBackend",
    "InterpreterSimulation",
    "MachineState",
    "RunContext",
    "ThreadedProgram",
]
