"""Command line interface.

Appendix A of the paper: "To invoke ASIM II, type ``sim [file]`` ... After
successful compilation, type ``pc simulator.p`` in order to generate
executable code".  This module provides the modern equivalent as
``python -m repro``:

* ``compile``  — read a specification and write the generated simulator
  program (Python by default, Pascal with ``--pascal``), like ``sim file``;
* ``run``      — simulate a specification for N cycles and print the trace,
  outputs and statistics;
* ``machines`` — list the bundled example machines;
* ``demo``     — build a bundled machine and run it;
* ``netlist``  — print the wiring list and bill of materials (Section 5.3);
* ``serve-batch`` — fan N runs of one specification out over a worker pool
  (the serving layer, :mod:`repro.serving`) on a chosen execution strategy
  (``--executor serial|thread|process``), optionally checking the batched
  results bit-identical against a sequential run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.compiler import CodegenOptions, generate_pascal, generate_python
from repro.core.iosystem import QueueIO
from repro.core.simulator import BACKEND_NAMES, Simulator
from repro.errors import AsimError
from repro.machines.library import all_machines, get_machine
from repro.rtl.parser import parse_spec_file
from repro.synth.report import hardware_report


def _add_spec_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", type=Path, help="specification file to read")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASIM II reproduction: simulate register-transfer-level "
        "hardware specifications",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="generate simulator code from a specification"
    )
    _add_spec_argument(compile_parser)
    compile_parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output file (default: stdout)",
    )
    compile_parser.add_argument(
        "--pascal", action="store_true",
        help="emit Pascal in the original Appendix E style instead of Python",
    )
    compile_parser.add_argument(
        "--no-optimize", action="store_true",
        help="disable the Section 4.4 constant-folding optimizations",
    )

    run_parser = subparsers.add_parser("run", help="simulate a specification")
    _add_spec_argument(run_parser)
    run_parser.add_argument(
        "-c", "--cycles", type=int, default=None,
        help="number of cycles (default: the spec's '= N' declaration)",
    )
    run_parser.add_argument(
        "-b", "--backend", choices=BACKEND_NAMES, default="compiled",
        help="simulation backend (default: compiled)",
    )
    run_parser.add_argument(
        "-i", "--input", type=int, action="append", default=[],
        help="value for memory-mapped input (repeatable)",
    )
    run_parser.add_argument(
        "--trace", action="store_true", help="print the per-cycle trace"
    )
    run_parser.add_argument(
        "--stats", action="store_true", help="print simulation statistics"
    )

    subparsers.add_parser("machines", help="list the bundled example machines")

    demo_parser = subparsers.add_parser("demo", help="run a bundled machine")
    demo_parser.add_argument("name", help="machine name (see 'machines')")
    demo_parser.add_argument("-c", "--cycles", type=int, default=None)
    demo_parser.add_argument(
        "-b", "--backend", choices=BACKEND_NAMES, default="compiled"
    )

    netlist_parser = subparsers.add_parser(
        "netlist", help="print the wiring list and bill of materials"
    )
    _add_spec_argument(netlist_parser)

    serve_parser = subparsers.add_parser(
        "serve-batch",
        help="run a batch of simulations of one specification on a worker pool",
    )
    _add_spec_argument(serve_parser)
    serve_parser.add_argument(
        "-n", "--runs", type=int, default=8,
        help="number of runs in the batch (default: 8)",
    )
    serve_parser.add_argument(
        "-w", "--workers", type=int, default=4,
        help="workers in the pool (default: 4)",
    )
    serve_parser.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default="thread",
        help="execution strategy: serial (inline), thread (GIL-bound "
        "prepare amortisation) or process (true multi-core; ships the "
        "lowered program to worker processes once) (default: thread)",
    )
    serve_parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="requests per scheduling unit (default: strategy-chosen; "
        "the process executor batches IPC in chunks)",
    )
    serve_parser.add_argument(
        "-c", "--cycles", type=int, default=None,
        help="cycles per run (default: the spec's '= N' declaration)",
    )
    serve_parser.add_argument(
        "-b", "--backend", choices=BACKEND_NAMES, default="threaded",
        help="simulation backend (default: threaded)",
    )
    serve_parser.add_argument(
        "-i", "--input", type=int, action="append", default=[],
        help="memory-mapped input value given to every run (repeatable)",
    )
    serve_parser.add_argument(
        "--check", action="store_true",
        help="also run once sequentially and verify the batched results "
        "are bit-identical",
    )

    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _command_compile(args: argparse.Namespace) -> int:
    spec = parse_spec_file(args.spec)
    options = CodegenOptions.unoptimized() if args.no_optimize else CodegenOptions()
    source = (
        generate_pascal(spec, options) if args.pascal else generate_python(spec, options)
    )
    if args.output is None:
        print(source, end="")
    else:
        args.output.write_text(source)
        print(f"wrote {len(source.splitlines())} lines to {args.output}")
    return 0


def _print_result(result, show_trace: bool, show_stats: bool) -> None:
    if show_trace and len(result.trace):
        print(result.trace.render())
    if result.outputs:
        print("outputs:", " ".join(str(event.value) for event in result.outputs))
    print(
        f"{result.backend}: {result.cycles_run} cycles in "
        f"{result.run_seconds:.4f}s (prepare {result.prepare_seconds:.4f}s)"
    )
    if show_stats:
        print(result.stats.summary())


def _command_run(args: argparse.Namespace) -> int:
    spec = parse_spec_file(args.spec)
    simulator = Simulator(spec, backend=args.backend)
    result = simulator.run(
        cycles=args.cycles,
        io=QueueIO(args.input, strict=False),
        trace=True if args.trace else None,
    )
    _print_result(result, args.trace, args.stats)
    return 0


def _command_machines(_args: argparse.Namespace) -> int:
    for entry in all_machines():
        print(f"{entry.name:<22s} {entry.description}")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    entry = get_machine(args.name)
    spec = entry.build()
    cycles = args.cycles if args.cycles is not None else entry.demo_cycles
    print(f"{entry.name}: {entry.description}")
    print(spec.summary())
    result = Simulator(spec, backend=args.backend).run(cycles=cycles)
    _print_result(result, show_trace=False, show_stats=True)
    return 0


def _command_netlist(args: argparse.Namespace) -> int:
    spec = parse_spec_file(args.spec)
    print(hardware_report(spec).render())
    return 0


def _command_serve_batch(args: argparse.Namespace) -> int:
    from repro.serving import BatchRequest, run_batch

    spec = parse_spec_file(args.spec)
    request = BatchRequest.repeat(
        spec, args.runs, cycles=args.cycles, inputs=args.input,
        backend=args.backend,
    )
    batch = run_batch(request, max_workers=args.workers,
                      executor=args.executor, chunk_size=args.chunk_size)
    print(f"{args.spec.name}: {args.runs} runs on {args.backend} "
          f"({args.workers} workers, {args.executor} executor)")
    print(batch.summary())
    for worker, rate in sorted(batch.per_worker_runs_per_second.items()):
        print(f"  {worker}: {batch.runs_by_worker[worker]} runs, "
              f"{rate:.1f} runs/sec busy")
    for item in batch.failures:
        print(f"run {item.index} failed: {item.error}", file=sys.stderr)
    if not batch.ok:
        return 1
    if args.check:
        from repro.core.comparison import compare_results

        reference = Simulator(spec, backend=args.backend).run(
            cycles=args.cycles, io=QueueIO(args.input, strict=False)
        )
        for item in batch.items:
            mismatches = compare_results(reference, item.result)
            if mismatches:
                print(f"check FAILED: run {item.index} differs from the "
                      "sequential reference:", file=sys.stderr)
                for mismatch in mismatches:
                    print(f"  {mismatch}", file=sys.stderr)
                return 1
        print(f"check: all {len(batch.items)} batched results bit-identical "
              "to sequential")
    return 0


_COMMANDS = {
    "compile": _command_compile,
    "run": _command_run,
    "machines": _command_machines,
    "demo": _command_demo,
    "netlist": _command_netlist,
    "serve-batch": _command_serve_batch,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except AsimError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
