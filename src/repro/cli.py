"""Command line interface.

Appendix A of the paper: "To invoke ASIM II, type ``sim [file]`` ... After
successful compilation, type ``pc simulator.p`` in order to generate
executable code".  This module provides the modern equivalent as
``python -m repro``:

* ``compile``  — read a specification and write the generated simulator
  program (Python by default, Pascal with ``--pascal``), like ``sim file``;
* ``run``      — simulate a specification for N cycles and print the trace,
  outputs and statistics;
* ``machines`` — list the bundled example machines;
* ``demo``     — build a bundled machine and run it;
* ``netlist``  — print the wiring list and bill of materials (Section 5.3);
* ``serve-batch`` — fan N runs of one specification out over a worker pool
  (the serving layer, :mod:`repro.serving`) on a chosen execution strategy
  (``--executor serial|thread|process|lane``), optionally checking the
  batched results bit-identical against a sequential run;
* ``serve``    — the long-lived simulation server: pools kept warm behind
  an HTTP JSON API (:mod:`repro.serving.server`; endpoints documented in
  ``docs/api-reference.md``), with startup garbage collection of the
  persistent artifact cache;
* ``cache``    — inspect (``cache info``) or garbage-collect
  (``cache prune --max-bytes/--max-age``) the persistent artifact cache
  under ``$REPRO_CACHE_DIR``;
* ``spec``     — convert specifications between the paper's text form and
  the versioned JSON interchange format (``spec export``;
  :mod:`repro.rtl.interchange`, documented in ``docs/spec-format.md``) or
  check one without running it (``spec validate``); both accept either
  form and auto-detect which they were given;
* ``fuzz``     — differential fuzzing (:mod:`repro.fuzz`): generate seeded
  random machines, round-trip each through the JSON format, run every
  backend × specopt × executor configuration and demand bit-identical
  results; mismatches are shrunk to minimal reproducers and optionally
  persisted into a crasher corpus (``--corpus-dir``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.compiler import CodegenOptions, generate_pascal, generate_python
from repro.core.iosystem import QueueIO
from repro.core.simulator import BACKEND_NAMES, Simulator
from repro.errors import AsimError
from repro.machines.library import all_machines, get_machine
from repro.rtl.parser import parse_spec_file
from repro.serving.executor import EXECUTOR_NAMES
from repro.serving.tracing import TRACE_SINKS
from repro.synth.report import hardware_report


def _add_spec_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "spec", type=Path,
        help="specification file to read (text or interchange JSON, "
        "auto-detected)",
    )


#: Multipliers for the human-readable size suffixes ``repro cache``/``serve``
#: accept (``64k``, ``256m``, ``2g``; bare numbers are bytes).
_SIZE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}

#: Multipliers for the age suffixes (``90s``, ``12h``, ``7d``; bare numbers
#: are seconds).
_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_size(text: str) -> int:
    """``"256m"`` -> bytes; raises ``argparse.ArgumentTypeError`` on junk."""
    text = text.strip().lower()
    multiplier = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte size like '1048576' or '256m', got '{text}'"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("byte size must be >= 0")
    return value * multiplier


def parse_age(text: str) -> float:
    """``"7d"`` -> seconds; raises ``argparse.ArgumentTypeError`` on junk."""
    text = text.strip().lower()
    multiplier = 1.0
    if text and text[-1] in _AGE_SUFFIXES:
        multiplier = _AGE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an age like '3600' (seconds), '12h' or '7d', "
            f"got '{text}'"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("age must be >= 0")
    return value * multiplier


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASIM II reproduction: simulate register-transfer-level "
        "hardware specifications",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="generate simulator code from a specification"
    )
    _add_spec_argument(compile_parser)
    compile_parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output file (default: stdout)",
    )
    compile_parser.add_argument(
        "--pascal", action="store_true",
        help="emit Pascal in the original Appendix E style instead of Python",
    )
    compile_parser.add_argument(
        "--no-optimize", action="store_true",
        help="disable the Section 4.4 constant-folding optimizations",
    )

    run_parser = subparsers.add_parser("run", help="simulate a specification")
    _add_spec_argument(run_parser)
    run_parser.add_argument(
        "-c", "--cycles", type=int, default=None,
        help="number of cycles (default: the spec's '= N' declaration)",
    )
    run_parser.add_argument(
        "-b", "--backend", choices=BACKEND_NAMES, default="compiled",
        help="simulation backend (default: compiled)",
    )
    run_parser.add_argument(
        "-i", "--input", type=int, action="append", default=[],
        help="value for memory-mapped input (repeatable)",
    )
    run_parser.add_argument(
        "--trace", action="store_true", help="print the per-cycle trace"
    )
    run_parser.add_argument(
        "--stats", action="store_true", help="print simulation statistics"
    )

    subparsers.add_parser("machines", help="list the bundled example machines")

    demo_parser = subparsers.add_parser("demo", help="run a bundled machine")
    demo_parser.add_argument("name", help="machine name (see 'machines')")
    demo_parser.add_argument("-c", "--cycles", type=int, default=None)
    demo_parser.add_argument(
        "-b", "--backend", choices=BACKEND_NAMES, default="compiled"
    )

    netlist_parser = subparsers.add_parser(
        "netlist", help="print the wiring list and bill of materials"
    )
    _add_spec_argument(netlist_parser)

    serve_parser = subparsers.add_parser(
        "serve-batch",
        help="run a batch of simulations of one specification on a worker pool",
    )
    _add_spec_argument(serve_parser)
    serve_parser.add_argument(
        "-n", "--runs", type=int, default=8,
        help="number of runs in the batch (default: 8)",
    )
    serve_parser.add_argument(
        "-w", "--workers", type=int, default=4,
        help="workers in the pool (default: 4)",
    )
    serve_parser.add_argument(
        "--executor", choices=EXECUTOR_NAMES,
        default="thread",
        help="execution strategy: serial (inline), thread (GIL-bound "
        "prepare amortisation), process (true multi-core; ships the "
        "lowered program to worker processes once) or lane (N run "
        "variants advanced together in one schedule walk) "
        "(default: thread)",
    )
    serve_parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="requests per scheduling unit (default: strategy-chosen; "
        "the process executor batches IPC in chunks)",
    )
    serve_parser.add_argument(
        "--lane-width", type=int, default=None, metavar="N",
        help="runs per lane group for --executor lane, and for lanes "
        "inside process workers (default: 16)",
    )
    serve_parser.add_argument(
        "-c", "--cycles", type=int, default=None,
        help="cycles per run (default: the spec's '= N' declaration)",
    )
    serve_parser.add_argument(
        "-b", "--backend", choices=BACKEND_NAMES, default="threaded",
        help="simulation backend (default: threaded)",
    )
    serve_parser.add_argument(
        "-i", "--input", type=int, action="append", default=[],
        help="memory-mapped input value given to every run (repeatable)",
    )
    serve_parser.add_argument(
        "--check", action="store_true",
        help="also run once sequentially and verify the batched results "
        "are bit-identical",
    )

    server_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived simulation server (HTTP JSON API over "
        "warm SimulationPools; see docs/api-reference.md)",
    )
    server_parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    server_parser.add_argument(
        "--port", type=int, default=8437,
        help="TCP port to bind; 0 picks an ephemeral port (default: 8437)",
    )
    server_parser.add_argument(
        "-b", "--backend", choices=BACKEND_NAMES, default="threaded",
        help="default backend for requests that do not name one "
        "(default: threaded)",
    )
    server_parser.add_argument(
        "--executor", choices=EXECUTOR_NAMES,
        default="thread",
        help="default execution strategy for requests that do not name one "
        "(default: thread)",
    )
    server_parser.add_argument(
        "-w", "--workers", type=int, default=None,
        help="workers per pool (default: strategy-chosen)",
    )
    server_parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="requests per scheduling unit (default: strategy-chosen)",
    )
    server_parser.add_argument(
        "--lane-width", type=int, default=None, metavar="N",
        help="default lane group size for lane-executor pools; requests "
        "may override per call with 'lane_width' (default: 16)",
    )
    server_parser.add_argument(
        "--cache-max-bytes", type=parse_size, default="256m",
        metavar="SIZE",
        help="byte budget the artifact cache is pruned down to at startup "
        "(accepts k/m/g suffixes; default: 256m)",
    )
    server_parser.add_argument(
        "--cache-max-age", type=parse_age, default=None, metavar="AGE",
        help="evict artifacts unused for longer than this at startup "
        "(accepts s/m/h/d suffixes; default: no age limit)",
    )
    server_parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="run without the persistent artifact cache (no pruning, "
        "no worker cold-start seeding)",
    )
    server_parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admission gate: simulation requests executing concurrently "
        "before new ones queue (default: unbounded)",
    )
    server_parser.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="admission gate: requests allowed to wait for a slot before "
        "the server answers 429 with Retry-After (default: 16)",
    )
    server_parser.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint sent with 429 rejections (default: 1)",
    )
    server_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-run deadline applied to requests that do not "
        "set timeout_seconds or X-Request-Timeout (default: none)",
    )
    server_parser.add_argument(
        "--max-body-bytes", type=parse_size, default=None, metavar="SIZE",
        help="largest request body accepted before a 413 "
        "(accepts k/m/g suffixes; default: 8m)",
    )
    server_parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="graceful-shutdown budget for in-flight requests; a drain "
        "that misses it is reported, not waited out (default: 10)",
    )
    server_parser.add_argument(
        "--no-fallback", action="store_true",
        help="disable the backend degradation chain (compiled -> threaded "
        "-> interpreter on prepare failure); fail the request instead",
    )
    server_parser.add_argument(
        "--max-pools", type=int, default=64, metavar="N",
        help="warm pools kept per server; past the cap the least-recently-"
        "used pool is drained and evicted (0 = unbounded; default: 64)",
    )
    server_parser.add_argument(
        "--port-file", type=Path, default=None, metavar="PATH",
        help="write the bound port to PATH once the socket is up; with "
        "--port 0 this is how a supervisor discovers the ephemeral port",
    )
    server_parser.add_argument(
        "--trace-sink", choices=TRACE_SINKS, default="none",
        help="durable per-request trace exporter: append-only JSONL or a "
        "single-table SQLite database; the in-memory ring buffer behind "
        "GET /v1/trace/<id> is always on (default: none)",
    )
    server_parser.add_argument(
        "--trace-dir", type=Path, default=None, metavar="DIR",
        help="directory the trace exporter writes into (required with "
        "--trace-sink jsonl/sqlite; one directory per server process)",
    )
    server_parser.add_argument(
        "--trace-ring", type=int, default=256, metavar="N",
        help="finished traces kept in the in-memory ring buffer serving "
        "GET /v1/trace/<id> (default: 256)",
    )

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="run a supervised fleet: N child serve processes behind a "
        "sharding front-door router (see docs/serving.md)",
    )
    fleet_parser.add_argument(
        "--nodes", type=int, default=2, metavar="N",
        help="child serve processes to spawn and babysit (default: 2)",
    )
    fleet_parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface the router binds (children always bind 127.0.0.1 "
        "on ephemeral ports; default: 127.0.0.1)",
    )
    fleet_parser.add_argument(
        "--port", type=int, default=8437,
        help="router TCP port; 0 picks an ephemeral port (default: 8437)",
    )
    fleet_parser.add_argument(
        "-b", "--backend", choices=BACKEND_NAMES, default="threaded",
        help="default backend forwarded to every child (default: threaded)",
    )
    fleet_parser.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default="thread",
        help="default execution strategy forwarded to every child "
        "(default: thread)",
    )
    fleet_parser.add_argument(
        "-w", "--workers", type=int, default=None,
        help="workers per pool, per child (default: strategy-chosen)",
    )
    fleet_parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="requests per scheduling unit, per child "
        "(default: strategy-chosen)",
    )
    fleet_parser.add_argument(
        "--lane-width", type=int, default=None, metavar="N",
        help="default lane group size forwarded to every child",
    )
    fleet_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-run deadline forwarded to every child",
    )
    fleet_parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="per-child admission gate (default: unbounded)",
    )
    fleet_parser.add_argument(
        "--max-pools", type=int, default=64, metavar="N",
        help="warm-pool cap forwarded to every child (0 = unbounded; "
        "default: 64)",
    )
    fleet_parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="run the children without the persistent artifact cache",
    )
    fleet_parser.add_argument(
        "--quorum", type=int, default=None, metavar="N",
        help="ready nodes /readyz requires (default: a majority, N//2+1)",
    )
    fleet_parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="per-node budget of the rolling SIGTERM drain (default: 10)",
    )
    fleet_parser.add_argument(
        "--health-interval", type=float, default=0.25, metavar="SECONDS",
        help="supervisor probe period for child /readyz (default: 0.25)",
    )
    fleet_parser.add_argument(
        "--bench-after", type=int, default=3, metavar="K",
        help="crashes within --bench-window that bench a node instead of "
        "restarting it (default: 3)",
    )
    fleet_parser.add_argument(
        "--bench-window", type=float, default=30.0, metavar="SECONDS",
        help="sliding window for the flap guard (default: 30)",
    )
    fleet_parser.add_argument(
        "--log-dir", type=Path, default=None, metavar="DIR",
        help="write per-child stdout/stderr logs here "
        "(default: discarded)",
    )
    fleet_parser.add_argument(
        "--trace-sink", choices=TRACE_SINKS, default="none",
        help="durable trace exporter forwarded to every child "
        "(default: none)",
    )
    fleet_parser.add_argument(
        "--trace-dir", type=Path, default=None, metavar="DIR",
        help="trace export root; each child writes into its own "
        "DIR/<node-id>/ subdirectory (required with --trace-sink)",
    )

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or garbage-collect the persistent artifact cache",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    cache_info = cache_sub.add_parser(
        "info", help="show the cache directory, entry counts and size"
    )
    cache_info.add_argument(
        "--dir", type=Path, default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or the per-user "
        "temp directory)",
    )
    cache_prune = cache_sub.add_parser(
        "prune",
        help="evict least-recently-used artifacts down to a byte budget "
        "and/or age limit; corrupted entries and stale temp files are "
        "always removed",
    )
    cache_prune.add_argument(
        "--dir", type=Path, default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or the per-user "
        "temp directory)",
    )
    cache_prune.add_argument(
        "--max-bytes", type=parse_size, default=None, metavar="SIZE",
        help="byte budget to prune down to (k/m/g suffixes accepted)",
    )
    cache_prune.add_argument(
        "--max-age", type=parse_age, default=None, metavar="AGE",
        help="evict artifacts unused for longer than this "
        "(s/m/h/d suffixes accepted)",
    )

    spec_parser = subparsers.add_parser(
        "spec",
        help="convert or check specifications in text or JSON interchange "
        "form (docs/spec-format.md)",
    )
    spec_sub = spec_parser.add_subparsers(dest="spec_command", required=True)
    spec_export = spec_sub.add_parser(
        "export",
        help="convert a specification between the text form and the JSON "
        "interchange format (input format is auto-detected)",
    )
    _add_spec_argument(spec_export)
    spec_export.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output file (default: stdout)",
    )
    spec_export.add_argument(
        "--text", action="store_true",
        help="emit the paper's text form instead of interchange JSON",
    )
    spec_validate = spec_sub.add_parser(
        "validate",
        help="parse and validate a specification (text or JSON) without "
        "running it; exit 1 if invalid",
    )
    _add_spec_argument(spec_validate)
    spec_validate.add_argument(
        "--strict", action="store_true",
        help="treat warnings (selector coverage, missing declarations) "
        "as errors",
    )

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing: random machines through every "
        "backend x specopt x executor, demanding bit-identity",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0,
        help="session seed; machine i uses a seed derived from it "
        "(default: 0)",
    )
    fuzz_parser.add_argument(
        "-n", "--count", type=int, default=50,
        help="number of machines to generate and check (default: 50)",
    )
    fuzz_parser.add_argument(
        "--max-components", type=int, default=16,
        help="ceiling on components per generated machine (default: 16)",
    )
    fuzz_parser.add_argument(
        "--shrink", action=argparse.BooleanOptionalAction, default=True,
        help="greedily minimise mismatching machines before reporting "
        "(default: on)",
    )
    fuzz_parser.add_argument(
        "--corpus-dir", type=Path, default=None, metavar="DIR",
        help="persist shrunk reproducers into DIR as regression cases "
        "(the committed corpus lives in tests/fuzz/corpus)",
    )
    fuzz_parser.add_argument(
        "--executors", default=",".join(EXECUTOR_NAMES),
        metavar="LIST",
        help="comma-separated executor strategies for the pooled phase, "
        "empty for sequential-only "
        "(default: serial,thread,process,lane)",
    )

    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _command_compile(args: argparse.Namespace) -> int:
    spec = _load_spec_any_format(args.spec)
    options = CodegenOptions.unoptimized() if args.no_optimize else CodegenOptions()
    source = (
        generate_pascal(spec, options) if args.pascal else generate_python(spec, options)
    )
    if args.output is None:
        print(source, end="")
    else:
        args.output.write_text(source)
        print(f"wrote {len(source.splitlines())} lines to {args.output}")
    return 0


def _print_result(result, show_trace: bool, show_stats: bool) -> None:
    if show_trace and len(result.trace):
        print(result.trace.render())
    if result.outputs:
        print("outputs:", " ".join(str(event.value) for event in result.outputs))
    print(
        f"{result.backend}: {result.cycles_run} cycles in "
        f"{result.run_seconds:.4f}s (prepare {result.prepare_seconds:.4f}s)"
    )
    if show_stats:
        print(result.stats.summary())


def _command_run(args: argparse.Namespace) -> int:
    spec = _load_spec_any_format(args.spec)
    simulator = Simulator(spec, backend=args.backend)
    result = simulator.run(
        cycles=args.cycles,
        io=QueueIO(args.input, strict=False),
        trace=True if args.trace else None,
    )
    _print_result(result, args.trace, args.stats)
    return 0


def _command_machines(_args: argparse.Namespace) -> int:
    for entry in all_machines():
        print(f"{entry.name:<22s} {entry.description}")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    entry = get_machine(args.name)
    spec = entry.build()
    cycles = args.cycles if args.cycles is not None else entry.demo_cycles
    print(f"{entry.name}: {entry.description}")
    print(spec.summary())
    result = Simulator(spec, backend=args.backend).run(cycles=cycles)
    _print_result(result, show_trace=False, show_stats=True)
    return 0


def _command_netlist(args: argparse.Namespace) -> int:
    spec = _load_spec_any_format(args.spec)
    print(hardware_report(spec).render())
    return 0


def _command_serve_batch(args: argparse.Namespace) -> int:
    from repro.serving import BatchRequest, run_batch

    spec = _load_spec_any_format(args.spec)
    request = BatchRequest.repeat(
        spec, args.runs, cycles=args.cycles, inputs=args.input,
        backend=args.backend,
    )
    batch = run_batch(request, max_workers=args.workers,
                      executor=args.executor, chunk_size=args.chunk_size,
                      lane_width=args.lane_width)
    print(f"{args.spec.name}: {args.runs} runs on {args.backend} "
          f"({args.workers} workers, {args.executor} executor)")
    print(batch.summary())
    for worker, rate in sorted(batch.per_worker_runs_per_second.items()):
        print(f"  {worker}: {batch.runs_by_worker[worker]} runs, "
              f"{rate:.1f} runs/sec busy")
    for item in batch.failures:
        print(f"run {item.index} failed: {item.error}", file=sys.stderr)
    if not batch.ok:
        return 1
    if args.check:
        from repro.core.comparison import compare_results

        reference = Simulator(spec, backend=args.backend).run(
            cycles=args.cycles, io=QueueIO(args.input, strict=False)
        )
        for item in batch.items:
            mismatches = compare_results(reference, item.result)
            if mismatches:
                print(f"check FAILED: run {item.index} differs from the "
                      "sequential reference:", file=sys.stderr)
                for mismatch in mismatches:
                    print(f"  {mismatch}", file=sys.stderr)
                return 1
        print(f"check: all {len(batch.items)} batched results bit-identical "
              "to sequential")
    return 0


def _install_signal_drain() -> None:
    """Route SIGTERM onto the KeyboardInterrupt path, so a supervisor's
    (or systemd's) TERM drains the server exactly like Ctrl-C instead of
    killing it mid-chunk.  Raising from the handler is safe because the
    serve loop runs on the main thread; calling ``close()`` directly
    from a handler would deadlock on the loop's shutdown handshake."""
    import signal

    def _drain(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _drain)
    except ValueError:
        # not the main thread (embedded use): the caller owns signals
        pass


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serving.server import MAX_BODY_BYTES, SimulationServer

    if args.trace_sink != "none" and args.trace_dir is None:
        print(f"error: --trace-sink {args.trace_sink} requires --trace-dir",
              file=sys.stderr)
        return 2
    _install_signal_drain()
    server = SimulationServer(
        host=args.host,
        port=args.port,
        backend=args.backend,
        executor=args.executor,
        max_workers=args.workers,
        chunk_size=args.chunk_size,
        lane_width=args.lane_width,
        artifact_cache=False if args.no_disk_cache else None,
        cache_max_bytes=args.cache_max_bytes,
        cache_max_age=args.cache_max_age,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        retry_after=args.retry_after,
        default_timeout=args.timeout,
        max_body_bytes=(
            args.max_body_bytes if args.max_body_bytes is not None
            else MAX_BODY_BYTES
        ),
        drain_timeout=args.drain_timeout,
        fallback=not args.no_fallback,
        max_pools=args.max_pools if args.max_pools > 0 else None,
        trace_sink=args.trace_sink,
        trace_dir=args.trace_dir,
        trace_ring=args.trace_ring,
    )
    if server.startup_prune is not None and server.startup_prune.removed_files:
        print(f"cache prune: {server.startup_prune.summary()}")
    print(f"serving on {server.url} (backend={args.backend}, "
          f"executor={args.executor}); Ctrl-C to stop")
    if args.port_file is not None:
        # the socket is bound, so the port is final; publish it for the
        # supervisor that started us with --port 0
        args.port_file.write_text(f"{server.port}\n")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (draining in-flight runs) ...")
    finally:
        if not server.close():
            print(
                "warning: in-flight requests outlived the "
                f"{server.drain_timeout:g}s drain budget and were abandoned"
            )
    return 0


def _command_fleet(args: argparse.Namespace) -> int:
    from repro.serving.router import ServingFleet

    if args.trace_sink != "none" and args.trace_dir is None:
        print(f"error: --trace-sink {args.trace_sink} requires --trace-dir",
              file=sys.stderr)
        return 2
    _install_signal_drain()
    child_args: list[str] = []
    if args.workers is not None:
        child_args += ["--workers", str(args.workers)]
    if args.chunk_size is not None:
        child_args += ["--chunk-size", str(args.chunk_size)]
    if args.lane_width is not None:
        child_args += ["--lane-width", str(args.lane_width)]
    if args.timeout is not None:
        child_args += ["--timeout", str(args.timeout)]
    if args.max_inflight is not None:
        child_args += ["--max-inflight", str(args.max_inflight)]
    if args.no_disk_cache:
        child_args += ["--no-disk-cache"]
    child_args += ["--max-pools", str(args.max_pools)]
    fleet = ServingFleet(
        nodes=args.nodes,
        host=args.host,
        port=args.port,
        child_args=child_args,
        backend=args.backend,
        executor=args.executor,
        quorum=args.quorum,
        drain_timeout=args.drain_timeout,
        health_interval=args.health_interval,
        bench_after=args.bench_after,
        bench_window=args.bench_window,
        log_dir=args.log_dir,
        trace_sink=args.trace_sink,
        trace_dir=(
            str(args.trace_dir) if args.trace_dir is not None else None
        ),
    )
    print(f"starting {args.nodes} serve node(s) ...")
    fleet.supervisor.start(wait=True)
    for snap in fleet.supervisor.describe():
        print(f"  {snap['id']}: {snap['url']} (pid {snap['pid']})")
    print(f"routing on {fleet.router.url} "
          f"(quorum {fleet.router.quorum}/{args.nodes}); Ctrl-C to stop")
    try:
        fleet.router.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (rolling drain) ...")
    finally:
        fleet.router.close()
        for entry in fleet.supervisor.stop():
            label = (
                "drained" if entry["clean"]
                else "killed after the drain budget"
                if entry["forced"] else "already down"
            )
            print(f"  {entry['node']}: {label} ({entry['seconds']:.1f}s)")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from repro.compiler.cache import DiskCache

    cache = DiskCache(args.dir)
    if args.cache_command == "info":
        print(cache.info().summary())
        return 0
    report = cache.prune(max_bytes=args.max_bytes, max_age=args.max_age)
    print(report.summary())
    return 0


def _load_spec_any_format(path: Path, validate: bool = True):
    """Read *path* as interchange JSON or the paper's text form."""
    from dataclasses import replace

    from repro.rtl.interchange import looks_like_json, spec_from_json_text

    text = path.read_text(encoding="utf-8")
    if looks_like_json(text):
        spec = spec_from_json_text(text, validate=validate)
        if spec.source_name == "<specification>":
            spec = replace(spec, source_name=path.name)
        return spec
    return parse_spec_file(path)


def _command_spec(args: argparse.Namespace) -> int:
    from repro.rtl.interchange import spec_to_json_text
    from repro.rtl.writer import spec_to_text

    if args.spec_command == "export":
        spec = _load_spec_any_format(args.spec)
        rendered = (
            spec_to_text(spec) if args.text
            else spec_to_json_text(spec) + "\n"
        )
        if args.output is None:
            print(rendered, end="")
        else:
            args.output.write_text(rendered, encoding="utf-8")
            print(f"wrote {args.output}")
        return 0

    # validate: parse leniently, then report every problem at once
    from repro.rtl.validate import validate as validate_spec

    spec = _load_spec_any_format(args.spec, validate=False)
    report = validate_spec(spec, strict=args.strict)
    for problem in report.errors:
        print(f"error: {problem}", file=sys.stderr)
    for warning in report.warnings:
        print(f"warning: {warning}")
    if not report.ok:
        return 1
    print(f"{args.spec}: ok ({len(spec)} components)")
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import GeneratorConfig, run_fuzz_session

    executors = tuple(
        name for name in args.executors.split(",") if name
    )
    unknown = [name for name in executors if name not in EXECUTOR_NAMES]
    if unknown:
        print(f"error: unknown executor(s) {', '.join(unknown)} "
              f"(choose from {', '.join(EXECUTOR_NAMES)})", file=sys.stderr)
        return 2
    report = run_fuzz_session(
        args.seed, args.count,
        config=GeneratorConfig(max_components=args.max_components),
        executors=executors,
        shrink=args.shrink,
        corpus_dir=args.corpus_dir,
        log=print,
    )
    print(report.describe())
    return 0 if report.ok else 1


_COMMANDS = {
    "compile": _command_compile,
    "run": _command_run,
    "machines": _command_machines,
    "demo": _command_demo,
    "netlist": _command_netlist,
    "serve-batch": _command_serve_batch,
    "serve": _command_serve,
    "fleet": _command_fleet,
    "cache": _command_cache,
    "spec": _command_spec,
    "fuzz": _command_fuzz,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except AsimError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
