"""Exception hierarchy for the ASIM II reproduction.

The original ASIM II compiler reports a small family of errors while reading a
specification (malformed numbers, undefined macros, circular dependencies,
missing components) and a few more at simulation time (selector index out of
range, memory address out of range).  This module defines one exception class
per error condition so that callers can react to specific failures, while
``AsimError`` remains a convenient catch-all base class.
"""

from __future__ import annotations


class AsimError(Exception):
    """Base class for every error raised by the repro package."""


# ---------------------------------------------------------------------------
# Specification / parse time errors
# ---------------------------------------------------------------------------


class SpecificationError(AsimError):
    """A specification could not be parsed or is semantically invalid."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MalformedNumberError(SpecificationError):
    """A numeric literal could not be parsed (paper: 'Malformed number')."""


class MalformedExpressionError(SpecificationError):
    """An expression field is not a number, bit string or component ref."""


class UndefinedMacroError(SpecificationError):
    """A macro reference names a macro that was never defined."""


class MacroRedefinitionError(SpecificationError):
    """A macro name was defined twice."""


class InvalidNameError(SpecificationError):
    """A component name contains characters other than letters and digits."""


class MissingCommentError(SpecificationError):
    """The first line of a specification must be a ``#`` comment line."""


class UnknownComponentError(SpecificationError):
    """An expression references a component that is not defined."""


class DuplicateComponentError(SpecificationError):
    """Two components were defined with the same name."""


class ExpressionWidthError(SpecificationError):
    """A concatenation requires more than the 31-bit machine word."""


class CircularDependencyError(SpecificationError):
    """ALU/selector components form a combinational cycle."""

    def __init__(self, names: list[str]) -> None:
        self.names = list(names)
        super().__init__(
            "circular dependency involving " + " and/or ".join(self.names)
        )


class ValidationError(SpecificationError):
    """Aggregate error for a specification that failed validation."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = list(problems)
        super().__init__("; ".join(problems))


class SpecFormatError(SpecificationError):
    """A JSON specification document that does not follow the interchange
    schema (:mod:`repro.rtl.interchange`).

    ``path`` locates the offending node in the document using JavaScript-ish
    syntax (``components[3].left[0].width``), so a client uploading a machine
    over the wire gets a pointer rather than prose.
    """

    def __init__(self, message: str, path: str = "$") -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


# ---------------------------------------------------------------------------
# Simulation (run) time errors
# ---------------------------------------------------------------------------


class SimulationError(AsimError):
    """Base class for errors raised while a simulation is running."""

    def __init__(self, message: str, cycle: int | None = None) -> None:
        self.cycle = cycle
        if cycle is not None:
            message = f"cycle {cycle}: {message}"
        super().__init__(message)


class SelectorRangeError(SimulationError):
    """A selector index exceeded the number of cases (paper: runtime error)."""


class MemoryRangeError(SimulationError):
    """A memory address fell outside the declared 0-based range."""


class InvalidAluFunctionError(SimulationError):
    """An ALU function code outside 0..13 was requested."""


class InvalidMemoryOperationError(SimulationError):
    """A memory operation code is not a valid combination of operation bits."""


class InputExhaustedError(SimulationError):
    """A memory-mapped input was requested but no input data remains."""


class CompilationError(AsimError):
    """Generated simulator code failed to compile or execute."""


class BackendError(AsimError):
    """An unknown or misconfigured simulation backend was requested."""


class AssemblyError(AsimError):
    """A program for one of the bundled machines failed to assemble."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class FaultConfigurationError(AsimError):
    """A fault-injection plan references unknown components or bits."""


class SynthesisError(AsimError):
    """The hardware construction pass could not map a component to parts."""


class ServingError(AsimError):
    """The batch/parallel serving layer was misused (closed pool, spec
    mismatch between a batch request and the pool it was submitted to)."""


class DeadlineExceededError(SimulationError, TimeoutError):
    """A run exceeded its ``timeout_seconds`` deadline.

    Raised cooperatively by the instrumentation layer between component
    evaluations (serial/thread executors, and inside process-pool
    workers), or by the process executor's wall-clock backstop when a
    worker stops responding entirely.  Inherits :class:`TimeoutError` so
    generic ``except TimeoutError`` handling works, and
    :class:`SimulationError` so it is reported per item like any other
    run failure — a timed-out run never takes its batch down.
    """


class WorkerCrashError(ServingError):
    """A request was quarantined after repeatedly killing worker processes.

    The process executor respawns a crashed pool and retries the lost
    requests; a request on whose account workers died twice is poisoned
    and reported with this error instead of being retried forever (or
    failing the whole batch)."""
