"""Pascal code generation (fidelity backend).

The original ASIM II emits a Pascal program (Appendix E of the paper shows
the full output for the stack machine).  This module reproduces that output
format — ``ljb``-prefixed variables, the ``land``/``dologic``/``sinput``/
``soutput`` runtime, an ``initvalues`` procedure and the cycle loop with
``case`` dispatch — so that the code-generation examples of Figures 4.1,
4.2 and 4.3 can be regenerated and inspected.

The produced Pascal is *not* executed anywhere in this repository (no Pascal
compiler is assumed); the executable path is the Python generator in
:mod:`repro.compiler.codegen_python`.
"""

from __future__ import annotations

from repro.compiler.emitter import CodeWriter
from repro.compiler.optimizer import (
    CodegenOptions,
    constant_alu_function,
    constant_memory_operation,
    memory_may_trace_reads,
    memory_may_trace_writes,
)
from repro.rtl.alu_ops import (
    FN_EQ,
    FN_LT,
    function_info,
)
from repro.rtl.bits import WORD_MASK, mask_for_width
from repro.rtl.components import Alu, Memory, Selector
from repro.rtl.dependency import sort_combinational
from repro.rtl.expressions import (
    BitStringField,
    ComponentRef,
    ConstantField,
    Expression,
)
from repro.rtl.memory_ops import should_trace_read, should_trace_write
from repro.rtl.spec import Specification


class PascalCodeGenerator:
    """Generates a Pascal simulator program in the Appendix E style."""

    def __init__(
        self, spec: Specification, options: CodegenOptions | None = None
    ) -> None:
        self.spec = spec
        self.options = options or CodegenOptions()
        self._combinational = sort_combinational(spec)
        self._memories = spec.memories()
        self._combinational_names = {c.name for c in self._combinational}

    # -- expression rendering -----------------------------------------------------

    def _ref(self, name: str) -> str:
        if name in self._combinational_names:
            return f"ljb{name}"
        return f"temp{name}"

    def _field_pascal(self, field, offset: int) -> str:
        """Render one expression field shifted up by *offset* bits."""
        scale = 1 << offset
        if isinstance(field, (ConstantField, BitStringField)):
            value = field.evaluate(lambda name: 0) * scale
            return str(value)
        assert isinstance(field, ComponentRef)
        ref = self._ref(field.name)
        if field.low is None:
            rendered = ref
        else:
            high = field.high if field.high is not None else field.low
            width = high - field.low + 1
            bits_mask = mask_for_width(width) << field.low
            rendered = f"land({ref}, {bits_mask})"
            if field.low:
                rendered = f"{rendered} div {1 << field.low}"
        if scale != 1:
            rendered = f"{rendered} * {scale}"
        return rendered

    def pascal_expression(self, expression: Expression) -> str:
        """Render an expression as Pascal source text."""
        if expression.is_constant:
            return str(expression.constant_value())
        parts: list[str] = []
        offset = 0
        for field in reversed(expression.fields):
            parts.append(self._field_pascal(field, offset))
            width = field.width
            offset = 31 if width is None else offset + width
        return " + ".join(reversed(parts))

    # -- top level -------------------------------------------------------------------

    def generate(self) -> str:
        writer = CodeWriter(indent_unit="  ")
        writer.line("program simulator (input, output);")
        writer.line("{" + self.spec.header_comment + "}")
        self._emit_variables(writer)
        self._emit_land(writer)
        self._emit_initvalues(writer)
        self._emit_dologic(writer)
        self._emit_io_procedures(writer)
        self._emit_main(writer)
        return writer.render()

    # -- declarations -------------------------------------------------------------------

    def _emit_variables(self, writer: CodeWriter) -> None:
        names = [f"ljb{c.name}" for c in self._combinational]
        for memory in self._memories:
            names.extend(
                [
                    f"temp{memory.name}",
                    f"adr{memory.name}",
                    f"data{memory.name}",
                    f"opn{memory.name}",
                ]
            )
        writer.line("var " + ", ".join(names) + ": integer;")
        writer.line("  cycles, cyclecount: integer;")
        for memory in self._memories:
            writer.line(
                f"  ljb{memory.name}: array[0..{memory.size - 1}] of integer;"
            )
        writer.blank()

    def _emit_land(self, writer: CodeWriter) -> None:
        writer.lines(
            [
                "function land (a, b: integer): integer;",
                "type bitnos = 0..31;",
                "  bigset = set of bitnos;",
                "var intset: record case boolean of",
                "  false: (i, j: integer);",
                "  true: (x, y: bigset)",
                "end;",
                "begin",
                "  with intset do begin",
                "    i := a;",
                "    j := b;",
                "    x := x * y;",
                "    land := i",
                "  end",
                "end {land};",
                "",
            ]
        )

    def _emit_initvalues(self, writer: CodeWriter) -> None:
        writer.line("procedure initvalues;")
        writer.line("var i: integer;")
        writer.line("begin")
        with CodeWriter._Block(writer):
            for memory in self._memories:
                if memory.has_initial_values:
                    for index, value in enumerate(memory.initial_values):
                        writer.line(f"ljb{memory.name}[{index}] := {value};")
                else:
                    writer.line(f"for i := 0 to {memory.size - 1} do")
                    writer.line(f"  ljb{memory.name}[i] := 0;")
                writer.line(f"temp{memory.name} := {memory.initial_output};")
        writer.line("end; {initvalues}")
        writer.blank()

    def _emit_dologic(self, writer: CodeWriter) -> None:
        writer.lines(
            [
                "function dologic (funct, left, right: integer): integer;",
                f"const mask = {WORD_MASK};",
                "var value: integer;",
                "begin",
                "  value := 0;",
                "  case funct of",
                "  0 : value := 0;",
                "  1 : value := right;",
                "  2 : value := left;",
                "  3 : value := mask - left;",
                "  4 : value := left + right;",
                "  5 : value := left - right;",
                "  6 : while (right > 0) and (left <> 0) do begin",
                "        left := land(left + left, mask);",
                "        value := left;",
                "        right := right - 1;",
                "      end;",
                "  7 : value := left * right;",
                "  8 : value := land(left, right);",
                "  9 : value := left + right - land(left, right);",
                "  10: value := left + right - land(left, right) * 2;",
                "  11: value := 0;",
                "  12: if left = right then value := 1;",
                "  13: if left < right then value := 1",
                "  end; {case}",
                "  dologic := value;",
                "end; {dologic}",
                "",
            ]
        )

    def _emit_io_procedures(self, writer: CodeWriter) -> None:
        writer.lines(
            [
                "function sinput (address: integer): integer;",
                "var datum: char;",
                "  data: integer;",
                "begin",
                "  if address = 0 then begin",
                "    read(input, datum);",
                "    sinput := ord(datum)",
                "  end",
                "  else if address = 1 then begin",
                "    read(input, data);",
                "    sinput := data",
                "  end",
                "  else begin",
                "    write(output, 'Input from address ', address:1, ': ');",
                "    readln(input, data);",
                "    sinput := data;",
                "  end",
                "end; {sinput}",
                "",
                "procedure soutput (address, data: integer);",
                "begin",
                "  if address = 0 then writeln(output, chr(data))",
                "  else if address = 1 then writeln(output, data)",
                "  else writeln(output, 'Output to address ', address:1,"
                " ': ', data:1)",
                "end; {soutput}",
                "",
            ]
        )

    # -- main program ----------------------------------------------------------------------

    def _emit_alu(self, writer: CodeWriter, alu: Alu) -> None:
        left = self.pascal_expression(alu.left)
        right = self.pascal_expression(alu.right)
        constant = constant_alu_function(alu)
        target = f"ljb{alu.name}"
        if constant is None or not self.options.inline_constant_functions:
            funct = self.pascal_expression(alu.funct)
            writer.line(f"{target} := dologic({funct}, {left}, {right});")
            return
        if constant in (FN_EQ, FN_LT):
            comparison = "=" if constant == FN_EQ else "<"
            writer.line(f"if {left} {comparison} {right} then {target} := 1")
            writer.line(f"  else {target} := 0;")
            return
        info = function_info(constant)
        writer.line(f"{target} := {info.pascal_template.format(l=left, r=right)};")

    def _emit_selector(self, writer: CodeWriter, selector: Selector) -> None:
        writer.line(f"case {self.pascal_expression(selector.select)} of")
        for index, case in enumerate(selector.cases):
            writer.line(
                f"  {index} : ljb{selector.name} := "
                f"{self.pascal_expression(case)};"
            )
        writer.line("end;")

    def _emit_memory_latch(self, writer: CodeWriter, memory: Memory) -> None:
        writer.line(
            f"adr{memory.name} := {self.pascal_expression(memory.address)};"
        )
        writer.line(
            f"data{memory.name} := {self.pascal_expression(memory.data)};"
        )
        writer.line(
            f"opn{memory.name} := {self.pascal_expression(memory.operation)};"
        )

    def _memory_case_body(self, memory: Memory, operation: int) -> list[str]:
        name = memory.name
        op = operation & 3
        if op == 0:
            return [f"temp{name} := ljb{name}[adr{name}];"]
        if op == 1:
            return [
                "begin",
                f"  temp{name} := data{name};",
                f"  ljb{name}[adr{name}] := data{name}",
                "end;",
            ]
        if op == 2:
            return [f"temp{name} := sinput(adr{name});"]
        return [
            "begin",
            f"  temp{name} := data{name};",
            f"  soutput(adr{name}, data{name})",
            "end;",
        ]

    def _emit_memory_update(self, writer: CodeWriter, memory: Memory) -> None:
        name = memory.name
        constant = (
            constant_memory_operation(memory)
            if self.options.specialize_constant_memory_ops
            else None
        )
        if constant is not None:
            writer.lines(self._memory_case_body(memory, constant))
        else:
            writer.line(f"case land(opn{name}, 3) of")
            for op in range(4):
                body = self._memory_case_body(memory, op)
                writer.line(f"  {op}: {body[0]}")
                for extra in body[1:]:
                    writer.line(f"     {extra}")
            writer.line("end; {case}")
        self._emit_memory_trace(writer, memory, constant)

    def _emit_memory_trace(
        self, writer: CodeWriter, memory: Memory, constant: int | None
    ) -> None:
        if not self.options.emit_access_trace:
            return
        name = memory.name
        write_line = (
            f"writeln('Write to {name} at ', adr{name}:1, ': ', temp{name}:1);"
        )
        read_line = (
            f"writeln('Read from {name} at ', adr{name}:1, ': ', temp{name}:1);"
        )
        if constant is not None:
            if should_trace_write(constant):
                writer.line(write_line)
            if should_trace_read(constant):
                writer.line(read_line)
            return
        if memory_may_trace_writes(memory):
            writer.line(f"if land(opn{name}, 5) = 5 then")
            writer.line(f"  {write_line}")
        if memory_may_trace_reads(memory):
            writer.line(f"if land(opn{name}, 9) = 8 then")
            writer.line(f"  {read_line}")

    def _emit_main(self, writer: CodeWriter) -> None:
        writer.line("begin")
        with CodeWriter._Block(writer):
            writer.line("initvalues;")
            writer.line(f"cycles := {self.spec.cycles or 0};")
            writer.line("if cycles = 0 then begin")
            writer.line("  writeln('Number of cycles to trace');")
            writer.line("  read(cycles);")
            writer.line("end;")
            writer.line("cyclecount := 0;")
            writer.line("while cyclecount <= cycles do begin")
            with CodeWriter._Block(writer):
                for component in self._combinational:
                    if isinstance(component, Alu):
                        self._emit_alu(writer, component)
                    else:
                        assert isinstance(component, Selector)
                        self._emit_selector(writer, component)
                self._emit_trace_statements(writer)
                for memory in self._memories:
                    self._emit_memory_latch(writer, memory)
                for memory in self._memories:
                    self._emit_memory_update(writer, memory)
                writer.line("cyclecount := cyclecount + 1;")
            writer.line("end; {while}")
        writer.line("end.")

    def _emit_trace_statements(self, writer: CodeWriter) -> None:
        traced = self.spec.traced_names
        if not traced or not self.options.emit_cycle_trace:
            return
        writer.line("write('Cycle ', cyclecount:3);")
        for name in traced:
            writer.line(f"write(' {name}= ', {self._ref(name)}:1);")
        writer.line("writeln;")


def generate_pascal(
    spec: Specification, options: CodegenOptions | None = None
) -> str:
    """Generate the Pascal simulator program text for *spec*."""
    return PascalCodeGenerator(spec, options).generate()
