"""The ASIM II-style compiled backend.

``prepare`` corresponds to the paper's "generate code" plus "Pascal compile"
phases: the specification is translated to a Python module
(:mod:`repro.compiler.codegen_python`) which is then byte-compiled with
:func:`compile`/``exec``.  ``run`` executes the compiled ``simulate``
function — the phase the paper reports as roughly 20x faster than the ASIM
interpreter (Figure 5.1).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable

from repro.compiler.codegen_python import generate_python
from repro.compiler.optimizer import CodegenOptions
from repro.core.backend import (
    Backend,
    PreparedSimulation,
    ValueOverride,
    resolve_cycles,
    resolve_trace,
)
from repro.core.iosystem import IOSystem, coerce_io
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog, TraceOptions
from repro.errors import BackendError, CompilationError
from repro.rtl.spec import Specification


class CompiledSimulation(PreparedSimulation):
    """A specification compiled into an executable Python ``simulate`` function."""

    def __init__(
        self,
        spec: Specification,
        source: str,
        simulate: Callable,
        generate_seconds: float,
        compile_seconds: float,
    ) -> None:
        super().__init__(
            spec,
            backend_name="compiled",
            prepare_seconds=generate_seconds + compile_seconds,
        )
        #: generated Python module source (the analogue of the .p file)
        self.source = source
        #: seconds spent generating source (paper: "Generate code")
        self.generate_seconds = generate_seconds
        #: seconds spent byte-compiling it (paper: "Pascal Compile")
        self.compile_seconds = compile_seconds
        self._simulate = simulate

    def write_source(self, path: str | Path) -> Path:
        """Write the generated module to disk (like the paper's ``simulator.p``)."""
        path = Path(path)
        path.write_text(self.source)
        return path

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        if override is not None:
            raise BackendError(
                "the compiled backend does not support per-cycle value overrides; "
                "use the interpreter backend or a specification-level fault "
                "(repro.analysis.faults)"
            )
        spec = self.spec
        cycle_count = resolve_cycles(spec, cycles)
        options = resolve_trace(spec, trace)
        io_system = coerce_io(io)
        tracing = options.trace_cycles or options.trace_memory_accesses
        trace_log = TraceLog(enabled=tracing)
        stats = SimulationStats() if collect_stats else None

        start = time.perf_counter()
        try:
            raw = self._simulate(
                cycle_count,
                io_system,
                trace_log if tracing else None,
                stats,
            )
        except (ZeroDivisionError, IndexError, KeyError) as exc:
            raise CompilationError(
                f"generated simulator for {spec.source_name} failed: {exc!r}"
            ) from exc
        run_seconds = time.perf_counter() - start

        return SimulationResult(
            backend=self.backend_name,
            cycles_run=cycle_count,
            final_values=dict(raw["values"]),
            memory_contents={name: list(cells) for name, cells in raw["memories"].items()},
            outputs=list(io_system.outputs),
            trace=trace_log,
            stats=stats if stats is not None else SimulationStats(),
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
        )


class CompiledBackend(Backend):
    """Backend factory for the ASIM II-style compiler."""

    name = "compiled"

    def __init__(self, options: CodegenOptions | None = None) -> None:
        self.options = options or CodegenOptions()

    def prepare(self, spec: Specification) -> CompiledSimulation:
        generate_start = time.perf_counter()
        source = generate_python(spec, self.options)
        generate_seconds = time.perf_counter() - generate_start

        compile_start = time.perf_counter()
        module_name = f"<asim2 generated: {spec.source_name}>"
        namespace: dict = {"__name__": "repro_generated_simulator"}
        try:
            code = compile(source, module_name, "exec")
            exec(code, namespace)  # noqa: S102 - executing our own generated code
            simulate = namespace["simulate"]
        except SyntaxError as exc:  # pragma: no cover - generator bug guard
            raise CompilationError(
                f"generated code for {spec.source_name} failed to compile: {exc}"
            ) from exc
        compile_seconds = time.perf_counter() - compile_start

        return CompiledSimulation(
            spec=spec,
            source=source,
            simulate=simulate,
            generate_seconds=generate_seconds,
            compile_seconds=compile_seconds,
        )


def compile_spec(
    spec: Specification, options: CodegenOptions | None = None
) -> CompiledSimulation:
    """Convenience: compile *spec* with the given code-generation options."""
    return CompiledBackend(options).prepare(spec)
