"""The ASIM II-style compiled backend.

``prepare`` corresponds to the paper's "generate code" plus "Pascal compile"
phases: the shared lowered program (:mod:`repro.lowering`) is translated to
a Python module (:mod:`repro.compiler.codegen_python`) which is then
byte-compiled with :func:`compile`/``exec``.  ``run`` executes a generated
``simulate`` function — the phase the paper reports as roughly 20x faster
than the ASIM interpreter (Figure 5.1).

The generated module carries three entry points so that the fast path stays
fast while instrumented runs share the exact hook semantics of the other
backends (:mod:`repro.core.instrument`):

* ``simulate`` — the paper's straight-line program, no hook call sites;
  used when a run collects nothing (no stats, no traces, no ``override``);
* ``simulate_instrumented`` — the same schedule with instrumentation call
  sites after every component evaluation; gives the compiled backend full
  per-ALU/selector/memory statistics, run-time trace-name selection and
  per-cycle ``override`` support;
* ``simulate_full`` — hook call sites over the *original* (pre-specopt)
  schedule, generated only when spec-level optimization changed the
  specification; ``override`` runs execute it so the hook sees every
  original component.

Two optional performance layers wrap the paper's pipeline:

* the prepare cache (:mod:`repro.compiler.cache`, on by default) stores the
  lowered program; the generated source and byte-compiled code object are
  memoized on that program, so a repeated ``prepare`` of the same machine
  skips lowering and both generation phases — ``generate_seconds`` and
  ``compile_seconds`` then report 0.0 and ``cache_hit`` is set;
* spec-level optimization (:mod:`repro.compiler.specopt`, opt-in via
  ``specopt=True``) shrinks the specification inside the lowering pipeline
  before code generation.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable

from repro.compiler.cache import (
    DiskCache,
    PrepareCache,
    artifact_key,
    resolve_cache,
    resolve_disk,
    spec_fingerprint,
)
from repro.compiler.codegen_python import generate_program_python
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.specopt import SpecOptPasses, SpecOptReport, resolve_passes
from repro.core.backend import (
    Backend,
    PreparedSimulation,
    ValueOverride,
    resolve_cycles,
)
from repro.core.instrument import plan_run
from repro.core.iosystem import IOSystem
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog, TraceOptions
from repro.errors import CompilationError
from repro.lowering.program import CycleProgram, lower_cached
from repro.rtl.spec import Specification


class CompiledSimulation(PreparedSimulation):
    """A lowered program compiled into executable ``simulate`` functions."""

    def __init__(
        self,
        spec: Specification,
        program: CycleProgram,
        source: str,
        simulate: Callable,
        simulate_instrumented: Callable,
        simulate_full: Callable | None,
        generate_seconds: float,
        compile_seconds: float,
        cache_hit: bool = False,
        simulate_lanes: Callable | None = None,
    ) -> None:
        super().__init__(
            spec,
            backend_name="compiled",
            prepare_seconds=generate_seconds + compile_seconds,
        )
        #: the shared lowered program (cache-backed, backend-neutral)
        self.program = program
        #: generated Python module source (the analogue of the .p file)
        self.source = source
        #: seconds spent generating source (paper: "Generate code");
        #: 0.0 when the prepare cache supplied the artifact
        self.generate_seconds = generate_seconds
        #: seconds spent byte-compiling it (paper: "Pascal Compile");
        #: 0.0 when the prepare cache supplied the artifact
        self.compile_seconds = compile_seconds
        #: what the spec-level pipeline did, or ``None`` if it was disabled
        self.optimization: SpecOptReport | None = program.optimization
        #: whether program + generated module came out of the prepare cache
        self.cache_hit = cache_hit
        self._simulate = simulate
        self._simulate_instrumented = simulate_instrumented
        self._simulate_full = simulate_full
        self._simulate_lanes = simulate_lanes

    def write_source(self, path: str | Path) -> Path:
        """Write the generated module to disk (like the paper's ``simulator.p``)."""
        path = Path(path)
        path.write_text(self.source)
        return path

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        plan = plan_run(self.program, cycles, io, trace, collect_stats,
                        override)
        start = time.perf_counter()
        if plan.inst is None:
            try:
                raw = self._simulate(plan.cycle_count, plan.io_system,
                                     None, None)
            except (ZeroDivisionError, IndexError, KeyError) as exc:
                raise CompilationError(
                    f"generated simulator for {self.spec.source_name} "
                    f"failed: {exc!r}"
                ) from exc
        elif plan.uses_full:
            # instrumented paths run user hooks (override), whose exceptions
            # must propagate unwrapped, exactly as on the other backends
            raw = self._simulate_full(plan.cycle_count, plan.io_system,
                                      plan.inst)
        else:
            raw = self._simulate_instrumented(
                plan.cycle_count, plan.io_system, plan.inst
            )
        run_seconds = time.perf_counter() - start

        plan.finish()
        final_values = dict(raw["values"])
        if not plan.uses_full:
            self.program.restore_final_values(final_values, plan.cycle_count)
        return SimulationResult(
            backend=self.backend_name,
            cycles_run=plan.cycle_count,
            final_values=final_values,
            memory_contents={
                name: list(cells) for name, cells in raw["memories"].items()
            },
            outputs=list(plan.io_system.outputs),
            trace=plan.trace_log,
            stats=plan.stats if plan.stats is not None else SimulationStats(),
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
        )

    def run_lanes(
        self,
        cycles: int | None = None,
        ios: Iterable[IOSystem] = (),
        collect_stats: bool = True,
    ) -> list:
        """Lane groups run the generated ``simulate_lanes`` entry point.

        Statistics-collecting groups need per-lane hook call sites, which
        the generated lane loop deliberately omits — they route through
        the generic lane evaluator over the shared lowered program
        instead (still one schedule walk for the whole group).
        """
        if collect_stats or self._simulate_lanes is None:
            return super().run_lanes(
                cycles=cycles, ios=ios, collect_stats=collect_stats
            )
        from repro.lowering.lanes import LaneOutcome

        ios = list(ios)
        if not ios:
            return []
        cycle_count = resolve_cycles(self.spec, cycles)
        start = time.perf_counter()
        try:
            raw = self._simulate_lanes(cycle_count, ios)
        except (ZeroDivisionError, IndexError, KeyError) as exc:
            raise CompilationError(
                f"generated lane simulator for {self.spec.source_name} "
                f"failed: {exc!r}"
            ) from exc
        run_seconds = (time.perf_counter() - start) / len(ios)

        values, memories, errors = raw["values"], raw["memories"], raw["errors"]
        restore = (
            self.program.restore_final_values
            if self.program.restore_items else None
        )
        # the lane fast path collects neither traces nor statistics, so
        # every result in the group shares one disabled trace log and one
        # empty statistics object — placeholders, not per-run accumulators
        shared_trace = TraceLog(enabled=False)
        shared_stats = SimulationStats()
        outcomes: list = []
        for lane, io in enumerate(ios):
            error = errors[lane]
            if error is not None:
                outcomes.append(LaneOutcome(result=None, error=error))
                continue
            # the generated module builds fresh per-lane dicts and owns
            # its per-lane cell lists, so both are adopted without copies
            final_values = values[lane]
            if restore is not None:
                restore(final_values, cycle_count)
            outcomes.append(LaneOutcome(
                result=SimulationResult(
                    backend=self.backend_name,
                    cycles_run=cycle_count,
                    final_values=final_values,
                    memory_contents=memories[lane],
                    outputs=list(io.outputs),
                    trace=shared_trace,
                    stats=shared_stats,
                    prepare_seconds=self.prepare_seconds,
                    run_seconds=run_seconds,
                ),
                error=None,
            ))
        return outcomes


def _generate_and_compile(
    program: CycleProgram, options: CodegenOptions
) -> tuple[str, object, float, float]:
    """The paper's two timed preparation phases over a lowered program."""
    generate_start = time.perf_counter()
    source = generate_program_python(program, options)
    generate_seconds = time.perf_counter() - generate_start

    compile_start = time.perf_counter()
    module_name = f"<asim2 generated: {program.spec.source_name}>"
    try:
        code = compile(source, module_name, "exec")
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise CompilationError(
            f"generated code for {program.spec.source_name} failed to "
            f"compile: {exc}"
        ) from exc
    compile_seconds = time.perf_counter() - compile_start
    return source, code, generate_seconds, compile_seconds


class CompiledBackend(Backend):
    """Backend factory for the ASIM II-style compiler.

    ``disk`` enables the persistent artifact cache
    (:class:`~repro.compiler.cache.DiskCache`): the generated module
    source is stored on disk keyed on (specification fingerprint, codegen
    options), so a fresh process preparing a known machine skips code
    generation and only byte-compiles — the cold-start path the serving
    layer's process-pool executor relies on.  The lowered IR is disk-
    cached too, through :func:`~repro.lowering.program.lower_cached`.
    """

    name = "compiled"

    def __init__(
        self,
        options: CodegenOptions | None = None,
        specopt: bool | SpecOptPasses = False,
        cache: PrepareCache | bool | None = True,
        disk: "DiskCache | str | bool | None" = None,
    ) -> None:
        self.options = options or CodegenOptions()
        self.passes = resolve_passes(specopt)
        self.cache = resolve_cache(cache)
        self.disk = resolve_disk(disk)

    def _source_artifact(
        self, program: CycleProgram
    ) -> tuple[str, object, float, float]:
        """Generate-and-compile, consulting the disk cache for the source.

        The key covers everything the generated module depends on: the
        specopt pass configuration (it decides the step lists and whether
        ``simulate_full`` exists) and the codegen options.
        """
        if self.disk is not None:
            fingerprint = spec_fingerprint(program.spec)
            key = artifact_key(self.passes, self.options)
            source = self.disk.load_source(fingerprint, key)
            if source is not None:
                compile_start = time.perf_counter()
                module_name = f"<asim2 cached: {program.spec.source_name}>"
                try:
                    code = compile(source, module_name, "exec")
                except (SyntaxError, ValueError):
                    # a damaged cache entry (bad syntax, null bytes) must
                    # fall back to a clean build
                    pass
                else:
                    return source, code, 0.0, time.perf_counter() - compile_start
        artifact = _generate_and_compile(program, self.options)
        if self.disk is not None:
            self.disk.store_source(fingerprint, key, artifact[0])
        return artifact

    def prepare(self, spec: Specification) -> CompiledSimulation:
        program, program_hit = lower_cached(
            spec, self.passes, self.cache, self.disk
        )
        artifact, artifact_hit = program.artifact(
            ("compiled", self.options),
            lambda: self._source_artifact(program),
        )
        source, code, generate_seconds, compile_seconds = artifact
        hit = program_hit and artifact_hit
        if hit:
            generate_seconds = compile_seconds = 0.0

        namespace: dict = {"__name__": "repro_generated_simulator"}
        try:
            exec(code, namespace)  # noqa: S102 - executing our own generated code
            simulate = namespace["simulate"]
            simulate_instrumented = namespace["simulate_instrumented"]
            simulate_full = namespace.get("simulate_full")
            # absent from sources cached by older versions; run_lanes then
            # falls back to the generic lane evaluator
            simulate_lanes = namespace.get("simulate_lanes")
        except Exception as exc:  # pragma: no cover - generator bug guard
            raise CompilationError(
                f"generated code for {spec.source_name} failed to load: {exc}"
            ) from exc

        return CompiledSimulation(
            spec=spec,
            program=program,
            source=source,
            simulate=simulate,
            simulate_instrumented=simulate_instrumented,
            simulate_full=simulate_full,
            generate_seconds=generate_seconds,
            compile_seconds=compile_seconds,
            cache_hit=hit,
            simulate_lanes=simulate_lanes,
        )


def compile_spec(
    spec: Specification, options: CodegenOptions | None = None
) -> CompiledSimulation:
    """Convenience: compile *spec* with the given code-generation options."""
    return CompiledBackend(options).prepare(spec)
