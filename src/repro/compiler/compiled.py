"""The ASIM II-style compiled backend.

``prepare`` corresponds to the paper's "generate code" plus "Pascal compile"
phases: the specification is translated to a Python module
(:mod:`repro.compiler.codegen_python`) which is then byte-compiled with
:func:`compile`/``exec``.  ``run`` executes the compiled ``simulate``
function — the phase the paper reports as roughly 20x faster than the ASIM
interpreter (Figure 5.1).

Two optional performance layers wrap the paper's pipeline:

* the prepare cache (:mod:`repro.compiler.cache`, on by default) keys the
  generated source and byte-compiled code object on a stable hash of
  (specification, options), so repeated ``prepare`` of the same machine
  skips both generation phases — ``generate_seconds`` and
  ``compile_seconds`` then report 0.0 and ``cache_hit`` is set;
* spec-level optimization (:mod:`repro.compiler.specopt`, opt-in via
  ``specopt=True``) shrinks the specification before code generation.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable

from repro.compiler.cache import PrepareCache, resolve_cache
from repro.compiler.codegen_python import generate_python
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.specopt import (
    SpecOptPasses,
    SpecOptReport,
    optimize_spec,
    resolve_passes,
    restore_observables,
)
from repro.core.backend import (
    Backend,
    PreparedSimulation,
    ValueOverride,
    resolve_cycles,
    resolve_trace,
)
from repro.core.iosystem import IOSystem, coerce_io
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog, TraceOptions
from repro.errors import BackendError, CompilationError
from repro.rtl.spec import Specification


class CompiledSimulation(PreparedSimulation):
    """A specification compiled into an executable Python ``simulate`` function."""

    def __init__(
        self,
        spec: Specification,
        source: str,
        simulate: Callable,
        generate_seconds: float,
        compile_seconds: float,
        optimization: SpecOptReport | None = None,
        cache_hit: bool = False,
    ) -> None:
        super().__init__(
            spec,
            backend_name="compiled",
            prepare_seconds=generate_seconds + compile_seconds,
        )
        #: generated Python module source (the analogue of the .p file)
        self.source = source
        #: seconds spent generating source (paper: "Generate code");
        #: 0.0 when the prepare cache supplied the artifact
        self.generate_seconds = generate_seconds
        #: seconds spent byte-compiling it (paper: "Pascal Compile");
        #: 0.0 when the prepare cache supplied the artifact
        self.compile_seconds = compile_seconds
        #: what the spec-level pipeline did, or ``None`` if it was disabled
        self.optimization = optimization
        #: whether source + code object came out of the prepare cache
        self.cache_hit = cache_hit
        self._simulate = simulate

    def write_source(self, path: str | Path) -> Path:
        """Write the generated module to disk (like the paper's ``simulator.p``)."""
        path = Path(path)
        path.write_text(self.source)
        return path

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        if override is not None:
            raise BackendError(
                "the compiled backend does not support per-cycle value overrides; "
                "use the interpreter or threaded backend or a "
                "specification-level fault (repro.analysis.faults)"
            )
        spec = self.spec
        cycle_count = resolve_cycles(spec, cycles)
        options = resolve_trace(spec, trace)
        io_system = coerce_io(io)
        tracing = options.trace_cycles or options.trace_memory_accesses
        trace_log = TraceLog(enabled=tracing)
        stats = SimulationStats() if collect_stats else None

        start = time.perf_counter()
        try:
            raw = self._simulate(
                cycle_count,
                io_system,
                trace_log if tracing else None,
                stats,
            )
        except (ZeroDivisionError, IndexError, KeyError) as exc:
            raise CompilationError(
                f"generated simulator for {spec.source_name} failed: {exc!r}"
            ) from exc
        run_seconds = time.perf_counter() - start

        final_values = dict(raw["values"])
        if self.optimization is not None:
            restore_observables(self.optimization, final_values, cycle_count)
        return SimulationResult(
            backend=self.backend_name,
            cycles_run=cycle_count,
            final_values=final_values,
            memory_contents={name: list(cells) for name, cells in raw["memories"].items()},
            outputs=list(io_system.outputs),
            trace=trace_log,
            stats=stats if stats is not None else SimulationStats(),
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
        )


def _generate_and_compile(
    spec: Specification, options: CodegenOptions, passes: SpecOptPasses
) -> tuple[str, object, float, float, SpecOptReport | None]:
    """The spec-level passes plus the paper's two timed preparation phases."""
    report: SpecOptReport | None = None
    if passes.any_enabled:
        spec, report = optimize_spec(spec, passes, options)

    generate_start = time.perf_counter()
    source = generate_python(spec, options)
    generate_seconds = time.perf_counter() - generate_start

    compile_start = time.perf_counter()
    module_name = f"<asim2 generated: {spec.source_name}>"
    try:
        code = compile(source, module_name, "exec")
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise CompilationError(
            f"generated code for {spec.source_name} failed to compile: {exc}"
        ) from exc
    compile_seconds = time.perf_counter() - compile_start
    return source, code, generate_seconds, compile_seconds, report


class CompiledBackend(Backend):
    """Backend factory for the ASIM II-style compiler."""

    name = "compiled"

    def __init__(
        self,
        options: CodegenOptions | None = None,
        specopt: bool | SpecOptPasses = False,
        cache: PrepareCache | bool | None = True,
    ) -> None:
        self.options = options or CodegenOptions()
        self.passes = resolve_passes(specopt)
        self.cache = resolve_cache(cache)

    def prepare(self, spec: Specification) -> CompiledSimulation:
        if self.cache is not None:
            # specopt runs inside the factory: a hit skips it along with
            # generation and byte-compilation
            key = self.cache.key_for("compiled", spec, self.options, self.passes)
            artifact, hit = self.cache.get_or_create(
                key,
                lambda: _generate_and_compile(spec, self.options, self.passes),
            )
        else:
            artifact = _generate_and_compile(spec, self.options, self.passes)
            hit = False
        source, code, generate_seconds, compile_seconds, report = artifact
        if hit:
            generate_seconds = compile_seconds = 0.0

        namespace: dict = {"__name__": "repro_generated_simulator"}
        try:
            exec(code, namespace)  # noqa: S102 - executing our own generated code
            simulate = namespace["simulate"]
        except Exception as exc:  # pragma: no cover - generator bug guard
            raise CompilationError(
                f"generated code for {spec.source_name} failed to load: {exc}"
            ) from exc

        return CompiledSimulation(
            spec=spec,
            source=source,
            simulate=simulate,
            generate_seconds=generate_seconds,
            compile_seconds=compile_seconds,
            optimization=report,
            cache_hit=hit,
        )


def compile_spec(
    spec: Specification, options: CodegenOptions | None = None
) -> CompiledSimulation:
    """Convenience: compile *spec* with the given code-generation options."""
    return CompiledBackend(options).prepare(spec)
