"""The threaded-code backend: the middle point of the paper's design space.

Figure 5.1 frames two extremes — ASIM interprets the specification tables
every cycle, ASIM II generates and compiles a whole program.  Threaded code
sits between them: ``prepare`` compiles every component into a Python
closure over pre-bound locals (:mod:`repro.interp.closures`) and chains the
closures into one flat per-cycle op list; ``run`` just walks that list.
Preparation is almost as cheap as building the interpreter's tables, while
simulation runs several times faster than interpreting — without the
compiled backend's restrictions: per-cycle value ``override`` hooks, full
statistics and tracing all work exactly as they do on the interpreter.

The backend composes with the other performance layers of this package:

* spec-level optimization (:mod:`repro.compiler.specopt`) shrinks the op
  list before closures are built (on by default, observably lossless);
* the prepare cache (:mod:`repro.compiler.cache`) keys the closure program
  on the specification fingerprint so repeated ``prepare`` calls are free.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.compiler.cache import PrepareCache, resolve_cache
from repro.compiler.specopt import (
    SpecOptPasses,
    SpecOptReport,
    optimize_spec,
    resolve_passes,
    restore_observables,
)
from repro.core.backend import (
    Backend,
    PreparedSimulation,
    ValueOverride,
    resolve_cycles,
    resolve_trace,
)
from repro.core.iosystem import IOSystem, coerce_io
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog, TraceOptions
from repro.errors import UnknownComponentError
from repro.interp.closures import RunContext, ThreadedProgram
from repro.rtl.spec import Specification


class ThreadedSimulation(PreparedSimulation):
    """A specification compiled to a flat list of per-cycle closures."""

    def __init__(
        self,
        spec: Specification,
        program: ThreadedProgram,
        prepare_seconds: float,
        optimization: SpecOptReport | None = None,
        cache_hit: bool = False,
    ) -> None:
        super().__init__(spec, backend_name="threaded",
                         prepare_seconds=prepare_seconds)
        #: the closure program (built from the optimized spec when specopt ran)
        self.program = program
        #: what the spec-level pipeline did, or ``None`` if it was disabled
        self.optimization = optimization
        #: whether this program came out of the prepare cache
        self.cache_hit = cache_hit
        #: unoptimized fallback program, built lazily for override runs
        self._override_program: ThreadedProgram | None = None

    # -- interpreter-exact fidelity ------------------------------------------

    def _program_for(
        self,
        override: ValueOverride | None,
        traced_names: list[str],
    ) -> ThreadedProgram:
        """Choose the program honouring interpreter-exact run semantics.

        An override hook must see (and be able to fault) *every* component
        of the original specification each cycle, and a run-time trace
        request may name components the spec-level passes removed.  In
        either case the run falls back to a program built from the
        unoptimized specification.
        """
        if self.optimization is None or not self.optimization.changed:
            return self.program
        needs_original = override is not None or any(
            name not in self.program.slots for name in traced_names
        )
        if not needs_original:
            return self.program
        if self._override_program is None:
            self._override_program = ThreadedProgram(self.spec)
        return self._override_program

    # -- running -------------------------------------------------------------

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        spec = self.spec
        cycle_count = resolve_cycles(spec, cycles)
        options = resolve_trace(spec, trace)
        io_system = coerce_io(io)
        traced_names = (
            list(options.names) if options.names is not None else spec.traced_names
        )
        program = self._program_for(
            override, traced_names if options.trace_cycles else []
        )
        # names optimized away picked the unoptimized fallback above; a name
        # absent from the original spec fails like the interpreter's lookup
        if options.trace_cycles and cycle_count > 0 and (
            options.limit is None or options.limit > 0
        ):
            for name in traced_names:
                if name not in program.slots:
                    raise UnknownComponentError(f"component <{name}> not found")
        traced_names = [n for n in traced_names if n in program.slots]
        trace_log = TraceLog(
            enabled=options.trace_cycles or options.trace_memory_accesses
        )
        stats = SimulationStats() if collect_stats else None

        ctx = RunContext(
            values=program.initial_values(),
            memory_arrays=program.initial_memory_arrays(),
            cycle_box=[0],
            io=io_system,
            stats=stats,
            override=override,
            trace_log=trace_log,
            trace_accesses=options.trace_memory_accesses,
        )
        ops = program.bind(
            ctx,
            traced_names if options.trace_cycles else None,
            options.limit,
        )

        cycle_box = ctx.cycle_box
        start = time.perf_counter()
        for cycle in range(cycle_count):
            cycle_box[0] = cycle
            for op in ops:
                op()
        run_seconds = time.perf_counter() - start

        if stats is not None:
            stats.cycles += cycle_count
            stats.component_evaluations += cycle_count * (
                len(program.ordered) + len(program.memories)
            )

        final_values = program.visible_values(ctx.values)
        if self.optimization is not None and program is self.program:
            restore_observables(self.optimization, final_values, cycle_count)
        return SimulationResult(
            backend=self.backend_name,
            cycles_run=cycle_count,
            final_values=final_values,
            memory_contents={
                name: list(cells) for name, cells in ctx.memory_arrays.items()
            },
            outputs=list(io_system.outputs),
            trace=trace_log,
            stats=stats if stats is not None else SimulationStats(),
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
        )


class ThreadedBackend(Backend):
    """Backend factory compiling specifications into threaded code."""

    name = "threaded"

    def __init__(
        self,
        specopt: bool | SpecOptPasses = True,
        cache: PrepareCache | bool | None = True,
    ) -> None:
        self.passes = resolve_passes(specopt)
        self.cache = resolve_cache(cache)

    def prepare(self, spec: Specification) -> ThreadedSimulation:
        start = time.perf_counter()

        def build() -> tuple[ThreadedProgram, SpecOptReport | None]:
            if self.passes.any_enabled:
                optimized, report = optimize_spec(spec, self.passes)
                return ThreadedProgram(optimized), report
            return ThreadedProgram(spec), None

        if self.cache is not None:
            key = self.cache.key_for("threaded", spec, self.passes)
            (program, report), hit = self.cache.get_or_create(key, build)
        else:
            (program, report), hit = build(), False
        return ThreadedSimulation(
            spec=spec,
            program=program,
            prepare_seconds=time.perf_counter() - start,
            optimization=report,
            cache_hit=hit,
        )


def thread_spec(
    spec: Specification,
    specopt: bool | SpecOptPasses = True,
) -> ThreadedSimulation:
    """Convenience: compile *spec* into a ready-to-run threaded simulation."""
    return ThreadedBackend(specopt).prepare(spec)
