"""The threaded-code backend: the middle point of the paper's design space.

Figure 5.1 frames two extremes — ASIM interprets the specification tables
every cycle, ASIM II generates and compiles a whole program.  Threaded code
sits between them: ``prepare`` obtains the shared lowered program
(:mod:`repro.lowering`) and binds its step descriptors into Python closures
(:mod:`repro.interp.closures`) chained into one flat per-cycle op list;
``run`` just walks that list.  Preparation is almost as cheap as building
the interpreter's tables, while simulation runs several times faster than
interpreting.

Per-cycle ``override`` hooks, full statistics and tracing all work exactly
as they do on the interpreter, implemented by the shared instrumentation
layer (:mod:`repro.core.instrument`).  When spec-level optimization changed
the specification, an override run binds the lowered program's *full*
(pre-specopt) step list — carried by the same shared
:class:`~repro.lowering.program.CycleProgram`, so nothing is re-derived
from the specification — and run-time trace requests for optimized-away
names resolve through the program's observables map.

The backend composes with the other performance layers of this package:

* spec-level optimization (:mod:`repro.compiler.specopt`) shrinks the op
  list inside the lowering pipeline (on by default, observably lossless);
* the prepare cache (:mod:`repro.compiler.cache`) stores the lowered
  program keyed on the specification fingerprint; the closure plans are
  memoized on the program, so repeated ``prepare`` calls are free.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.compiler.cache import (
    DiskCache,
    PrepareCache,
    resolve_cache,
    resolve_disk,
)
from repro.compiler.specopt import SpecOptPasses, SpecOptReport, resolve_passes
from repro.core.backend import Backend, PreparedSimulation, ValueOverride
from repro.core.instrument import plan_run
from repro.core.iosystem import IOSystem
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceOptions
from repro.interp.closures import RunContext, ThreadedProgram
from repro.lowering.program import CycleProgram, lower_cached
from repro.rtl.spec import Specification


class ThreadedSimulation(PreparedSimulation):
    """A lowered program bound to the threaded-code execution engine."""

    def __init__(
        self,
        spec: Specification,
        program: CycleProgram,
        prepare_seconds: float,
        cache_hit: bool = False,
    ) -> None:
        super().__init__(spec, backend_name="threaded",
                         prepare_seconds=prepare_seconds)
        #: the shared lowered program (cache-backed, backend-neutral)
        self.program = program
        #: what the spec-level pipeline did, or ``None`` if it was disabled
        self.optimization: SpecOptReport | None = program.optimization
        #: whether program and closure plans came out of the prepare cache
        self.cache_hit = cache_hit

    def _plans(self, full: bool) -> ThreadedProgram:
        """The closure plans for one program variant (memoized on the IR)."""
        plans, _ = self.program.artifact(
            ("threaded", full), lambda: ThreadedProgram(self.program, full)
        )
        return plans

    # -- running -------------------------------------------------------------

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        plan = plan_run(self.program, cycles, io, trace, collect_stats,
                        override)
        plans = self._plans(plan.uses_full)
        ctx = RunContext(
            values=self.program.initial_values(),
            memory_arrays=self.program.initial_memory_arrays(),
            cycle_box=[0],
            io=plan.io_system,
            inst=plan.inst,
        )
        ops = plans.bind(ctx)

        cycle_box = ctx.cycle_box
        start = time.perf_counter()
        for cycle in range(plan.cycle_count):
            cycle_box[0] = cycle
            for op in ops:
                op()
        run_seconds = time.perf_counter() - start

        plan.finish()
        final_values = plans.visible_values(ctx.values)
        if not plan.uses_full:
            self.program.restore_final_values(final_values, plan.cycle_count)
        return SimulationResult(
            backend=self.backend_name,
            cycles_run=plan.cycle_count,
            final_values=final_values,
            memory_contents={
                name: list(cells) for name, cells in ctx.memory_arrays.items()
            },
            outputs=list(plan.io_system.outputs),
            trace=plan.trace_log,
            stats=plan.stats if plan.stats is not None else SimulationStats(),
            prepare_seconds=self.prepare_seconds,
            run_seconds=run_seconds,
        )


class ThreadedBackend(Backend):
    """Backend factory compiling specifications into threaded code."""

    name = "threaded"

    def __init__(
        self,
        specopt: bool | SpecOptPasses = True,
        cache: PrepareCache | bool | None = True,
        disk: "DiskCache | str | bool | None" = None,
    ) -> None:
        self.passes = resolve_passes(specopt)
        self.cache = resolve_cache(cache)
        #: persistent IR cache; closure plans themselves cannot live on
        #: disk (they are bound closures), but skipping lowering is the
        #: bulk of this backend's preparation cost
        self.disk = resolve_disk(disk)

    def prepare(self, spec: Specification) -> ThreadedSimulation:
        start = time.perf_counter()
        program, program_hit = lower_cached(
            spec, self.passes, self.cache, self.disk
        )
        _plans, plans_hit = program.artifact(
            ("threaded", False), lambda: ThreadedProgram(program, False)
        )
        return ThreadedSimulation(
            spec=spec,
            program=program,
            prepare_seconds=time.perf_counter() - start,
            cache_hit=program_hit and plans_hit,
        )


def thread_spec(
    spec: Specification,
    specopt: bool | SpecOptPasses = True,
) -> ThreadedSimulation:
    """Convenience: compile *spec* into a ready-to-run threaded simulation."""
    return ThreadedBackend(specopt).prepare(spec)
