"""Runtime support imported by generated Python simulators.

The paper's generated Pascal programs carry a small runtime with them
(``land``, ``dologic``, ``sinput``, ``soutput``).  Generated Python modules
instead import these helpers; they are thin wrappers around the shared
semantics in :mod:`repro.rtl` plus the error constructors the generated
bounds checks call.
"""

from __future__ import annotations

from repro.errors import MemoryRangeError, SelectorRangeError
from repro.rtl.alu_ops import dologic, shift_left
from repro.rtl.bits import WORD_MASK, land

__all__ = [
    "WORD_MASK",
    "dologic",
    "shift_left",
    "land",
    "selector_case_error",
    "memory_range_error",
]


def selector_case_error(name: str, index: int, cases: int, cycle: int) -> None:
    """Raise the runtime error for a selector index past its case list."""
    raise SelectorRangeError(
        f"selector '{name}' index {index} exceeds its {cases} cases", cycle
    )


def memory_range_error(name: str, address: int, size: int, cycle: int) -> None:
    """Raise the runtime error for a memory address outside 0..size-1."""
    raise MemoryRangeError(
        f"memory '{name}' address {address} outside its declared range "
        f"0..{size - 1}",
        cycle,
    )
