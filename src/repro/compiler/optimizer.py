"""Code-generation options and constant analysis (Section 4.4 of the paper).

"In implementing ASIM II, an emphasis was placed on optimization of the code
produced by the compiler ...  If the function is a constant, code is
generated which performs the function inline, rather than call the
procedure.  Similarly, if the memory operation is a constant, the case
structure is eliminated and only the appropriate action is performed."

This module holds the knobs controlling those optimizations (so the
ablation benchmark can switch them off) and the small analyses deciding
when each applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.alu_ops import is_valid_function
from repro.rtl.components import Alu, Memory, Selector
from repro.rtl.memory_ops import should_trace_read, should_trace_write
from repro.rtl.spec import Specification


@dataclass(frozen=True)
class CodegenOptions:
    """Switches controlling what the code generators emit."""

    #: Inline ALUs whose function expression is constant (Figure 4.1).
    inline_constant_functions: bool = True
    #: Emit only the selected branch for memories with a constant operation
    #: (Figure 4.3 / Section 4.4).
    specialize_constant_memory_ops: bool = True
    #: Turn selectors whose cases are all constants into a tuple lookup
    #: (an extension of the paper's constant-folding idea).
    fold_constant_selectors: bool = True
    #: Emit per-cycle trace statements for components marked with ``*``.
    emit_cycle_trace: bool = True
    #: Emit "Read from"/"Write to" trace statements where the memory
    #: operation can carry trace bits.
    emit_access_trace: bool = True
    #: Emit bounds checks for selector indices and memory addresses.
    emit_bounds_checks: bool = True

    @classmethod
    def unoptimized(cls) -> "CodegenOptions":
        """Everything generic: the ablation baseline."""
        return cls(
            inline_constant_functions=False,
            specialize_constant_memory_ops=False,
            fold_constant_selectors=False,
        )

    @classmethod
    def fastest(cls) -> "CodegenOptions":
        """All optimizations on, no tracing (benchmark configuration)."""
        return cls(emit_cycle_trace=False, emit_access_trace=False)


# ---------------------------------------------------------------------------
# Constant analyses
# ---------------------------------------------------------------------------


def constant_alu_function(alu: Alu) -> int | None:
    """The ALU's function code if its function expression is constant."""
    if not alu.funct.is_constant:
        return None
    code = alu.funct.constant_value()
    if not is_valid_function(code):
        return None
    return code


def constant_memory_operation(memory: Memory) -> int | None:
    """The memory's operation word if its operation expression is constant."""
    if not memory.operation.is_constant:
        return None
    return memory.operation.constant_value()


def selector_constant_cases(selector: Selector) -> list[int] | None:
    """The selector's case values if every case expression is constant."""
    if all(case.is_constant for case in selector.cases):
        return [case.constant_value() for case in selector.cases]
    return None


def memory_may_trace_writes(memory: Memory) -> bool:
    """Could this memory ever emit a "Write to" trace line?

    Mirrors the paper's ``numberofbits`` heuristic: a non-constant operation
    expression at least 3 bits wide may carry the trace-writes bit; a
    constant operation traces writes exactly when bits 0 and 2 are set.
    """
    constant = constant_memory_operation(memory)
    if constant is not None:
        return should_trace_write(constant)
    return memory.operation.total_width >= 3


def memory_may_trace_reads(memory: Memory) -> bool:
    """Could this memory ever emit a "Read from" trace line?"""
    constant = constant_memory_operation(memory)
    if constant is not None:
        return should_trace_read(constant)
    return memory.operation.total_width >= 4


@dataclass(frozen=True)
class OptimizationReport:
    """Summary of which optimizations applied to a specification."""

    inlined_alus: tuple[str, ...]
    generic_alus: tuple[str, ...]
    specialized_memories: tuple[str, ...]
    generic_memories: tuple[str, ...]
    folded_selectors: tuple[str, ...]
    generic_selectors: tuple[str, ...]

    @property
    def inlined_alu_count(self) -> int:
        return len(self.inlined_alus)

    @property
    def specialized_memory_count(self) -> int:
        return len(self.specialized_memories)


def analyze_specification(
    spec: Specification, options: CodegenOptions | None = None
) -> OptimizationReport:
    """Report which components the generators will specialise under *options*."""
    options = options or CodegenOptions()
    inlined, generic_alus = [], []
    for alu in spec.alus():
        if options.inline_constant_functions and constant_alu_function(alu) is not None:
            inlined.append(alu.name)
        else:
            generic_alus.append(alu.name)
    specialized, generic_memories = [], []
    for memory in spec.memories():
        if (options.specialize_constant_memory_ops
                and constant_memory_operation(memory) is not None):
            specialized.append(memory.name)
        else:
            generic_memories.append(memory.name)
    folded, generic_selectors = [], []
    for selector in spec.selectors():
        if (options.fold_constant_selectors
                and selector_constant_cases(selector) is not None):
            folded.append(selector.name)
        else:
            generic_selectors.append(selector.name)
    return OptimizationReport(
        inlined_alus=tuple(inlined),
        generic_alus=tuple(generic_alus),
        specialized_memories=tuple(specialized),
        generic_memories=tuple(generic_memories),
        folded_selectors=tuple(folded),
        generic_selectors=tuple(generic_selectors),
    )
