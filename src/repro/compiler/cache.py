"""Prepare-phase caching: skip generate + compile for a known specification.

Figure 5.1's lesson cuts both ways: compiling a specification buys a ~20x
faster simulation phase at the price of a much longer preparation phase.  In
a serving setting — the same machine specification simulated over and over
for millions of requests — that preparation cost should be paid **once**.
This module keys the shared lowered program — the backend-neutral
:class:`~repro.lowering.program.CycleProgram` IR, never a backend-private
artifact — on a stable content hash of the specification plus the exact
spec-level pass configuration, so a repeated ``prepare()`` of the same
(spec, passes) pair skips lowering entirely.  Backend-private derivations
(closure plans, generated modules) are memoized *on* the cached program
(``CycleProgram.artifact``), so they are shared too while the cache itself
stays picklable-friendly.

Two cache layers live here:

* :class:`PrepareCache` — the in-process bounded LRU, safe to share
  between threads (and picklable: entries survive, locks are rebuilt);
* :class:`DiskCache` — the persistent on-disk artifact store keyed on the
  same ``spec_fingerprint`` plus an :func:`artifact_key` of the exact
  option set.  It holds the pickled lowered IR and the compiled backend's
  generated Python source, written atomically (temp file + ``os.replace``)
  and loaded corruption-safely (any damaged or stale file reads as a
  miss, never an error).  This is what lets a freshly spawned worker
  process — the process-pool execution engine in :mod:`repro.serving` —
  skip lowering and code generation entirely: its cold-start cost drops
  to one byte-compile of an on-disk source file.  The directory defaults
  to ``$REPRO_CACHE_DIR`` or a per-user temp directory.

The disk layer would otherwise grow without bound (one ``.ir`` and one
``.py`` per (machine, option set) ever served), so it also carries its
own garbage collector: :meth:`DiskCache.prune` evicts least-recently-used
entries (successful loads touch the file mtime, so mtime order *is* use
order) down to a byte budget and/or an age limit, removes corrupted or
version-stale entries outright, and collects temp files orphaned by a
crashed writer.  Pruning is concurrent-safe — a file that disappears
mid-scan is simply someone else's eviction — and the long-lived
simulation server (:mod:`repro.serving.server`) runs it at startup so a
persistent deployment stays inside its configured budget.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.rtl.spec import Specification
from repro.rtl.writer import spec_to_text


def spec_fingerprint(spec: Specification) -> str:
    """Stable content hash of a specification.

    The canonical serialised text covers everything that affects generated
    code: components and their expressions, declarations (trace marks),
    initial memory contents and the default cycle count.  ``source_name`` is
    deliberately excluded so identical machines loaded from different paths
    share one cache entry.
    """
    return hashlib.sha256(spec_to_text(spec).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (exposed on prepare reports)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PrepareCache:
    """Bounded LRU mapping (backend, fingerprint, options) -> artifact."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, backend: str, spec: Specification, *options) -> tuple:
        """Build a cache key; *options* must be hashable (frozen dataclasses)."""
        return (backend, spec_fingerprint(spec)) + options

    def get_or_create(
        self, key: tuple, factory: Callable[[], object]
    ) -> tuple[object, bool]:
        """Return ``(artifact, hit)``; on a miss, build and store it.

        The factory runs outside the lock (code generation can be slow); if
        two threads race on the same key the first stored value wins so both
        callers see one artifact.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key], True
        artifact = factory()
        with self._lock:
            if key in self._entries:  # lost a race: keep the first artifact
                self.stats.hits += 1
                return self._entries[key], True
            self.stats.misses += 1
            self._entries[key] = artifact
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return artifact, False

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __getstate__(self) -> dict:
        # entries are backend-neutral lowered programs, themselves picklable;
        # only the lock must be rebuilt on the other side
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


#: Process-wide cache shared by the compiled and threaded backends.
GLOBAL_PREPARE_CACHE = PrepareCache()


def prepare_cache_stats() -> CacheStats:
    """Counters of the process-wide prepare cache."""
    return GLOBAL_PREPARE_CACHE.stats


def clear_prepare_cache() -> None:
    """Empty the process-wide prepare cache (tests, benchmarks)."""
    GLOBAL_PREPARE_CACHE.clear()


def resolve_cache(cache: "PrepareCache | bool | None") -> PrepareCache | None:
    """Normalise the ``cache`` argument backends accept.

    ``True``/``None`` select the process-wide cache, ``False`` disables
    caching, a :class:`PrepareCache` instance is used as-is.
    """
    if cache is False:
        return None
    if cache is True or cache is None:
        return GLOBAL_PREPARE_CACHE
    return cache


# ---------------------------------------------------------------------------
# The persistent on-disk artifact cache
# ---------------------------------------------------------------------------

#: Environment variable overriding the default cache directory.
DISK_CACHE_ENV = "REPRO_CACHE_DIR"

#: Bump when the on-disk layout or pickle payload shape changes; files
#: written under another version read as misses, never as errors.
DISK_FORMAT_VERSION = 1


def _code_version() -> str:
    """The package version stamped into every artifact.

    Generated source and the lowered IR depend on the code that produced
    them (a codegen fix must not keep serving pre-fix modules), so a
    version mismatch reads as a miss and the entry is rebuilt.  Imported
    lazily: this module loads during the package's own initialisation.
    """
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - mid-initialisation fallback
        return "unknown"


def _source_header() -> str:
    """Marker line prefixing cached text artifacts (detects truncation,
    garbage, and artifacts generated by another repro version)."""
    return (
        f"# repro-artifact-cache format={DISK_FORMAT_VERSION} "
        f"version={_code_version()}\n"
    )


def artifact_key(*parts) -> str:
    """Short stable digest of an option set, usable in cache file names.

    *parts* must have deterministic ``repr`` (frozen dataclasses, strings,
    numbers) — the same property :meth:`PrepareCache.key_for` relies on for
    hashability.
    """
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


def _current_uid() -> int | None:
    """The caller's numeric uid, or ``None`` where the concept is absent."""
    getuid = getattr(os, "getuid", None)
    return getuid() if getuid is not None else None


def default_cache_dir() -> Path:
    """The disk cache root: ``$REPRO_CACHE_DIR`` or a per-user temp dir."""
    override = os.environ.get(DISK_CACHE_ENV)
    if override:
        return Path(override)
    uid = _current_uid()
    suffix = str(uid) if uid is not None else os.environ.get("USERNAME", "user")
    return Path(tempfile.gettempdir()) / f"repro-artifacts-{suffix}"


#: Writer temp files older than this are collected by :meth:`DiskCache.prune`
#: (an atomic write renames its temp file within milliseconds; anything this
#: old was orphaned by a crashed writer).
STALE_TMP_SECONDS = 3600.0


@dataclass(frozen=True)
class CacheEntry:
    """One file in the disk cache: artifact (``ir``/``py``) or orphaned
    writer temp file (``tmp``)."""

    path: Path
    kind: str
    size: int
    mtime: float


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time summary of a cache directory (``repro cache info``)."""

    root: Path
    files: int
    total_bytes: int
    by_kind: dict[str, int]

    def summary(self) -> str:
        kinds = ", ".join(
            f"{count} {kind}" for kind, count in sorted(self.by_kind.items())
        ) or "empty"
        return (
            f"{self.root}: {self.files} files, {self.total_bytes} bytes "
            f"({kinds})"
        )


@dataclass
class PruneReport:
    """What one :meth:`DiskCache.prune` pass scanned and removed."""

    root: Path
    scanned_files: int = 0
    scanned_bytes: int = 0
    removed_corrupt: int = 0
    removed_expired: int = 0
    removed_evicted: int = 0
    removed_stale_tmp: int = 0
    removed_bytes: int = 0
    remaining_files: int = 0
    remaining_bytes: int = 0

    @property
    def removed_files(self) -> int:
        return (
            self.removed_corrupt + self.removed_expired
            + self.removed_evicted + self.removed_stale_tmp
        )

    def summary(self) -> str:
        return (
            f"{self.root}: removed {self.removed_files}/{self.scanned_files} "
            f"files ({self.removed_bytes} bytes: {self.removed_evicted} "
            f"evicted, {self.removed_expired} expired, "
            f"{self.removed_corrupt} corrupt, {self.removed_stale_tmp} stale "
            f"tmp); {self.remaining_files} files / {self.remaining_bytes} "
            "bytes remain"
        )


class DiskCache:
    """Persistent artifact store keyed on (fingerprint, options key).

    Two artifact kinds are stored, one file each per key:

    * ``.ir``  — the pickled backend-neutral lowered program
      (:class:`~repro.lowering.program.CycleProgram`);
    * ``.py``  — the compiled backend's generated module source (plain
      text behind a format-version header; byte-compiling it is the only
      preparation work left for a reader).

    Writes are atomic — the payload lands in a uniquely named temp file in
    the same directory and is ``os.replace``d over the final name — so
    concurrent writers (many worker processes warming the same machine)
    never interleave bytes; whichever rename lands last wins with a
    complete file.  Loads are corruption-safe: a truncated, garbled or
    version-mismatched file is treated as a miss and the caller rebuilds
    (optionally overwriting the bad file with a good one).

    Loading the IR means unpickling, and unpickling executes code, so the
    cache only ever *reads* from a directory the current user owns: the
    root is created ``0700``, and when it already exists but belongs to
    another uid (say, a squatter pre-created the well-known temp path)
    every load is treated as a miss — the cache degrades to write-only
    rather than executing someone else's bytes.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()
        #: set once a write has failed (disk full, unwritable root, torn
        #: rename): the cache keeps serving reads but new artifacts stay
        #: in memory only — the request that triggered the write succeeds
        self.degraded = False
        #: how many writes have failed since construction
        self.write_errors = 0
        # Counter mutations arrive from every server thread at once (pool
        # warm-ups, prune): ``+=`` on a plain int is a read-modify-write
        # and silently loses updates without this lock.
        self._counter_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # same shape as PrepareCache: only the lock must be rebuilt on
        # the other side of a pickle
        state = dict(self.__dict__)
        del state["_counter_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._counter_lock = threading.Lock()

    def _count_hit(self) -> None:
        with self._counter_lock:
            self.stats.hits += 1

    def _count_miss(self) -> None:
        with self._counter_lock:
            self.stats.misses += 1

    def _root_trusted(self) -> bool:
        """True when the root exists and provably belongs to this user.

        Fails closed: where ownership cannot be established (no
        ``os.getuid``, unreadable root) nothing is ever read — the cache
        degrades to write-only rather than unpickling unverifiable bytes.
        """
        uid = _current_uid()
        if uid is None:
            return False
        try:
            owner = os.stat(self.root).st_uid
        except OSError:
            return False
        return owner == uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskCache({str(self.root)!r})"

    def path_for(self, fingerprint: str, key: str, kind: str) -> Path:
        """The artifact file for one (fingerprint, options key, kind)."""
        return self.root / f"{fingerprint}-{key}.{kind}"

    # -- atomic write / corruption-safe read ---------------------------------

    def _write_atomic(self, path: Path, payload: bytes) -> Path | None:
        """Write one artifact atomically; ``None`` when the disk failed.

        A failing disk (full, read-only, yanked) must never fail the
        request that merely tried to *cache* something: any ``OSError``
        degrades this cache to memory-only for the offending write — a
        warning on the first failure, a counter after that — and the
        caller proceeds exactly as on a cache miss.
        """
        try:
            self.root.mkdir(mode=0o700, parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=path.name + ".tmp-"
            )
        except OSError as exc:
            self._note_write_failure(exc)
            return None
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(payload)
            os.replace(tmp_name, path)
        except BaseException as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(exc, OSError):
                self._note_write_failure(exc)
                return None
            raise
        return path

    def _note_write_failure(self, exc: OSError) -> None:
        with self._counter_lock:
            self.write_errors += 1
            first = not self.degraded
            self.degraded = True
        if first:
            import warnings

            warnings.warn(
                f"artifact cache at {self.root} is degraded to memory-only: "
                f"write failed with {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )

    def _read(self, path: Path) -> bytes | None:
        if not self._root_trusted():
            self._count_miss()
            return None
        try:
            payload = path.read_bytes()
        except OSError:
            self._count_miss()
            return None
        return payload

    def _touch(self, path: Path) -> None:
        """Mark *path* recently used, so mtime order is LRU order for
        :meth:`prune`.  Best-effort: a concurrent eviction is fine."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    # -- lowered programs ----------------------------------------------------

    def store_program(self, fingerprint: str, key: str, program) -> Path | None:
        """Persist a lowered program (pickled behind a version header).
        Returns ``None`` when the disk failed (cache degrades, see
        :meth:`_write_atomic`)."""
        payload = pickle.dumps(
            {
                "format": DISK_FORMAT_VERSION,
                "version": _code_version(),
                "artifact": program,
            }
        )
        return self._write_atomic(self.path_for(fingerprint, key, "ir"), payload)

    def load_program(self, fingerprint: str, key: str):
        """Load a lowered program, or ``None`` on any miss or damage."""
        payload = self._read(self.path_for(fingerprint, key, "ir"))
        if payload is None:
            return None
        try:
            document = pickle.loads(payload)
            if document["format"] != DISK_FORMAT_VERSION:
                raise ValueError("format version mismatch")
            if document["version"] != _code_version():
                raise ValueError("produced by another repro version")
            artifact = document["artifact"]
        except Exception:  # corruption-safe: damaged file == miss
            self._count_miss()
            return None
        self._count_hit()
        self._touch(self.path_for(fingerprint, key, "ir"))
        return artifact

    # -- generated source ----------------------------------------------------

    def store_source(self, fingerprint: str, key: str, source: str) -> Path | None:
        """Persist a generated Python module source.  Returns ``None``
        when the disk failed (cache degrades, see :meth:`_write_atomic`)."""
        payload = (_source_header() + source).encode()
        return self._write_atomic(self.path_for(fingerprint, key, "py"), payload)

    def load_source(self, fingerprint: str, key: str) -> str | None:
        """Load a generated source, or ``None`` on any miss or damage."""
        payload = self._read(self.path_for(fingerprint, key, "py"))
        if payload is None:
            return None
        try:
            text = payload.decode()
        except UnicodeDecodeError:
            self._count_miss()
            return None
        header = _source_header()
        if not text.startswith(header):
            self._count_miss()
            return None
        self._count_hit()
        self._touch(self.path_for(fingerprint, key, "py"))
        return text[len(header):]

    # -- introspection and garbage collection --------------------------------

    def entries(self) -> "list[CacheEntry]":
        """Every artifact file currently in the cache directory.

        Orphaned writer temp files (``*.tmp-*`` left by a crashed process)
        are reported with ``kind="tmp"``; unknown files are ignored.  The
        scan is concurrent-safe: a file deleted mid-scan is skipped.
        """
        found: list[CacheEntry] = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return found
        for name in sorted(names):
            path = self.root / name
            if ".tmp-" in name:
                kind = "tmp"
            elif name.endswith(".ir"):
                kind = "ir"
            elif name.endswith(".py"):
                kind = "py"
            else:
                continue
            try:
                info = os.stat(path)
            except OSError:  # concurrently evicted
                continue
            found.append(
                CacheEntry(
                    path=path, kind=kind, size=info.st_size,
                    mtime=info.st_mtime,
                )
            )
        return found

    def info(self) -> "CacheInfo":
        """Size and entry-count summary of the cache directory."""
        entries = self.entries()
        by_kind: dict[str, int] = {}
        for entry in entries:
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
        return CacheInfo(
            root=self.root,
            files=len(entries),
            total_bytes=sum(entry.size for entry in entries),
            by_kind=by_kind,
        )

    def _entry_valid(self, entry: "CacheEntry") -> bool:
        """True when *entry* would load as a hit (right header, right
        version, unpicklable-garbage-free).  Used by :meth:`prune` to
        remove corrupted or stale-version files outright."""
        try:
            payload = entry.path.read_bytes()
        except OSError:  # concurrently evicted: nothing to validate
            return True
        if entry.kind == "ir":
            try:
                document = pickle.loads(payload)
                return (
                    document["format"] == DISK_FORMAT_VERSION
                    and document["version"] == _code_version()
                )
            except Exception:
                return False
        try:
            return payload.decode().startswith(_source_header())
        except UnicodeDecodeError:
            return False

    def _remove(self, entry: "CacheEntry") -> int:
        """Unlink one entry; returns the bytes freed (0 if someone else
        evicted it first — concurrent prunes never error)."""
        try:
            os.unlink(entry.path)
        except OSError:
            return 0
        return entry.size

    def prune(
        self,
        max_bytes: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
        validate: bool = True,
    ) -> "PruneReport":
        """Garbage-collect the artifact directory; returns what happened.

        Three passes, in order:

        1. **integrity** (``validate=True``): corrupted, truncated or
           version-stale entries — which can only ever read as misses —
           are deleted, as are writer temp files older than
           ``STALE_TMP_SECONDS`` (a crashed writer's leftovers; live
           writers are younger than that by construction).
        2. **age** (``max_age`` seconds): entries whose mtime is older
           than ``now - max_age`` are deleted.  Loads touch mtime, so
           this is time-since-last-use, not time-since-creation.
        3. **size** (``max_bytes``): while the surviving entries total
           more than the budget, the least recently used one (oldest
           mtime) is evicted.  ``max_bytes=0`` empties the cache.

        Every removal tolerates a concurrent unlink (the file simply
        counts as freed by the other party), so many servers may prune
        one directory at once; atomic writes guarantee a concurrent
        ``load`` sees either a complete entry or a miss, never a torn
        file.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        if now is None:
            now = time.time()
        entries = self.entries()
        report = PruneReport(
            root=self.root,
            scanned_files=len(entries),
            scanned_bytes=sum(entry.size for entry in entries),
        )
        survivors: list[CacheEntry] = []
        # fresh temp files belong to a live writer mid-atomic-write: they
        # are exempt from the age and byte-budget passes (deleting one
        # would break the writer's os.replace), only staleness collects them
        fresh_tmp: list[CacheEntry] = []
        for entry in entries:
            if entry.kind == "tmp":
                if now - entry.mtime >= STALE_TMP_SECONDS:
                    report.removed_stale_tmp += 1
                    report.removed_bytes += self._remove(entry)
                else:
                    fresh_tmp.append(entry)
                continue
            if validate and not self._entry_valid(entry):
                report.removed_corrupt += 1
                report.removed_bytes += self._remove(entry)
                continue
            if max_age is not None and now - entry.mtime > max_age:
                report.removed_expired += 1
                report.removed_bytes += self._remove(entry)
                continue
            survivors.append(entry)
        if max_bytes is not None:
            # oldest mtime first: loads touch their file, so this is LRU
            ordered = sorted(survivors, key=lambda e: e.mtime)
            total = sum(entry.size for entry in ordered)
            survivors = []
            for entry in ordered:
                if total > max_bytes:
                    report.removed_bytes += self._remove(entry)
                    total -= entry.size
                    report.removed_evicted += 1
                    with self._counter_lock:
                        self.stats.evictions += 1
                else:
                    survivors.append(entry)
        survivors += fresh_tmp
        report.remaining_files = len(survivors)
        report.remaining_bytes = sum(entry.size for entry in survivors)
        return report


def resolve_disk(disk: "DiskCache | str | Path | bool | None") -> DiskCache | None:
    """Normalise the ``disk`` argument backends accept.

    ``None``/``False`` disable the layer, ``True`` selects the default
    directory (:func:`default_cache_dir`), a path roots a cache there, a
    :class:`DiskCache` instance is used as-is.
    """
    if disk is None or disk is False:
        return None
    if disk is True:
        return DiskCache()
    if isinstance(disk, (str, Path)):
        return DiskCache(disk)
    return disk
