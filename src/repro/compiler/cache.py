"""Prepare-phase caching: skip generate + compile for a known specification.

Figure 5.1's lesson cuts both ways: compiling a specification buys a ~20x
faster simulation phase at the price of a much longer preparation phase.  In
a serving setting — the same machine specification simulated over and over
for millions of requests — that preparation cost should be paid **once**.
This module keys the shared lowered program — the backend-neutral
:class:`~repro.lowering.program.CycleProgram` IR, never a backend-private
artifact — on a stable content hash of the specification plus the exact
spec-level pass configuration, so a repeated ``prepare()`` of the same
(spec, passes) pair skips lowering entirely.  Backend-private derivations
(closure plans, generated modules) are memoized *on* the cached program
(``CycleProgram.artifact``), so they are shared too while the cache itself
stays picklable-friendly.

Two cache layers live here:

* :class:`PrepareCache` — the in-process bounded LRU, safe to share
  between threads (and picklable: entries survive, locks are rebuilt);
* :class:`DiskCache` — the persistent on-disk artifact store keyed on the
  same ``spec_fingerprint`` plus an :func:`artifact_key` of the exact
  option set.  It holds the pickled lowered IR and the compiled backend's
  generated Python source, written atomically (temp file + ``os.replace``)
  and loaded corruption-safely (any damaged or stale file reads as a
  miss, never an error).  This is what lets a freshly spawned worker
  process — the process-pool execution engine in :mod:`repro.serving` —
  skip lowering and code generation entirely: its cold-start cost drops
  to one byte-compile of an on-disk source file.  The directory defaults
  to ``$REPRO_CACHE_DIR`` or a per-user temp directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.rtl.spec import Specification
from repro.rtl.writer import spec_to_text


def spec_fingerprint(spec: Specification) -> str:
    """Stable content hash of a specification.

    The canonical serialised text covers everything that affects generated
    code: components and their expressions, declarations (trace marks),
    initial memory contents and the default cycle count.  ``source_name`` is
    deliberately excluded so identical machines loaded from different paths
    share one cache entry.
    """
    return hashlib.sha256(spec_to_text(spec).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (exposed on prepare reports)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PrepareCache:
    """Bounded LRU mapping (backend, fingerprint, options) -> artifact."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, backend: str, spec: Specification, *options) -> tuple:
        """Build a cache key; *options* must be hashable (frozen dataclasses)."""
        return (backend, spec_fingerprint(spec)) + options

    def get_or_create(
        self, key: tuple, factory: Callable[[], object]
    ) -> tuple[object, bool]:
        """Return ``(artifact, hit)``; on a miss, build and store it.

        The factory runs outside the lock (code generation can be slow); if
        two threads race on the same key the first stored value wins so both
        callers see one artifact.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key], True
        artifact = factory()
        with self._lock:
            if key in self._entries:  # lost a race: keep the first artifact
                self.stats.hits += 1
                return self._entries[key], True
            self.stats.misses += 1
            self._entries[key] = artifact
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return artifact, False

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __getstate__(self) -> dict:
        # entries are backend-neutral lowered programs, themselves picklable;
        # only the lock must be rebuilt on the other side
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


#: Process-wide cache shared by the compiled and threaded backends.
GLOBAL_PREPARE_CACHE = PrepareCache()


def prepare_cache_stats() -> CacheStats:
    """Counters of the process-wide prepare cache."""
    return GLOBAL_PREPARE_CACHE.stats


def clear_prepare_cache() -> None:
    """Empty the process-wide prepare cache (tests, benchmarks)."""
    GLOBAL_PREPARE_CACHE.clear()


def resolve_cache(cache: "PrepareCache | bool | None") -> PrepareCache | None:
    """Normalise the ``cache`` argument backends accept.

    ``True``/``None`` select the process-wide cache, ``False`` disables
    caching, a :class:`PrepareCache` instance is used as-is.
    """
    if cache is False:
        return None
    if cache is True or cache is None:
        return GLOBAL_PREPARE_CACHE
    return cache


# ---------------------------------------------------------------------------
# The persistent on-disk artifact cache
# ---------------------------------------------------------------------------

#: Environment variable overriding the default cache directory.
DISK_CACHE_ENV = "REPRO_CACHE_DIR"

#: Bump when the on-disk layout or pickle payload shape changes; files
#: written under another version read as misses, never as errors.
DISK_FORMAT_VERSION = 1


def _code_version() -> str:
    """The package version stamped into every artifact.

    Generated source and the lowered IR depend on the code that produced
    them (a codegen fix must not keep serving pre-fix modules), so a
    version mismatch reads as a miss and the entry is rebuilt.  Imported
    lazily: this module loads during the package's own initialisation.
    """
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - mid-initialisation fallback
        return "unknown"


def _source_header() -> str:
    """Marker line prefixing cached text artifacts (detects truncation,
    garbage, and artifacts generated by another repro version)."""
    return (
        f"# repro-artifact-cache format={DISK_FORMAT_VERSION} "
        f"version={_code_version()}\n"
    )


def artifact_key(*parts) -> str:
    """Short stable digest of an option set, usable in cache file names.

    *parts* must have deterministic ``repr`` (frozen dataclasses, strings,
    numbers) — the same property :meth:`PrepareCache.key_for` relies on for
    hashability.
    """
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


def _current_uid() -> int | None:
    """The caller's numeric uid, or ``None`` where the concept is absent."""
    getuid = getattr(os, "getuid", None)
    return getuid() if getuid is not None else None


def default_cache_dir() -> Path:
    """The disk cache root: ``$REPRO_CACHE_DIR`` or a per-user temp dir."""
    override = os.environ.get(DISK_CACHE_ENV)
    if override:
        return Path(override)
    uid = _current_uid()
    suffix = str(uid) if uid is not None else os.environ.get("USERNAME", "user")
    return Path(tempfile.gettempdir()) / f"repro-artifacts-{suffix}"


class DiskCache:
    """Persistent artifact store keyed on (fingerprint, options key).

    Two artifact kinds are stored, one file each per key:

    * ``.ir``  — the pickled backend-neutral lowered program
      (:class:`~repro.lowering.program.CycleProgram`);
    * ``.py``  — the compiled backend's generated module source (plain
      text behind a format-version header; byte-compiling it is the only
      preparation work left for a reader).

    Writes are atomic — the payload lands in a uniquely named temp file in
    the same directory and is ``os.replace``d over the final name — so
    concurrent writers (many worker processes warming the same machine)
    never interleave bytes; whichever rename lands last wins with a
    complete file.  Loads are corruption-safe: a truncated, garbled or
    version-mismatched file is treated as a miss and the caller rebuilds
    (optionally overwriting the bad file with a good one).

    Loading the IR means unpickling, and unpickling executes code, so the
    cache only ever *reads* from a directory the current user owns: the
    root is created ``0700``, and when it already exists but belongs to
    another uid (say, a squatter pre-created the well-known temp path)
    every load is treated as a miss — the cache degrades to write-only
    rather than executing someone else's bytes.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def _root_trusted(self) -> bool:
        """True when the root exists and provably belongs to this user.

        Fails closed: where ownership cannot be established (no
        ``os.getuid``, unreadable root) nothing is ever read — the cache
        degrades to write-only rather than unpickling unverifiable bytes.
        """
        uid = _current_uid()
        if uid is None:
            return False
        try:
            owner = os.stat(self.root).st_uid
        except OSError:
            return False
        return owner == uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskCache({str(self.root)!r})"

    def path_for(self, fingerprint: str, key: str, kind: str) -> Path:
        """The artifact file for one (fingerprint, options key, kind)."""
        return self.root / f"{fingerprint}-{key}.{kind}"

    # -- atomic write / corruption-safe read ---------------------------------

    def _write_atomic(self, path: Path, payload: bytes) -> Path:
        self.root.mkdir(mode=0o700, parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=path.name + ".tmp-"
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def _read(self, path: Path) -> bytes | None:
        if not self._root_trusted():
            self.stats.misses += 1
            return None
        try:
            payload = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        return payload

    # -- lowered programs ----------------------------------------------------

    def store_program(self, fingerprint: str, key: str, program) -> Path:
        """Persist a lowered program (pickled behind a version header)."""
        payload = pickle.dumps(
            {
                "format": DISK_FORMAT_VERSION,
                "version": _code_version(),
                "artifact": program,
            }
        )
        return self._write_atomic(self.path_for(fingerprint, key, "ir"), payload)

    def load_program(self, fingerprint: str, key: str):
        """Load a lowered program, or ``None`` on any miss or damage."""
        payload = self._read(self.path_for(fingerprint, key, "ir"))
        if payload is None:
            return None
        try:
            document = pickle.loads(payload)
            if document["format"] != DISK_FORMAT_VERSION:
                raise ValueError("format version mismatch")
            if document["version"] != _code_version():
                raise ValueError("produced by another repro version")
            artifact = document["artifact"]
        except Exception:  # corruption-safe: damaged file == miss
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return artifact

    # -- generated source ----------------------------------------------------

    def store_source(self, fingerprint: str, key: str, source: str) -> Path:
        """Persist a generated Python module source."""
        payload = (_source_header() + source).encode()
        return self._write_atomic(self.path_for(fingerprint, key, "py"), payload)

    def load_source(self, fingerprint: str, key: str) -> str | None:
        """Load a generated source, or ``None`` on any miss or damage."""
        payload = self._read(self.path_for(fingerprint, key, "py"))
        if payload is None:
            return None
        try:
            text = payload.decode()
        except UnicodeDecodeError:
            self.stats.misses += 1
            return None
        header = _source_header()
        if not text.startswith(header):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return text[len(header):]


def resolve_disk(disk: "DiskCache | str | Path | bool | None") -> DiskCache | None:
    """Normalise the ``disk`` argument backends accept.

    ``None``/``False`` disable the layer, ``True`` selects the default
    directory (:func:`default_cache_dir`), a path roots a cache there, a
    :class:`DiskCache` instance is used as-is.
    """
    if disk is None or disk is False:
        return None
    if disk is True:
        return DiskCache()
    if isinstance(disk, (str, Path)):
        return DiskCache(disk)
    return disk
