"""Prepare-phase caching: skip generate + compile for a known specification.

Figure 5.1's lesson cuts both ways: compiling a specification buys a ~20x
faster simulation phase at the price of a much longer preparation phase.  In
a serving setting — the same machine specification simulated over and over
for millions of requests — that preparation cost should be paid **once**.
This module keys the shared lowered program — the backend-neutral
:class:`~repro.lowering.program.CycleProgram` IR, never a backend-private
artifact — on a stable content hash of the specification plus the exact
spec-level pass configuration, so a repeated ``prepare()`` of the same
(spec, passes) pair skips lowering entirely.  Backend-private derivations
(closure plans, generated modules) are memoized *on* the cached program
(``CycleProgram.artifact``), so they are shared too while the cache itself
stays picklable-friendly.

The cache is a bounded LRU and is safe to share between threads.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.rtl.spec import Specification
from repro.rtl.writer import spec_to_text


def spec_fingerprint(spec: Specification) -> str:
    """Stable content hash of a specification.

    The canonical serialised text covers everything that affects generated
    code: components and their expressions, declarations (trace marks),
    initial memory contents and the default cycle count.  ``source_name`` is
    deliberately excluded so identical machines loaded from different paths
    share one cache entry.
    """
    return hashlib.sha256(spec_to_text(spec).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (exposed on prepare reports)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PrepareCache:
    """Bounded LRU mapping (backend, fingerprint, options) -> artifact."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, backend: str, spec: Specification, *options) -> tuple:
        """Build a cache key; *options* must be hashable (frozen dataclasses)."""
        return (backend, spec_fingerprint(spec)) + options

    def get_or_create(
        self, key: tuple, factory: Callable[[], object]
    ) -> tuple[object, bool]:
        """Return ``(artifact, hit)``; on a miss, build and store it.

        The factory runs outside the lock (code generation can be slow); if
        two threads race on the same key the first stored value wins so both
        callers see one artifact.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key], True
        artifact = factory()
        with self._lock:
            if key in self._entries:  # lost a race: keep the first artifact
                self.stats.hits += 1
                return self._entries[key], True
            self.stats.misses += 1
            self._entries[key] = artifact
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return artifact, False

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


#: Process-wide cache shared by the compiled and threaded backends.
GLOBAL_PREPARE_CACHE = PrepareCache()


def prepare_cache_stats() -> CacheStats:
    """Counters of the process-wide prepare cache."""
    return GLOBAL_PREPARE_CACHE.stats


def clear_prepare_cache() -> None:
    """Empty the process-wide prepare cache (tests, benchmarks)."""
    GLOBAL_PREPARE_CACHE.clear()


def resolve_cache(cache: "PrepareCache | bool | None") -> PrepareCache | None:
    """Normalise the ``cache`` argument backends accept.

    ``True``/``None`` select the process-wide cache, ``False`` disables
    caching, a :class:`PrepareCache` instance is used as-is.
    """
    if cache is False:
        return None
    if cache is True or cache is None:
        return GLOBAL_PREPARE_CACHE
    return cache
