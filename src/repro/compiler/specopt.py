"""Spec-to-spec optimization passes shared by all backends.

Section 4.4 of the paper optimises *within* one component: a constant ALU
function is inlined, a constant memory operation drops its case dispatch.
This module extends those constant analyses to whole-specification scope
with four classic passes, each producing a new (smaller, faster)
:class:`~repro.rtl.spec.Specification` that any backend — interpreter,
threaded or compiled — can consume.  The passes run inside the shared
lowering pipeline (:mod:`repro.lowering`), so every backend sees the same
optimized specification and the same observables map back to the original
component names:

* **constant propagation** — a combinational component whose inputs are all
  constants computes the same value every cycle; that value is substituted
  into every expression that reads the component (bit-field references fold
  to the extracted bits);
* **dead-component elimination** — a constant-valued component that is no
  longer referenced (and is not traced) is removed from the specification;
  its statically-known per-cycle value is recorded so backends can restore
  it into ``final_values``;
* **common-subexpression de-duplication** — two combinational components
  with identical definitions compute identical values every cycle; the
  duplicate is removed and its readers re-pointed at the survivor;
* **copy propagation** — a selector whose select expression is constant and
  whose chosen case is a bare reference to a combinational component always
  forwards that component's value; the selector is removed and its readers
  re-pointed at the forwarded component.

The passes are *observably* semantics-preserving: memory-mapped outputs,
memory contents, per-cycle traces of ``*``-marked components, and (after
:func:`restore_observables`) the ``final_values`` dict are all bit-identical
to running the unoptimized specification.  Traced components are never
removed.  Simulation statistics may legitimately differ (fewer components
are evaluated — that is the point).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compiler.optimizer import (
    CodegenOptions,
    OptimizationReport,
    analyze_specification,
)
from repro.rtl.alu_ops import dologic, is_valid_function
from repro.rtl.bits import extract_field, mask_word
from repro.rtl.components import Alu, Component, Memory, Selector
from repro.rtl.dependency import sort_combinational
from repro.rtl.expressions import ComponentRef, ConstantField, Expression
from repro.rtl.spec import Specification


@dataclass(frozen=True)
class SpecOptPasses:
    """Which spec-level passes to run (all on by default)."""

    propagate_constants: bool = True
    eliminate_dead: bool = True
    merge_duplicates: bool = True
    #: copy propagation: a selector whose select is constant and whose chosen
    #: case is a bare reference to a combinational component is a wire; its
    #: readers are re-pointed at the referenced component.
    forward_copies: bool = True

    @classmethod
    def none(cls) -> "SpecOptPasses":
        return cls(False, False, False, False)

    @property
    def any_enabled(self) -> bool:
        return (
            self.propagate_constants
            or self.eliminate_dead
            or self.merge_duplicates
            or self.forward_copies
        )


@dataclass(frozen=True)
class SpecOptReport:
    """What the spec-level pipeline did, extending the Section 4.4 report.

    ``component_report`` is the paper's per-component
    :class:`OptimizationReport` computed on the *optimized* specification,
    so callers see both levels of the story in one object.
    """

    #: components proven to hold one value every cycle (name -> value),
    #: whether or not they were subsequently eliminated
    constant_components: dict[str, int] = field(default_factory=dict)
    #: removed constant components and their statically-known values
    eliminated: tuple[tuple[str, int], ...] = ()
    #: removed duplicates: (duplicate name, surviving name)
    merged: tuple[tuple[str, str], ...] = ()
    #: copy-propagated selectors: (selector name, forwarded component name)
    forwarded: tuple[tuple[str, str], ...] = ()
    #: how many component references were rewritten by substitution
    rewritten_references: int = 0
    #: per-component (Section 4.4) analysis of the optimized specification
    component_report: OptimizationReport | None = None

    @property
    def eliminated_count(self) -> int:
        return len(self.eliminated)

    @property
    def merged_count(self) -> int:
        return len(self.merged)

    @property
    def changed(self) -> bool:
        return bool(
            self.eliminated
            or self.merged
            or self.forwarded
            or self.rewritten_references
        )

    def summary(self) -> str:
        return (
            f"specopt: {len(self.constant_components)} constant components, "
            f"{self.eliminated_count} eliminated, {self.merged_count} merged, "
            f"{len(self.forwarded)} forwarded, "
            f"{self.rewritten_references} references rewritten"
        )


# ---------------------------------------------------------------------------
# Expression substitution
# ---------------------------------------------------------------------------


class _Substitution:
    """Rewrites expressions against known constants and renamed components."""

    def __init__(self) -> None:
        self.constants: dict[str, int] = {}
        self.renames: dict[str, str] = {}
        self.rewritten = 0

    def rewrite(self, expression: Expression) -> Expression:
        """Return *expression* with known refs folded / renamed."""
        changed = False
        new_fields = []
        for f in expression.fields:
            if isinstance(f, ComponentRef):
                if f.name in self.constants:
                    new_fields.append(self._fold_ref(f))
                    self.rewritten += 1
                    changed = True
                    continue
                if f.name in self.renames:
                    new_fields.append(replace(f, name=self.renames[f.name]))
                    self.rewritten += 1
                    changed = True
                    continue
            new_fields.append(f)
        if not changed:
            return expression
        rewritten = Expression(tuple(new_fields))
        return replace(rewritten, source=rewritten.to_spec())

    def _fold_ref(self, ref: ComponentRef) -> ConstantField:
        value = self.constants[ref.name]
        if ref.low is None:
            # whole-component reference: same width-None semantics as the ref
            return ConstantField(mask_word(value))
        high = ref.high if ref.high is not None else ref.low
        return ConstantField(
            extract_field(value, ref.low, high), high - ref.low + 1
        )


def _rewrite_component(component: Component, sub: _Substitution) -> Component:
    if isinstance(component, Alu):
        return replace(
            component,
            funct=sub.rewrite(component.funct),
            left=sub.rewrite(component.left),
            right=sub.rewrite(component.right),
        )
    if isinstance(component, Selector):
        return replace(
            component,
            select=sub.rewrite(component.select),
            cases=tuple(sub.rewrite(case) for case in component.cases),
        )
    assert isinstance(component, Memory)
    return replace(
        component,
        address=sub.rewrite(component.address),
        data=sub.rewrite(component.data),
        operation=sub.rewrite(component.operation),
    )


# ---------------------------------------------------------------------------
# Constant folding of whole components
# ---------------------------------------------------------------------------


def _fold_component(component: Component) -> int | None:
    """Per-cycle value of *component* if it is statically constant.

    Returns ``None`` when the component is not constant **or** when folding
    would hide a runtime error (invalid ALU function, selector index out of
    range) — those must still fail at simulation time.
    """
    if isinstance(component, Alu):
        if not (component.funct.is_constant and component.left.is_constant
                and component.right.is_constant):
            return None
        code = component.funct.constant_value()
        if not is_valid_function(code):
            return None
        return dologic(
            code,
            component.left.constant_value(),
            component.right.constant_value(),
        )
    if isinstance(component, Selector):
        if not component.select.is_constant:
            return None
        index = component.select.constant_value()
        if index >= component.case_count:
            return None
        case = component.cases[index]
        if not case.is_constant:
            return None
        return case.constant_value()
    return None  # memories are stateful, never constant


# ---------------------------------------------------------------------------
# Copy propagation
# ---------------------------------------------------------------------------


def _copy_target(component: Component, combinational: set[str]) -> str | None:
    """The component a (rewritten) selector forwards, if it is a pure copy.

    A selector whose select expression is a constant in-range index and
    whose chosen case is a single whole-component reference computes exactly
    the referenced component's (masked) value every cycle.  Only references
    to *combinational* components qualify: their stored values are always
    masked to the machine word, so readers see identical bits whether they
    read the selector or the forwarded component directly.  Memory outputs
    may hold raw out-of-word values (a memory-mapped input can deposit
    anything), so they are never forwarded.
    """
    if not isinstance(component, Selector):
        return None
    if not component.select.is_constant:
        return None
    index = component.select.constant_value()
    if index >= component.case_count:
        return None  # out-of-range select must still fail at simulation time
    case = component.cases[index]
    if len(case.fields) != 1:
        return None
    ref = case.fields[0]
    if not isinstance(ref, ComponentRef) or ref.low is not None:
        return None
    if ref.name not in combinational:
        return None
    return ref.name


# ---------------------------------------------------------------------------
# Duplicate detection
# ---------------------------------------------------------------------------


def _signature(component: Component) -> tuple | None:
    """Hashable identity of a combinational component's definition."""
    if isinstance(component, Alu):
        return (
            "A",
            component.funct.to_spec(),
            component.left.to_spec(),
            component.right.to_spec(),
        )
    if isinstance(component, Selector):
        return (
            "S",
            component.select.to_spec(),
            tuple(case.to_spec() for case in component.cases),
        )
    return None


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


def optimize_spec(
    spec: Specification,
    passes: SpecOptPasses | None = None,
    codegen_options: CodegenOptions | None = None,
) -> tuple[Specification, SpecOptReport]:
    """Run the enabled spec-level passes and return (new spec, report)."""
    passes = passes or SpecOptPasses()
    sub = _Substitution()
    traced = set(spec.traced_names)
    constant_components: dict[str, int] = {}
    eliminated: list[tuple[str, int]] = []
    merged: list[tuple[str, str]] = []
    forwarded: list[tuple[str, str]] = []
    seen_signatures: dict[tuple, str] = {}
    removed: set[str] = set()
    combinational_names = {c.name for c in spec.combinational()}

    # Pass 1 — analysis in dependency order (producers before consumers), so
    # every component is inspected after its combinational inputs have been
    # resolved.  Specifications may contain forward references, which is why
    # analysis order and rewrite order must differ.
    if (passes.propagate_constants or passes.merge_duplicates
            or passes.forward_copies):
        for component in sort_combinational(spec):
            rewritten = _rewrite_component(component, sub)
            if passes.propagate_constants:
                value = _fold_component(rewritten)
                if value is not None:
                    constant_components[component.name] = value
                    sub.constants[component.name] = value
                    if passes.eliminate_dead and component.name not in traced:
                        # every reference folds to the constant, so the
                        # component is dead once substitution has run
                        eliminated.append((component.name, value))
                        removed.add(component.name)
                    continue  # constant components are not merge candidates
            if passes.forward_copies and component.name not in traced:
                # the rewritten case reference already points at its final
                # (renamed) producer, so a forward never chains to a
                # removed component
                target = _copy_target(rewritten, combinational_names - removed)
                if target is not None:
                    forwarded.append((component.name, target))
                    sub.renames[component.name] = target
                    removed.add(component.name)
                    continue
            if passes.merge_duplicates:
                signature = _signature(rewritten)
                if signature is not None:
                    survivor = seen_signatures.get(signature)
                    if survivor is not None and component.name not in traced:
                        merged.append((component.name, survivor))
                        sub.renames[component.name] = survivor
                        removed.add(component.name)
                        continue
                    # traced components can survive as merge targets but are
                    # never merged away themselves
                    seen_signatures.setdefault(signature, component.name)

    # Pass 2 — rewrite every surviving component (in definition order)
    # against the complete substitution.
    sub.rewritten = 0
    kept: list[Component] = [
        _rewrite_component(component, sub)
        for component in spec.components
        if component.name not in removed
    ]
    declarations = tuple(
        declaration
        for declaration in spec.declarations
        if declaration.name not in removed
    )
    optimized = Specification(
        header_comment=spec.header_comment,
        components=tuple(kept),
        declarations=declarations,
        cycles=spec.cycles,
        macros=dict(spec.macros),
        source_name=spec.source_name,
    )
    report = SpecOptReport(
        constant_components=constant_components,
        eliminated=tuple(eliminated),
        merged=tuple(merged),
        forwarded=tuple(forwarded),
        rewritten_references=sub.rewritten,
        component_report=analyze_specification(optimized, codegen_options),
    )
    return optimized, report


def restore_observables(
    report: SpecOptReport,
    final_values: dict[str, int],
    cycles_run: int,
) -> None:
    """Add eliminated/merged components back into a ``final_values`` dict.

    A constant component holds its value from the first evaluated cycle on;
    with zero cycles run nothing was ever evaluated, so every combinational
    value is still the initial zero (matching the interpreter exactly).
    """
    for name, value in report.eliminated:
        final_values[name] = value if cycles_run > 0 else 0
    for duplicate, survivor in report.merged:
        final_values[duplicate] = final_values.get(survivor, 0)
    for selector, target in report.forwarded:
        final_values[selector] = final_values.get(target, 0)


def resolve_passes(specopt: "bool | SpecOptPasses | None") -> SpecOptPasses:
    """Normalise the ``specopt`` argument backends accept."""
    if isinstance(specopt, SpecOptPasses):
        return specopt
    if specopt:
        return SpecOptPasses()
    return SpecOptPasses.none()
