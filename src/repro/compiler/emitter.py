"""Small indentation-aware source emitter used by both code generators."""

from __future__ import annotations


class CodeWriter:
    """Accumulates lines of generated source with managed indentation."""

    def __init__(self, indent_unit: str = "    ") -> None:
        self._lines: list[str] = []
        self._indent = 0
        self._indent_unit = indent_unit

    # -- writing ---------------------------------------------------------------

    def line(self, text: str = "") -> "CodeWriter":
        """Append one line at the current indentation (empty lines unindented)."""
        if text:
            self._lines.append(self._indent_unit * self._indent + text)
        else:
            self._lines.append("")
        return self

    def lines(self, texts: list[str]) -> "CodeWriter":
        for text in texts:
            self.line(text)
        return self

    def blank(self) -> "CodeWriter":
        return self.line("")

    def comment(self, text: str) -> "CodeWriter":
        return self.line(f"# {text}")

    # -- indentation --------------------------------------------------------------

    def indent(self) -> "CodeWriter":
        self._indent += 1
        return self

    def dedent(self) -> "CodeWriter":
        if self._indent == 0:
            raise ValueError("cannot dedent below zero")
        self._indent -= 1
        return self

    class _Block:
        def __init__(self, writer: "CodeWriter") -> None:
            self._writer = writer

        def __enter__(self) -> "CodeWriter":
            return self._writer.indent()

        def __exit__(self, *exc_info: object) -> None:
            self._writer.dedent()

    def block(self, header: str) -> "_Block":
        """Write *header* and return a context manager indenting its body."""
        self.line(header)
        return CodeWriter._Block(self)

    # -- output ----------------------------------------------------------------------

    @property
    def indentation(self) -> int:
        return self._indent

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()
