"""ASIM II-style compilation: specification -> simulator program.

Three layers live here: the paper's code generators (Python and Pascal),
the threaded-code backend (closures over pre-bound locals — the middle
point between interpreting and compiling), and the performance plumbing
shared by all backends (spec-level optimization passes, prepare cache).
"""

from repro.compiler.cache import (
    CacheStats,
    GLOBAL_PREPARE_CACHE,
    PrepareCache,
    clear_prepare_cache,
    prepare_cache_stats,
    spec_fingerprint,
)
from repro.compiler.codegen_pascal import PascalCodeGenerator, generate_pascal
from repro.compiler.codegen_python import (
    PythonCodeGenerator,
    generate_program_python,
    generate_python,
)
from repro.compiler.compiled import CompiledBackend, CompiledSimulation, compile_spec
from repro.compiler.optimizer import (
    CodegenOptions,
    OptimizationReport,
    analyze_specification,
)
from repro.compiler.specopt import (
    SpecOptPasses,
    SpecOptReport,
    optimize_spec,
    restore_observables,
)
from repro.compiler.threaded import ThreadedBackend, ThreadedSimulation, thread_spec

__all__ = [
    "PascalCodeGenerator",
    "generate_pascal",
    "PythonCodeGenerator",
    "generate_program_python",
    "generate_python",
    "CompiledBackend",
    "CompiledSimulation",
    "compile_spec",
    "ThreadedBackend",
    "ThreadedSimulation",
    "thread_spec",
    "CodegenOptions",
    "OptimizationReport",
    "analyze_specification",
    "SpecOptPasses",
    "SpecOptReport",
    "optimize_spec",
    "restore_observables",
    "CacheStats",
    "GLOBAL_PREPARE_CACHE",
    "PrepareCache",
    "clear_prepare_cache",
    "prepare_cache_stats",
    "spec_fingerprint",
]
