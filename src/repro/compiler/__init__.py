"""ASIM II-style compilation: specification -> simulator program."""

from repro.compiler.codegen_pascal import PascalCodeGenerator, generate_pascal
from repro.compiler.codegen_python import PythonCodeGenerator, generate_python
from repro.compiler.compiled import CompiledBackend, CompiledSimulation, compile_spec
from repro.compiler.optimizer import (
    CodegenOptions,
    OptimizationReport,
    analyze_specification,
)

__all__ = [
    "PascalCodeGenerator",
    "generate_pascal",
    "PythonCodeGenerator",
    "generate_python",
    "CompiledBackend",
    "CompiledSimulation",
    "compile_spec",
    "CodegenOptions",
    "OptimizationReport",
    "analyze_specification",
]
