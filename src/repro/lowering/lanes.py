"""Lane-vectorized execution of a lowered :class:`CycleProgram`.

A batch of N run variants of the same machine normally costs N full walks
of the per-cycle schedule, plus N times the per-run serving overhead
(plan construction, I/O coercion, future plumbing, result assembly).
This module executes the whole group in **one walk per cycle**: every
value slot widens from a scalar to an N-element *lane array*, and each
ALU/selector/memory kernel loops over the active lanes inside the cycle
loop — the same shape as continuous batching in inference serving, where
many requests ride one pass over the model.

The evaluator is generic over the IR, so the interpreter and threaded
backends share it unchanged (see
:meth:`repro.core.backend.PreparedSimulation.run_lanes`); the compiled
backend additionally generates a ``simulate_lanes`` entry point with the
lane loop inlined into its module (:mod:`repro.compiler.codegen_python`)
and only falls back here for instrumented (stats-collecting) groups.

Semantics are the scalar semantics, per lane:

* every lane owns its values column, its memory cell arrays and its I/O
  system — nothing is shared between lanes but the schedule walk;
* a lane that raises a :class:`~repro.errors.SimulationError` records the
  error (first error wins, exactly where a scalar run would have raised)
  and leaves the active set at the end of the cycle, so one lane's
  runtime fault never poisons its neighbours;
* statistics-collecting groups give each lane its own
  :class:`~repro.core.instrument.Instrumentation`, calling the same hooks
  in the same order as every scalar backend — lane statistics are
  bit-identical to sequential statistics.

Lane groups are formed from *compatible* requests only (same cycle count,
same instrumentation profile, no trace/override/deadline — see
:func:`repro.serving.executor.lane_compatible`), which is what keeps this
module free of per-lane control flow beyond the error mask.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.backend import resolve_cycles
from repro.core.instrument import Instrumentation
from repro.core.results import SimulationResult
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog
from repro.errors import (
    InvalidAluFunctionError,
    MemoryRangeError,
    SelectorRangeError,
)
from repro.lowering.program import (
    AluStep,
    CycleProgram,
    MemoryStep,
    SelectorStep,
)
from repro.rtl.alu_ops import FUNCTION_COUNT, dologic
from repro.rtl.bits import WORD_MASK

#: Default number of lanes per group when the caller does not choose one.
#: Wide enough to amortise the per-group overhead (one plan, one result
#: pass), narrow enough that heterogeneous batches still fill groups.
DEFAULT_LANE_WIDTH = 16

#: A bound per-lane value producer: ``pull(lane) -> masked machine word``.
LanePull = Callable[[int], int]
#: A bound per-cycle kernel: advances every lane in the given active list.
LaneKernel = Callable[[list], None]


def bind_lane_pull(desc: tuple, values: "list[list[int]]") -> LanePull:
    """Bind a descriptor to the lane-array *values*, per-lane producer.

    The lane twin of :func:`repro.interp.closures.bind_pull`: identical
    masking semantics, with every slot read indexed by lane.
    """
    kind = desc[0]
    if kind == "const":
        constant = desc[1]
        return lambda lane: constant
    if kind == "ref":
        row = values[desc[1]]
        return lambda lane: row[lane] & WORD_MASK
    if kind == "bits":
        _, slot, low, mask = desc
        row = values[slot]
        if low == 0:
            return lambda lane: row[lane] & mask
        return lambda lane: (row[lane] >> low) & mask
    parts = tuple(
        (bind_lane_pull(part, values), offset) for part, offset in desc[1]
    )
    if len(parts) == 2:
        (pull_a, off_a), (pull_b, off_b) = parts
        return lambda lane: (
            (pull_a(lane) << off_a) | (pull_b(lane) << off_b)
        ) & WORD_MASK

    def pull(lane: int) -> int:
        result = 0
        for part_pull, offset in parts:
            result |= part_pull(lane) << offset
        return result & WORD_MASK

    return pull


@dataclass
class LaneContext:
    """Mutable per-group state the bound lane kernels operate on."""

    #: lane arrays, one row per value slot: ``values[slot][lane]``
    values: "list[list[int]]"
    #: per memory name, one cell list per lane
    memory_arrays: "dict[str, list[list[int]]]"
    #: single-element list holding the current cycle (shared by all kernels)
    cycle_box: list
    #: one I/O system per lane
    ios: list
    #: one instrumentation per lane for stats groups, or ``None`` (fast path)
    insts: "list[Instrumentation] | None"
    #: records a lane's first error and flags it for end-of-cycle removal
    fault: Callable


# ---------------------------------------------------------------------------
# Step plans: IR step -> bind function -> bound lane kernel
# ---------------------------------------------------------------------------


def _plan_alu(step: AluStep):
    """Build the lane-kernel bind function for one ALU step."""
    name = step.component.name
    slot = step.slot
    left_desc, right_desc = step.left, step.right
    constant_funct, funct_desc = step.constant_funct, step.funct

    def bind(ctx: LaneContext) -> LaneKernel:
        values = ctx.values
        row = values[slot]
        left = bind_lane_pull(left_desc, values)
        right = bind_lane_pull(right_desc, values)
        insts = ctx.insts
        cycle_box = ctx.cycle_box
        fault = ctx.fault
        if constant_funct is not None:
            code = constant_funct
            if insts is None:
                def kernel(lanes: list) -> None:
                    for lane in lanes:
                        row[lane] = dologic(code, left(lane), right(lane))
                return kernel

            def kernel(lanes: list) -> None:
                cycle = cycle_box[0]
                for lane in lanes:
                    row[lane] = insts[lane].alu(
                        name, code, dologic(code, left(lane), right(lane)),
                        cycle,
                    )
            return kernel

        funct = bind_lane_pull(funct_desc, values)
        if insts is None:
            def kernel(lanes: list) -> None:
                cycle = cycle_box[0]
                for lane in lanes:
                    code = funct(lane)
                    if not 0 <= code < FUNCTION_COUNT:
                        fault(lane, InvalidAluFunctionError(
                            f"ALU '{name}' computed function code {code}",
                            cycle,
                        ))
                        continue
                    row[lane] = dologic(code, left(lane), right(lane))
            return kernel

        def kernel(lanes: list) -> None:
            cycle = cycle_box[0]
            for lane in lanes:
                code = funct(lane)
                if not 0 <= code < FUNCTION_COUNT:
                    fault(lane, InvalidAluFunctionError(
                        f"ALU '{name}' computed function code {code}", cycle
                    ))
                    continue
                row[lane] = insts[lane].alu(
                    name, code, dologic(code, left(lane), right(lane)), cycle
                )
        return kernel

    return bind


def _plan_selector(step: SelectorStep):
    """Build the lane-kernel bind function for one selector step."""
    name = step.component.name
    slot = step.slot
    count = step.component.case_count
    select_desc, case_descs = step.select, step.cases
    constant_cases = step.constant_cases

    def bind(ctx: LaneContext) -> LaneKernel:
        values = ctx.values
        row = values[slot]
        select = bind_lane_pull(select_desc, values)
        insts = ctx.insts
        cycle_box = ctx.cycle_box
        fault = ctx.fault
        if constant_cases is not None and insts is None:
            table = constant_cases

            def kernel(lanes: list) -> None:
                cycle = cycle_box[0]
                for lane in lanes:
                    index = select(lane)
                    if index >= count:
                        fault(lane, SelectorRangeError(
                            f"selector '{name}' index {index} exceeds its "
                            f"{count} cases", cycle,
                        ))
                        continue
                    row[lane] = table[index]
            return kernel

        cases = tuple(bind_lane_pull(desc, values) for desc in case_descs)
        if insts is None:
            def kernel(lanes: list) -> None:
                cycle = cycle_box[0]
                for lane in lanes:
                    index = select(lane)
                    if index >= count:
                        fault(lane, SelectorRangeError(
                            f"selector '{name}' index {index} exceeds its "
                            f"{count} cases", cycle,
                        ))
                        continue
                    row[lane] = cases[index](lane)
            return kernel

        def kernel(lanes: list) -> None:
            cycle = cycle_box[0]
            for lane in lanes:
                index = select(lane)
                if index >= count:
                    fault(lane, SelectorRangeError(
                        f"selector '{name}' index {index} exceeds its "
                        f"{count} cases", cycle,
                    ))
                    continue
                row[lane] = insts[lane].selector(
                    name, index, cases[index](lane), cycle
                )
        return kernel

    return bind


def _plan_memory(step: MemoryStep):
    """Build the (latch, apply) lane-kernel bind functions for one memory."""
    memory = step.component
    name = memory.name
    out_slot = step.out_slot
    size = memory.size
    address_desc, data_desc, operation_desc = (
        step.address, step.data, step.operation,
    )
    addr_slot = step.latch_base
    data_slot = step.latch_base + 1
    op_slot = step.latch_base + 2

    def bind_latch(ctx: LaneContext) -> LaneKernel:
        values = ctx.values
        address = bind_lane_pull(address_desc, values)
        data = bind_lane_pull(data_desc, values)
        operation = bind_lane_pull(operation_desc, values)
        addr_row = values[addr_slot]
        data_row = values[data_slot]
        op_row = values[op_slot]

        def kernel(lanes: list) -> None:
            for lane in lanes:
                addr_row[lane] = address(lane)
                data_row[lane] = data(lane)
                op_row[lane] = operation(lane)
        return kernel

    def bind_apply(ctx: LaneContext) -> LaneKernel:
        values = ctx.values
        addr_row = values[addr_slot]
        data_row = values[data_slot]
        op_row = values[op_slot]
        out_row = values[out_slot]
        cell_rows = ctx.memory_arrays[name]
        ios = ctx.ios
        cycle_box = ctx.cycle_box
        insts = ctx.insts
        fault = ctx.fault

        if insts is None:
            def kernel(lanes: list) -> None:
                cycle = cycle_box[0]
                for lane in lanes:
                    op_word = op_row[lane] & 3
                    address = addr_row[lane]
                    if op_word == 0:
                        if address >= size:
                            fault(lane, MemoryRangeError(
                                f"memory '{name}' address {address} outside "
                                f"its declared range 0..{size - 1}", cycle,
                            ))
                            continue
                        out_row[lane] = cell_rows[lane][address]
                    elif op_word == 1:
                        if address >= size:
                            fault(lane, MemoryRangeError(
                                f"memory '{name}' address {address} outside "
                                f"its declared range 0..{size - 1}", cycle,
                            ))
                            continue
                        out_row[lane] = cell_rows[lane][address] = \
                            data_row[lane]
                    elif op_word == 2:
                        out_row[lane] = ios[lane].read(address, cycle=cycle)
                    else:
                        data = data_row[lane]
                        ios[lane].write(address, data, cycle=cycle)
                        out_row[lane] = data
            return kernel

        def kernel(lanes: list) -> None:
            cycle = cycle_box[0]
            for lane in lanes:
                op_word = op_row[lane]
                operation = op_word & 3
                address = addr_row[lane]
                if operation == 0:
                    if address >= size:
                        fault(lane, MemoryRangeError(
                            f"memory '{name}' address {address} outside its "
                            f"declared range 0..{size - 1}", cycle,
                        ))
                        continue
                    output = cell_rows[lane][address]
                elif operation == 1:
                    if address >= size:
                        fault(lane, MemoryRangeError(
                            f"memory '{name}' address {address} outside its "
                            f"declared range 0..{size - 1}", cycle,
                        ))
                        continue
                    output = cell_rows[lane][address] = data_row[lane]
                elif operation == 2:
                    output = ios[lane].read(address, cycle=cycle)
                else:
                    output = data_row[lane]
                    ios[lane].write(address, output, cycle=cycle)
                # the hook receives the unmasked operation word, exactly
                # like every scalar backend
                out_row[lane] = insts[lane].memory(
                    name, op_word, address, output, cycle
                )
        return kernel

    return bind_latch, bind_apply


# ---------------------------------------------------------------------------
# The whole program, lane-planned
# ---------------------------------------------------------------------------


class LaneProgram:
    """The fast variant of a lowered program, planned for lane execution.

    Built once per :class:`CycleProgram` (via its ``artifact`` memo, see
    :func:`lane_program`); :meth:`bind` closes the plans over one lane
    group's mutable state.  Only the *fast* variant is planned: lane
    groups never carry an ``override`` (scalar fallback), so the full
    pre-specopt schedule is never needed here.
    """

    def __init__(self, program: CycleProgram) -> None:
        self.program = program
        self.variant = program.fast
        self._combinational_binds = [
            _plan_alu(step) if isinstance(step, AluStep)
            else _plan_selector(step)
            for step in self.variant.steps
        ]
        self._memory_binds = [
            _plan_memory(step) for step in self.variant.memory_steps
        ]

    def bind(self, ctx: LaneContext) -> "list[LaneKernel]":
        """Bind every plan to *ctx*: combinational kernels in dependency
        order, then every memory latch, then every memory apply — the
        scalar cycle structure, per lane."""
        kernels: list[LaneKernel] = [
            bind(ctx) for bind in self._combinational_binds
        ]
        latch_kernels = []
        apply_kernels = []
        for bind_latch, bind_apply in self._memory_binds:
            latch_kernels.append(bind_latch(ctx))
            apply_kernels.append(bind_apply(ctx))
        kernels.extend(latch_kernels)
        kernels.extend(apply_kernels)
        return kernels


def lane_program(program: CycleProgram) -> LaneProgram:
    """The memoized lane plan of *program* (shared like closure plans)."""
    plan, _hit = program.artifact(("lanes",), lambda: LaneProgram(program))
    return plan


@dataclass
class LaneOutcome:
    """What one lane produced: exactly one of ``result``/``error`` is set."""

    result: SimulationResult | None
    error: Exception | None


def run_lanes(
    program: CycleProgram,
    cycles: int | None = None,
    ios: Sequence = (),
    collect_stats: bool = True,
    backend_name: str = "lane",
    prepare_seconds: float = 0.0,
) -> "list[LaneOutcome]":
    """Execute one lane group over *program*: one I/O system per lane.

    Every lane runs the same cycle count with the fast-path (untraced)
    semantics; per-lane statistics are collected when *collect_stats*.
    Returns one :class:`LaneOutcome` per lane, in lane order — a lane
    whose run raised carries the exact error a scalar run would have
    raised, and its neighbours complete normally.
    """
    ios = list(ios)
    lane_count = len(ios)
    if lane_count == 0:
        return []
    cycle_count = resolve_cycles(program.spec, cycles)
    start = time.perf_counter()

    values = [[value] * lane_count for value in program.initial_values()]
    memory_arrays = {
        name: [list(cells) for _ in range(lane_count)]
        for name, cells in program.initial_memory_arrays().items()
    }
    errors: "list[Exception | None]" = [None] * lane_count
    fault_flag = [False]

    def fault(lane: int, exc: Exception) -> None:
        if errors[lane] is None:
            errors[lane] = exc
        fault_flag[0] = True

    insts = None
    if collect_stats:
        insts = [
            Instrumentation(stats=SimulationStats())
            for _ in range(lane_count)
        ]
    cycle_box = [0]
    ctx = LaneContext(
        values=values,
        memory_arrays=memory_arrays,
        cycle_box=cycle_box,
        ios=ios,
        insts=insts,
        fault=fault,
    )
    kernels = lane_program(program).bind(ctx)

    active = list(range(lane_count))
    cycle = 0
    while cycle < cycle_count and active:
        cycle_box[0] = cycle
        for kernel in kernels:
            kernel(active)
        if fault_flag[0]:
            # faulted lanes leave the group at the cycle boundary; their
            # recorded error is the first one raised, like a scalar run
            active = [lane for lane in active if errors[lane] is None]
            fault_flag[0] = False
        cycle += 1
    run_seconds = (time.perf_counter() - start) / lane_count

    variant = program.fast
    outcomes: list[LaneOutcome] = []
    for lane in range(lane_count):
        error = errors[lane]
        if error is not None:
            outcomes.append(LaneOutcome(result=None, error=error))
            continue
        lane_values = [row[lane] for row in values]
        final_values = program.visible_values(lane_values, variant)
        program.restore_final_values(final_values, cycle_count)
        stats = SimulationStats()
        if insts is not None:
            inst = insts[lane]
            inst.finish(cycle_count, variant.evaluations_per_cycle)
            stats = inst.stats
        outcomes.append(LaneOutcome(
            result=SimulationResult(
                backend=backend_name,
                cycles_run=cycle_count,
                final_values=final_values,
                memory_contents={
                    name: list(rows[lane])
                    for name, rows in memory_arrays.items()
                },
                outputs=list(ios[lane].outputs),
                trace=TraceLog(enabled=False),
                stats=stats,
                prepare_seconds=prepare_seconds,
                run_seconds=run_seconds,
            ),
            error=None,
        ))
    return outcomes
