"""The shared lowering pipeline: ``Specification`` -> ``CycleProgram`` IR.

The paper frames ASIM and ASIM II as two ends of one design space — tables
interpreted per cycle versus a compiled program.  Historically each backend
in this package re-derived its own view of a specification (schedule, slot
layout, masks, observation hooks).  This module centralises that work into
one intermediate representation every backend consumes:

``lower(spec, specopt)`` runs the spec-level optimization pipeline
(:mod:`repro.compiler.specopt`), dependency-schedules the result
(:mod:`repro.rtl.dependency`), assigns every original component a value
slot, and lowers every expression to flat descriptors
(:mod:`repro.lowering.descriptors`).  The product is a
:class:`CycleProgram`: a picklable, backend-neutral program holding

* a **fast variant** — the flat step list of the optimized specification,
  what the hot path executes;
* a **full variant** — the step list of the *original* specification,
  sharing the same slot layout, used whenever interpreter-exact visibility
  of every pre-specopt component is required (a per-cycle ``override``
  hook must see and be able to fault every original component);
* an **observables map** from every pre-specopt component name to how its
  value is recovered from an optimized run (live slot, constant, or alias
  of the surviving duplicate), which resolves run-time trace requests and
  restores eliminated components into ``final_values``.

``lower_cached`` keys the whole IR on the prepare cache
(:mod:`repro.compiler.cache`), so the cache stores one backend-neutral
artifact per (specification, passes) pair; backend-private derivations
(closure plans, generated modules) are memoized *on* the program via
:meth:`CycleProgram.artifact` and therefore shared by every prepared
simulation that came out of the same cache entry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.compiler.cache import (
    DiskCache,
    PrepareCache,
    artifact_key,
    spec_fingerprint,
)
from repro.compiler.specopt import (
    SpecOptPasses,
    SpecOptReport,
    optimize_spec,
    resolve_passes,
)
from repro.lowering.descriptors import lower_expression
from repro.rtl.alu_ops import FUNCTION_COUNT
from repro.rtl.components import Alu, Component, Memory, Selector
from repro.rtl.dependency import sort_combinational
from repro.rtl.spec import Specification

# Observable resolutions: how a pre-specopt component name is recovered
# from an optimized run.
#   ("live", name)     the component survived; read it directly
#   ("const", value)   eliminated constant; holds `value` from cycle 1 on
#   ("alias", name)    merged duplicate / forwarded copy of `name`
Resolution = tuple


@dataclass(frozen=True)
class AluStep:
    """One ALU evaluation: descriptors plus the component it came from."""

    component: Alu
    slot: int
    left: tuple
    right: tuple
    #: descriptor of a dynamic function expression, or ``None`` when constant
    funct: tuple | None
    #: the constant, *valid* function code (``None`` when dynamic or invalid)
    constant_funct: int | None


@dataclass(frozen=True)
class SelectorStep:
    """One selector evaluation: select/case descriptors plus metadata."""

    component: Selector
    slot: int
    select: tuple
    cases: tuple[tuple, ...]
    #: folded case table when every case is constant, else ``None``
    constant_cases: tuple[int, ...] | None


@dataclass(frozen=True)
class MemoryStep:
    """One memory latch + update: descriptors and scratch-slot layout.

    ``latch_base`` indexes three scratch slots in the values array holding
    this memory's latched address / data / operation for the current cycle,
    so every memory sees a consistent pre-update view (all registers clock
    together) without allocating a request object per cycle.
    """

    component: Memory
    out_slot: int
    latch_base: int
    address: tuple
    data: tuple
    operation: tuple


def _combinational_step(component: Component, slots: dict[str, int]):
    if isinstance(component, Alu):
        constant_funct: int | None = None
        funct: tuple | None = None
        if component.funct.is_constant:
            code = component.funct.constant_value()
            if 0 <= code < FUNCTION_COUNT:
                constant_funct = code
            else:
                funct = ("const", code)
        else:
            funct = lower_expression(component.funct, slots)
        return AluStep(
            component=component,
            slot=slots[component.name],
            left=lower_expression(component.left, slots),
            right=lower_expression(component.right, slots),
            funct=funct,
            constant_funct=constant_funct,
        )
    assert isinstance(component, Selector)
    cases = tuple(lower_expression(case, slots) for case in component.cases)
    constant_cases: tuple[int, ...] | None = None
    if all(desc[0] == "const" for desc in cases):
        constant_cases = tuple(desc[1] for desc in cases)
    return SelectorStep(
        component=component,
        slot=slots[component.name],
        select=lower_expression(component.select, slots),
        cases=cases,
        constant_cases=constant_cases,
    )


@dataclass(frozen=True)
class ProgramVariant:
    """One executable view of a specification: schedule plus step lists."""

    #: the specification this variant executes (optimized or original)
    spec: Specification
    #: dependency-sorted combinational components
    ordered: tuple[Component, ...]
    #: memories in definition order (identical across variants)
    memories: tuple[Memory, ...]
    #: combinational steps, one per entry of ``ordered``
    steps: tuple[AluStep | SelectorStep, ...]
    #: memory steps, one per entry of ``memories``
    memory_steps: tuple[MemoryStep, ...]

    @property
    def evaluations_per_cycle(self) -> int:
        """Component evaluations one cycle performs (statistics basis)."""
        return len(self.ordered) + len(self.memories)


def _build_variant(
    spec: Specification, slots: dict[str, int], latch_base: int
) -> ProgramVariant:
    ordered = tuple(sort_combinational(spec))
    memories = tuple(spec.memories())
    return ProgramVariant(
        spec=spec,
        ordered=ordered,
        memories=memories,
        steps=tuple(_combinational_step(c, slots) for c in ordered),
        memory_steps=tuple(
            MemoryStep(
                component=memory,
                out_slot=slots[memory.name],
                latch_base=latch_base + 3 * index,
                address=lower_expression(memory.address, slots),
                data=lower_expression(memory.data, slots),
                operation=lower_expression(memory.operation, slots),
            )
            for index, memory in enumerate(memories)
        ),
    )


class CycleProgram:
    """A specification lowered to the backend-neutral per-cycle IR.

    Instances are immutable after construction and picklable (the
    backend-private artifact memo is dropped on pickling), so one lowered
    program can be cached, shipped to worker processes, and shared by every
    backend and every prepared simulation of the same machine.
    """

    def __init__(
        self,
        spec: Specification,
        passes: SpecOptPasses | None = None,
    ) -> None:
        passes = passes or SpecOptPasses.none()
        self.spec = spec
        self.passes = passes
        if passes.any_enabled:
            opt_spec, report = optimize_spec(spec, passes)
        else:
            opt_spec, report = spec, None
        #: the optimized specification the fast variant executes
        self.opt_spec = opt_spec
        #: what the spec-level pipeline did, or ``None`` if it was disabled
        self.optimization: SpecOptReport | None = report

        # Slot layout over the ORIGINAL specification, shared by both
        # variants: combinational components in definition order, then
        # memory outputs, then three latch scratch slots per memory.
        slots: dict[str, int] = {}
        for component in spec.combinational():
            slots[component.name] = len(slots)
        for memory in spec.memories():
            slots[memory.name] = len(slots)
        self.slots = slots
        self.latch_base = len(slots)
        self.value_count = self.latch_base + 3 * len(spec.memories())

        #: the optimized (hot path) variant
        self.fast = _build_variant(opt_spec, slots, self.latch_base)
        #: the original-specification variant (``is fast`` when unchanged)
        self.full = (
            self.fast
            if report is None or not report.changed
            else _build_variant(spec, slots, self.latch_base)
        )

        # Observables: every pre-specopt component name -> resolution.
        observables: dict[str, Resolution] = {}
        eliminated = dict(report.eliminated) if report else {}
        aliases = dict(report.merged) if report else {}
        if report:
            aliases.update(report.forwarded)
        surviving = set(opt_spec.component_names())
        for component in spec.components:
            name = component.name
            if name in surviving:
                observables[name] = ("live", name)
            elif name in eliminated:
                observables[name] = ("const", eliminated[name])
            elif name in aliases:
                observables[name] = ("alias", aliases[name])
            else:  # pragma: no cover - specopt removes via the maps above
                observables[name] = ("const", 0)
        self.observables = observables
        #: the non-``live`` subset, precomputed so restoring final values
        #: costs nothing when specopt eliminated or aliased no components
        #: (the lane path restores once per lane and leans on that)
        self.restore_items = tuple(
            item for item in observables.items() if item[1][0] != "live"
        )

        # Backend-private artifact memo (closure plans, generated modules);
        # excluded from pickling — artifacts are re-derived on demand.
        self._artifacts: dict = {}
        self._artifact_lock = threading.Lock()

    # -- derived artifacts ---------------------------------------------------

    def artifact(self, key: tuple, factory: Callable[[], object]):
        """Return ``(artifact, hit)``, memoizing *factory*'s result on *key*.

        Because the prepare cache stores the :class:`CycleProgram` itself,
        memoizing backend-private derivations here gives every prepared
        simulation of a cached program the same closure plans / compiled
        module without the cache ever holding unpicklable objects.
        """
        with self._artifact_lock:
            if key in self._artifacts:
                return self._artifacts[key], True
        value = factory()
        with self._artifact_lock:
            if key in self._artifacts:  # lost a race: keep the first
                return self._artifacts[key], True
            self._artifacts[key] = value
        return value, False

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_artifacts"]
        del state["_artifact_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._artifacts = {}
        self._artifact_lock = threading.Lock()

    # -- introspection -------------------------------------------------------

    @property
    def changed(self) -> bool:
        """True when spec-level optimization altered the specification."""
        return self.full is not self.fast

    @property
    def ordered(self) -> tuple[Component, ...]:
        """The fast variant's combinational schedule."""
        return self.fast.ordered

    @property
    def memories(self) -> tuple[Memory, ...]:
        return self.fast.memories

    def variant(self, needs_original: bool) -> ProgramVariant:
        """Pick the step list for a run: full when the run must see every
        pre-specopt component, fast otherwise."""
        return self.full if needs_original else self.fast

    # -- per-run state -------------------------------------------------------

    def initial_values(self) -> list[int]:
        """Fresh values array: zeros plus each memory's initial output."""
        values = [0] * self.value_count
        for memory in self.fast.memories:
            values[self.slots[memory.name]] = memory.initial_output
        return values

    def initial_memory_arrays(self) -> dict[str, list[int]]:
        return {
            memory.name: memory.initial_cell_values()
            for memory in self.fast.memories
        }

    # -- results -------------------------------------------------------------

    def visible_values(
        self, values: list[int], variant: ProgramVariant | None = None
    ) -> dict[str, int]:
        """Final values dict of *variant* in definition order."""
        variant = variant or self.fast
        slots = self.slots
        return {
            component.name: values[slots[component.name]]
            for component in variant.spec.components
        }

    def restore_final_values(
        self, final_values: dict[str, int], cycles_run: int
    ) -> None:
        """Recover eliminated/aliased components via the observables map.

        A constant component holds its value from the first evaluated cycle
        on; with zero cycles run every combinational value is still the
        initial zero (matching the interpreter exactly).  Only the
        precomputed non-live observables are walked, so the common
        no-specopt case returns immediately.
        """
        for name, resolution in self.restore_items:
            if resolution[0] == "const":
                final_values[name] = resolution[1] if cycles_run > 0 else 0
            else:  # alias
                final_values[name] = final_values.get(resolution[1], 0)


def lower(
    spec: Specification,
    specopt: bool | SpecOptPasses | None = False,
) -> CycleProgram:
    """Lower *spec* through (optional) specopt into a :class:`CycleProgram`."""
    return CycleProgram(spec, resolve_passes(specopt))


def lower_cached(
    spec: Specification,
    specopt: bool | SpecOptPasses | None,
    cache: PrepareCache | None,
    disk: DiskCache | None = None,
) -> tuple[CycleProgram, bool]:
    """Lower via the prepare cache; returns ``(program, cache_hit)``.

    The cache stores the backend-neutral IR keyed on the specification
    fingerprint plus the exact pass configuration — never backend-private
    artifacts (those live on the program, see :meth:`CycleProgram.artifact`).

    With *disk* set, an in-process miss consults the persistent artifact
    store before lowering: a stored IR for the same (fingerprint, passes)
    pair loads instead of rebuilding — that is the process-pool worker's
    cold-start path — and a fresh build is written back for the next
    process.  A damaged disk entry reads as a miss and is overwritten by
    the rebuild.  ``cache_hit`` is true whenever lowering was skipped,
    from either layer.
    """
    passes = resolve_passes(specopt)
    if cache is None and disk is None:
        return lower(spec, passes), False
    from_disk = False

    def build() -> CycleProgram:
        nonlocal from_disk
        if disk is not None:
            fingerprint = spec_fingerprint(spec)
            key = artifact_key(passes)
            loaded = disk.load_program(fingerprint, key)
            if loaded is not None:
                from_disk = True
                return loaded
            program = CycleProgram(spec, passes)
            disk.store_program(fingerprint, key, program)
            return program
        return CycleProgram(spec, passes)

    if cache is None:
        program = build()
        return program, from_disk
    key = cache.key_for("lowered", spec, passes)
    program, hit = cache.get_or_create(key, build)
    return program, hit or from_disk
