"""Expression lowering: expression trees -> flat descriptor tuples.

Every backend needs the same facts about an expression — which value slot
each component reference reads, which bits it extracts, how concatenation
fields pack into the machine word.  This module lowers an
:class:`~repro.rtl.expressions.Expression` against a slot assignment into a
small plain tuple so those facts are computed once, at lowering time, and
shared by every consumer: the threaded backend binds descriptors into
closures (:mod:`repro.interp.closures`), and the :class:`CycleProgram` IR
(:mod:`repro.lowering.program`) carries them as its picklable step payload.

Descriptor kinds:

* ``("const", value)`` — constant, already masked to its width;
* ``("ref", slot)`` — whole-component reference (mask on read);
* ``("bits", slot, low, mask)`` — bit-field reference;
* ``("concat", ((field_desc, offset), ...))`` — multi-field concatenation,
  offsets taken from the expression's precomputed layout.
"""

from __future__ import annotations

from repro.rtl.bits import mask_for_width
from repro.rtl.expressions import ComponentRef, Expression


def lower_expression(expression: Expression, slots: dict[str, int]) -> tuple:
    """Lower *expression* to a descriptor against the slot assignment."""
    if expression.is_constant:
        return ("const", expression.constant_value())
    fields = expression.fields
    if len(fields) == 1:
        return _lower_field(fields[0], slots)
    parts = tuple(
        (_lower_field(field, slots), offset)
        for field, offset, _mask in expression.layout
    )
    return ("concat", parts)


def _lower_field(f, slots: dict[str, int]) -> tuple:
    if f.is_constant:
        return ("const", f.evaluate(lambda name: 0))
    assert isinstance(f, ComponentRef)
    slot = slots[f.name]
    if f.low is None:
        return ("ref", slot)
    width = f.width
    assert width is not None
    return ("bits", slot, f.low, mask_for_width(width))
