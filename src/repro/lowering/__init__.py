"""Shared lowering pipeline: specification -> CycleProgram IR.

One lowering, three consumers.  ``lower`` (and its cache-aware sibling
``lower_cached``) turns a :class:`~repro.rtl.spec.Specification` through the
spec-level optimization pipeline into a :class:`CycleProgram` — a flat,
picklable, dependency-scheduled step list with precomputed masks, slot
layouts, and an observables map back to the pre-specopt component names.
The interpreter walks the program's schedule, the threaded backend binds
its descriptors into closures, and the compiled backend generates code from
it; the prepare cache stores the program itself rather than any
backend-private artifact.
"""

from repro.lowering.descriptors import lower_expression
from repro.lowering.program import (
    AluStep,
    CycleProgram,
    MemoryStep,
    ProgramVariant,
    SelectorStep,
    lower,
    lower_cached,
)

__all__ = [
    "AluStep",
    "CycleProgram",
    "MemoryStep",
    "ProgramVariant",
    "SelectorStep",
    "lower",
    "lower_cached",
    "lower_expression",
]
