"""Expression model for the ASIM II specification language.

An expression is a comma-separated concatenation of *fields* (Figure 3.1 of
the paper).  The leftmost field occupies the most significant bits of the
result and the rightmost field bit 0.  A field is one of:

* a numeric constant (``3048``, ``$3a``, ``%110``, ``^8`` or sums of these),
  optionally restricted to an explicit width with ``constant.width``;
* a binary bit string ``#0101`` whose width is its number of digits;
* a component reference ``name``, ``name.bit`` or ``name.from.to``
  (bit positions zero-based, inclusive).

A field with no explicit width (a bare constant or a whole-component
reference) occupies all remaining bits of the 31-bit word, so it may only
appear as the leftmost field of a concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.errors import (
    ExpressionWidthError,
    MalformedExpressionError,
    MalformedNumberError,
)
from repro.rtl import numbers
from repro.rtl.bits import WORD_BITS, WORD_MASK, mask_for_width, mask_word

#: Type of the value-lookup callable handed to :meth:`Expression.evaluate`.
ValueLookup = Callable[[str], int]
#: Type of the name-resolver handed to the code generators.
NameResolver = Callable[[str], str]


@dataclass(frozen=True)
class Field:
    """Base class for expression fields."""

    @property
    def width(self) -> int | None:
        """Field width in bits, or ``None`` for "all remaining bits"."""
        raise NotImplementedError

    @property
    def is_constant(self) -> bool:
        return False

    def referenced_components(self) -> Iterator[str]:
        """Yield the names of components this field reads."""
        return iter(())

    def evaluate(self, lookup: ValueLookup) -> int:
        """Value of the field (already masked to its width)."""
        raise NotImplementedError

    def to_python(self, resolve: NameResolver) -> str:
        """Python expression computing this field's value."""
        raise NotImplementedError

    def to_spec(self) -> str:
        """Render the field back into specification syntax."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantField(Field):
    """A numeric constant, optionally limited to an explicit width."""

    value: int
    explicit_width: int | None = None

    def __post_init__(self) -> None:
        if self.value < 0:
            raise MalformedExpressionError(f"negative constant {self.value}")
        if self.explicit_width is not None and self.explicit_width <= 0:
            raise MalformedExpressionError(
                f"constant width must be positive, got {self.explicit_width}"
            )
        # Pre-mask once: evaluate() runs every cycle on the interpreter's
        # hot path (the dataclass is frozen, hence object.__setattr__).
        if self.explicit_width is None:
            masked = mask_word(self.value)
        else:
            masked = self.value & mask_for_width(self.explicit_width)
        object.__setattr__(self, "_masked_value", masked)

    @property
    def width(self) -> int | None:
        return self.explicit_width

    @property
    def is_constant(self) -> bool:
        return True

    @property
    def masked_value(self) -> int:
        return self._masked_value

    def evaluate(self, lookup: ValueLookup) -> int:
        return self._masked_value

    def to_python(self, resolve: NameResolver) -> str:
        return str(self.masked_value)

    def to_spec(self) -> str:
        if self.explicit_width is None:
            return str(self.value)
        return f"{self.value}.{self.explicit_width}"


@dataclass(frozen=True)
class BitStringField(Field):
    """A ``#``-prefixed binary string with an explicit width."""

    bits: str

    def __post_init__(self) -> None:
        if not self.bits or any(ch not in "01" for ch in self.bits):
            raise MalformedExpressionError(f"malformed bit string '#{self.bits}'")

    @property
    def width(self) -> int | None:
        return len(self.bits)

    @property
    def is_constant(self) -> bool:
        return True

    @property
    def value(self) -> int:
        return int(self.bits, 2)

    def evaluate(self, lookup: ValueLookup) -> int:
        return self.value

    def to_python(self, resolve: NameResolver) -> str:
        return str(self.value)

    def to_spec(self) -> str:
        return f"#{self.bits}"


@dataclass(frozen=True)
class ComponentRef(Field):
    """A reference to another component, optionally to a bit field of it."""

    name: str
    low: int | None = None
    high: int | None = None

    def __post_init__(self) -> None:
        if self.high is not None and self.low is None:
            raise MalformedExpressionError(
                f"component reference '{self.name}' has a high bit but no low bit"
            )
        if self.low is not None and self.low < 0:
            raise MalformedExpressionError(
                f"negative bit position in reference to '{self.name}'"
            )
        if self.high is not None and self.high < self.low:
            raise MalformedExpressionError(
                f"bit field {self.low}..{self.high} of '{self.name}' is reversed"
            )
        # Pre-compute the field mask once; evaluate() runs every cycle on the
        # interpreter's hot path (frozen dataclass, hence object.__setattr__).
        if self.low is None:
            mask = None
        elif self.high is None:
            mask = 1
        else:
            mask = mask_for_width(self.high - self.low + 1)
        object.__setattr__(self, "_field_mask", mask)

    @property
    def width(self) -> int | None:
        if self.low is None:
            return None
        if self.high is None:
            return 1
        return self.high - self.low + 1

    def referenced_components(self) -> Iterator[str]:
        yield self.name

    def evaluate(self, lookup: ValueLookup) -> int:
        mask = self._field_mask
        if mask is None:
            return mask_word(lookup(self.name))
        return (lookup(self.name) >> self.low) & mask

    def to_python(self, resolve: NameResolver) -> str:
        ref = resolve(self.name)
        if self.low is None:
            return ref
        width = self.width
        assert width is not None
        mask = mask_for_width(width)
        if self.low == 0:
            return f"({ref} & {mask})"
        return f"(({ref} >> {self.low}) & {mask})"

    def to_spec(self) -> str:
        if self.low is None:
            return self.name
        if self.high is None:
            return f"{self.name}.{self.low}"
        return f"{self.name}.{self.low}.{self.high}"


@dataclass(frozen=True)
class Expression:
    """A concatenation of fields, leftmost field most significant."""

    fields: tuple[Field, ...]
    source: str = ""

    def __post_init__(self) -> None:
        if not self.fields:
            raise MalformedExpressionError("empty expression")
        self._check_widths()
        # Pre-compute the concatenation layout — (field, shift, width mask or
        # None for the unbounded leftmost field) — so evaluate() does no
        # width arithmetic per cycle (frozen dataclass: object.__setattr__).
        layout = []
        offset = 0
        for field in reversed(self.fields):
            width = field.width
            mask = None if width is None else mask_for_width(width)
            layout.append((field, offset, mask))
            offset = WORD_BITS if width is None else offset + width
        object.__setattr__(self, "_layout", tuple(layout))

    def _check_widths(self) -> None:
        """Static width check: bounded fields must fit in the word and an
        unbounded field may only appear leftmost."""
        offset = 0
        for position, field in enumerate(reversed(self.fields)):
            is_leftmost = position == len(self.fields) - 1
            width = field.width
            if width is None:
                if not is_leftmost:
                    raise ExpressionWidthError(
                        f"field '{field.to_spec()}' has no explicit width and is "
                        f"not the leftmost field of '{self.describe()}'"
                    )
                width = WORD_BITS - offset
            if offset + width > WORD_BITS:
                raise ExpressionWidthError(
                    f"too many bits in expression '{self.describe()}'"
                )
            offset += width

    # -- introspection ------------------------------------------------------

    @property
    def layout(self) -> tuple:
        """The precomputed concatenation layout: ``(field, shift, mask)``.

        One entry per field, rightmost first; ``mask`` is ``None`` for the
        unbounded leftmost field.  This is the layout ``evaluate`` walks
        every cycle; the lowering pipeline (:mod:`repro.lowering`) reads it
        so no consumer ever recomputes field offsets.
        """
        return self._layout

    def describe(self) -> str:
        return self.source or self.to_spec()

    @property
    def is_constant(self) -> bool:
        return all(field.is_constant for field in self.fields)

    def constant_value(self) -> int:
        """Value of a constant expression (raises if not constant)."""
        if not self.is_constant:
            raise MalformedExpressionError(
                f"expression '{self.describe()}' is not constant"
            )
        return self.evaluate(lambda name: 0)

    @property
    def total_width(self) -> int:
        """Width of the expression in bits (unbounded fields count as 31)."""
        offset = 0
        for field in reversed(self.fields):
            width = field.width
            if width is None:
                return WORD_BITS
            offset += width
        return min(offset, WORD_BITS)

    def referenced_components(self) -> Iterator[str]:
        for field in self.fields:
            yield from field.referenced_components()

    def referenced_names(self) -> set[str]:
        return set(self.referenced_components())

    # -- evaluation & code generation ---------------------------------------

    def evaluate(self, lookup: ValueLookup) -> int:
        """Evaluate against *lookup*, which maps component name -> value."""
        layout = self._layout
        if len(layout) == 1:
            # single field: its own evaluate already masks to width
            return layout[0][0].evaluate(lookup) & WORD_MASK
        result = 0
        for field, offset, mask in layout:
            value = field.evaluate(lookup)
            if mask is None:
                result |= value << offset
            else:
                result |= (value & mask) << offset
        return result & WORD_MASK

    def evaluate_in(self, values: Mapping[str, int]) -> int:
        """Convenience wrapper: evaluate against a mapping of values."""
        return self.evaluate(lambda name: values[name])

    def to_python(self, resolve: NameResolver) -> str:
        """Emit a Python expression computing this value.

        Constant expressions fold to a literal; single fields emit without a
        wrapping mask (each field already masks itself).
        """
        if self.is_constant:
            return str(self.constant_value())
        parts: list[str] = []
        offset = 0
        for field in reversed(self.fields):
            code = field.to_python(resolve)
            if offset:
                code = f"({code} << {offset})"
            parts.append(code)
            width = field.width
            offset = WORD_BITS if width is None else offset + width
        if len(parts) == 1:
            return parts[0]
        # the leftmost field may be unbounded: mask the concatenation back
        # into the machine word exactly as evaluate() does
        joined = " | ".join(reversed(parts))
        return f"(({joined}) & {mask_for_width(WORD_BITS)})"

    def to_spec(self) -> str:
        return ",".join(field.to_spec() for field in self.fields)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_LETTERS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_NAME_CHARS = _LETTERS | set("0123456789")


def _parse_constant_field(text: str) -> ConstantField:
    head, sep, tail = text.partition(".")
    try:
        value = numbers.parse_number(head)
    except MalformedNumberError as exc:
        raise MalformedExpressionError(str(exc)) from exc
    if not sep:
        return ConstantField(value)
    try:
        width = numbers.parse_number(tail)
    except MalformedNumberError as exc:
        raise MalformedExpressionError(
            f"malformed width in constant field '{text}'"
        ) from exc
    return ConstantField(value, width)


def _parse_component_ref(text: str) -> ComponentRef:
    parts = text.split(".")
    name = parts[0]
    if not name or name[0] not in _LETTERS or any(
        ch not in _NAME_CHARS for ch in name
    ):
        raise MalformedExpressionError(f"invalid component name '{name}'")
    if len(parts) == 1:
        return ComponentRef(name)
    try:
        if len(parts) == 2:
            return ComponentRef(name, numbers.parse_number(parts[1]))
        if len(parts) == 3:
            return ComponentRef(
                name, numbers.parse_number(parts[1]), numbers.parse_number(parts[2])
            )
    except MalformedNumberError as exc:
        raise MalformedExpressionError(
            f"malformed bit position in reference '{text}'"
        ) from exc
    raise MalformedExpressionError(f"too many bit positions in reference '{text}'")


def parse_field(text: str) -> Field:
    """Parse a single field of an expression."""
    if not text:
        raise MalformedExpressionError("empty field in expression")
    first = text[0]
    if first == "#":
        return BitStringField(text[1:])
    if numbers.is_number_start(first):
        return _parse_constant_field(text)
    if first in _LETTERS:
        return _parse_component_ref(text)
    raise MalformedExpressionError(f"malformed expression field '{text}'")


def parse_expression(text: str) -> Expression:
    """Parse a whitespace-free expression token into an :class:`Expression`.

    Macro references must already have been expanded by the caller.
    """
    if text is None or text == "":
        raise MalformedExpressionError("empty expression")
    fields = tuple(parse_field(part) for part in text.split(","))
    return Expression(fields, source=text)


def constant_expression(value: int, width: int | None = None) -> Expression:
    """Build an expression consisting of a single constant field."""
    return Expression((ConstantField(value, width),), source=str(value))


def reference_expression(
    name: str, low: int | None = None, high: int | None = None
) -> Expression:
    """Build an expression consisting of a single component reference."""
    ref = ComponentRef(name, low, high)
    return Expression((ref,), source=ref.to_spec())
