"""Specification validation.

The original compiler performs two kinds of checks after reading a
specification:

* hard errors — a referenced component that is never defined ("Component <x>
  not found"), circular combinational dependencies, invalid names;
* warnings (``checkdcl``) — names declared in the name list but never
  defined, and components defined but never declared.

:func:`validate` reproduces both: hard errors raise, warnings are returned
so the caller (or the ``Simulator`` facade) can surface them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.rtl.bits import WORD_BITS
from repro.rtl.components import Memory, Selector
from repro.rtl.dependency import sort_combinational
from repro.rtl.expressions import ComponentRef
from repro.rtl.spec import Specification


@dataclass
class ValidationReport:
    """Outcome of validating a specification."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ValidationError(self.errors)


def _check_references(spec: Specification, report: ValidationReport) -> None:
    defined = set(spec.component_names())
    for component, role, expression in spec.iter_expressions():
        for name in expression.referenced_names():  # type: ignore[attr-defined]
            if name not in defined:
                report.errors.append(
                    f"component <{name}> not found "
                    f"(referenced by {component.name} {role})"
                )


def _check_bit_fields(spec: Specification, report: ValidationReport) -> None:
    for component, role, expression in spec.iter_expressions():
        for fld in expression.fields:  # type: ignore[attr-defined]
            if isinstance(fld, ComponentRef) and fld.low is not None:
                high = fld.high if fld.high is not None else fld.low
                if high >= WORD_BITS:
                    report.errors.append(
                        f"bit {high} of '{fld.name}' referenced by "
                        f"{component.name} {role} exceeds the {WORD_BITS}-bit word"
                    )


def _check_memory_addresses(spec: Specification, report: ValidationReport) -> None:
    for memory in spec.memories():
        if not isinstance(memory, Memory):
            continue
        if memory.address.is_constant:
            address = memory.address.constant_value()
            if address >= memory.size:
                report.errors.append(
                    f"memory '{memory.name}' has a constant address {address} "
                    f"outside its declared range 0..{memory.size - 1}"
                )


def _check_selector_coverage(spec: Specification, report: ValidationReport) -> None:
    """Warn when a selector's index width can exceed its case list.

    Appendix A leaves coverage to the user ("It is up to the user to provide
    enough values for all possible address values"), so this is a warning,
    not an error — but only when the width of the select expression is known
    to allow out-of-range indices.
    """
    for selector in spec.selectors():
        if not isinstance(selector, Selector):
            continue
        if selector.select.is_constant:
            index = selector.select.constant_value()
            if index >= selector.case_count:
                report.errors.append(
                    f"selector '{selector.name}' has constant index {index} but "
                    f"only {selector.case_count} cases"
                )
            continue
        width = selector.select.total_width
        if width < WORD_BITS and (1 << width) > selector.case_count:
            report.warnings.append(
                f"selector '{selector.name}' index is {width} bits wide "
                f"({1 << width} possible values) but only "
                f"{selector.case_count} cases are defined"
            )


def _check_declarations(spec: Specification, report: ValidationReport) -> None:
    declared = set(spec.declared_names)
    defined = set(spec.component_names())
    if not spec.declarations:
        return
    for name in sorted(declared - defined):
        report.warnings.append(f"{name} declared but not defined")
    for name in sorted(defined - declared):
        report.warnings.append(f"{name} defined but not declared")


def _check_dependencies(spec: Specification, report: ValidationReport) -> None:
    try:
        sort_combinational(spec)
    except Exception as exc:  # CircularDependencyError
        report.errors.append(str(exc))


def validate(spec: Specification, strict: bool = False) -> ValidationReport:
    """Validate *spec* and return a :class:`ValidationReport`.

    With ``strict=True`` warnings are promoted to errors.
    """
    report = ValidationReport()
    _check_references(spec, report)
    _check_bit_fields(spec, report)
    _check_memory_addresses(spec, report)
    _check_selector_coverage(spec, report)
    _check_declarations(spec, report)
    if not report.errors:
        _check_dependencies(spec, report)
    if strict and report.warnings:
        report.errors.extend(report.warnings)
        report.warnings = []
    return report


def ensure_valid(spec: Specification, strict: bool = False) -> ValidationReport:
    """Validate and raise :class:`ValidationError` on any error."""
    report = validate(spec, strict=strict)
    report.raise_if_failed()
    return report
