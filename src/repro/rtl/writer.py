"""Render a :class:`Specification` back into ASIM II source text.

The writer produces a canonical form: macros are already expanded (the
parser substitutes them), expressions are re-serialised from their ASTs and
one component is emitted per line.  Round-tripping a specification through
``parse_spec(spec_to_text(spec))`` yields an equivalent specification, which
the property-based tests rely on.
"""

from __future__ import annotations

from repro.rtl.components import Alu, Component, Memory, Selector
from repro.rtl.spec import Specification


def _format_declarations(spec: Specification) -> str:
    if not spec.declarations:
        names = " ".join(component.name for component in spec.components)
    else:
        names = " ".join(d.to_spec() for d in spec.declarations)
    return f"{names} ." if names else "."


def _format_component(component: Component) -> str:
    if isinstance(component, Alu):
        return (
            f"A {component.name} {component.funct.to_spec()} "
            f"{component.left.to_spec()} {component.right.to_spec()}"
        )
    if isinstance(component, Selector):
        cases = " ".join(case.to_spec() for case in component.cases)
        return f"S {component.name} {component.select.to_spec()} {cases}"
    if isinstance(component, Memory):
        if component.has_initial_values:
            values = " ".join(str(v) for v in component.initial_values)
            return (
                f"M {component.name} {component.address.to_spec()} "
                f"{component.data.to_spec()} {component.operation.to_spec()} "
                f"-{component.size} {values}"
            )
        return (
            f"M {component.name} {component.address.to_spec()} "
            f"{component.data.to_spec()} {component.operation.to_spec()} "
            f"{component.size}"
        )
    raise TypeError(f"unknown component type {type(component)!r}")


def spec_to_text(spec: Specification) -> str:
    """Serialise *spec* into specification source text."""
    header = spec.header_comment
    if not header.startswith("#"):
        header = "# " + header
    lines = [header]
    if spec.cycles is not None:
        lines.append(f"= {spec.cycles}")
    lines.append(_format_declarations(spec))
    for component in spec.components:
        lines.append(_format_component(component))
    lines.append(".")
    return "\n".join(lines) + "\n"


def component_to_text(component: Component) -> str:
    """Serialise a single component definition (useful in error messages)."""
    return _format_component(component)
