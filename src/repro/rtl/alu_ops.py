"""ALU function semantics (the paper's ``dologic`` routine).

Appendix A lists the fourteen ALU function codes; the generated Pascal code
in Appendix E shows how each is computed on the 31-bit machine word.  The
implementation below is the single source of truth used by the interpreter,
by the Python code generator's runtime and by the optimizer when it folds a
constant-function ALU into an inline operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidAluFunctionError
from repro.rtl.bits import WORD_BITS, WORD_MASK, mask_word

# Symbolic names for the fourteen function codes.
FN_ZERO = 0
FN_RIGHT = 1
FN_LEFT = 2
FN_NOT = 3
FN_ADD = 4
FN_SUB = 5
FN_SHIFT_LEFT = 6
FN_MUL = 7
FN_AND = 8
FN_OR = 9
FN_XOR = 10
FN_UNUSED = 11
FN_EQ = 12
FN_LT = 13

#: Human-readable names, indexed by function code.
FUNCTION_NAMES = (
    "zero",
    "right",
    "left",
    "not-left",
    "add",
    "subtract",
    "shift-left",
    "multiply",
    "and",
    "or",
    "xor",
    "unused",
    "equal",
    "less-than",
)

#: Number of defined ALU functions.
FUNCTION_COUNT = len(FUNCTION_NAMES)


@dataclass(frozen=True)
class AluFunctionInfo:
    """Static description of one ALU function code.

    ``python_template`` is the expression the code generator inlines when the
    function input of an ALU is a constant (Section 4.4 of the paper);
    ``{l}`` and ``{r}`` are replaced with the left/right operand expressions.
    ``pascal_template`` is the equivalent used by the Pascal backend.
    """

    code: int
    name: str
    uses_left: bool
    uses_right: bool
    python_template: str
    pascal_template: str


_MASK = str(WORD_MASK)

FUNCTION_TABLE: tuple[AluFunctionInfo, ...] = (
    AluFunctionInfo(FN_ZERO, "zero", False, False, "0", "0"),
    AluFunctionInfo(FN_RIGHT, "right", False, True, "({r})", "{r}"),
    AluFunctionInfo(FN_LEFT, "left", True, False, "({l})", "{l}"),
    AluFunctionInfo(
        FN_NOT, "not-left", True, False,
        f"({_MASK} - ({{l}}))", f"{_MASK} - {{l}}",
    ),
    AluFunctionInfo(
        FN_ADD, "add", True, True,
        f"((({{l}}) + ({{r}})) & {_MASK})", "{l} + {r}",
    ),
    AluFunctionInfo(
        FN_SUB, "subtract", True, True,
        f"((({{l}}) - ({{r}})) & {_MASK})", "{l} - {r}",
    ),
    AluFunctionInfo(
        FN_SHIFT_LEFT, "shift-left", True, True,
        "_shift_left({l}, {r})", "dologic(6, {l}, {r})",
    ),
    AluFunctionInfo(
        FN_MUL, "multiply", True, True,
        f"((({{l}}) * ({{r}})) & {_MASK})", "{l} * {r}",
    ),
    AluFunctionInfo(
        FN_AND, "and", True, True,
        "(({l}) & ({r}))", "land({l}, {r})",
    ),
    AluFunctionInfo(
        FN_OR, "or", True, True,
        "(({l}) | ({r}))", "{l} + {r} - land({l}, {r})",
    ),
    AluFunctionInfo(
        FN_XOR, "xor", True, True,
        "(({l}) ^ ({r}))", "{l} + {r} - land({l}, {r}) * 2",
    ),
    AluFunctionInfo(FN_UNUSED, "unused", False, False, "0", "0"),
    AluFunctionInfo(
        FN_EQ, "equal", True, True,
        "(1 if ({l}) == ({r}) else 0)", "if {l} = {r} then 1 else 0",
    ),
    AluFunctionInfo(
        FN_LT, "less-than", True, True,
        "(1 if ({l}) < ({r}) else 0)", "if {l} < {r} then 1 else 0",
    ),
)


def shift_left(left: int, right: int) -> int:
    """``left * 2**right`` wrapped into the machine word (function 6)."""
    if right <= 0:
        return mask_word(left)
    if right >= WORD_BITS:
        return 0
    return mask_word(left << right)


def dologic(funct: int, left: int, right: int) -> int:
    """Evaluate ALU function *funct* on *left*/*right* (paper's ``dologic``).

    All operands and results are 31-bit unsigned words; arithmetic wraps.
    An unknown function code raises :class:`InvalidAluFunctionError`, which
    corresponds to the runtime case-statement failure in the generated
    Pascal code.
    """
    left = mask_word(left)
    right = mask_word(right)
    if funct == FN_ZERO or funct == FN_UNUSED:
        return 0
    if funct == FN_RIGHT:
        return right
    if funct == FN_LEFT:
        return left
    if funct == FN_NOT:
        return WORD_MASK - left
    if funct == FN_ADD:
        return mask_word(left + right)
    if funct == FN_SUB:
        return mask_word(left - right)
    if funct == FN_SHIFT_LEFT:
        return shift_left(left, right)
    if funct == FN_MUL:
        return mask_word(left * right)
    if funct == FN_AND:
        return left & right
    if funct == FN_OR:
        return left | right
    if funct == FN_XOR:
        return left ^ right
    if funct == FN_EQ:
        return 1 if left == right else 0
    if funct == FN_LT:
        return 1 if left < right else 0
    raise InvalidAluFunctionError(f"unknown ALU function code {funct}")


def function_info(funct: int) -> AluFunctionInfo:
    """Return the static description for ALU function code *funct*."""
    if 0 <= funct < FUNCTION_COUNT:
        return FUNCTION_TABLE[funct]
    raise InvalidAluFunctionError(f"unknown ALU function code {funct}")


def is_valid_function(funct: int) -> bool:
    """Return True if *funct* is one of the fourteen defined codes."""
    return 0 <= funct < FUNCTION_COUNT
