"""Macro definition and expansion.

Appendix A: a macro definition is a ``~name`` token followed by a text token
that will be substituted for ``~name`` wherever it appears later in the
specification.  Macro bodies may reference previously defined macros (no
recursion/circularity), and a macro reference is delimited by any character
that is not a letter or digit.

The OCR of the thesis renders the sigil inconsistently as ``-`` or ``~``;
Appendix D uses ``~`` throughout, so ``~`` is the canonical sigil here and
``-`` definitions are accepted for tolerance (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    InvalidNameError,
    MacroRedefinitionError,
    UndefinedMacroError,
)

#: Characters allowed in a macro name (same rule as component names).
_LETTERS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_NAME_CHARS = _LETTERS | set("0123456789")

#: Canonical macro sigil.
MACRO_SIGIL = "~"
#: Sigils accepted when *defining* a macro (OCR tolerance).
DEFINITION_SIGILS = ("~", "-")


def is_macro_definition_token(token: str) -> bool:
    """True if *token* looks like the start of a macro definition."""
    return (
        len(token) >= 2
        and token[0] in DEFINITION_SIGILS
        and token[1] in _LETTERS
    )


def validate_macro_name(name: str) -> None:
    """Macro names follow the component-name rule: letters then letters/digits."""
    if not name or name[0] not in _LETTERS or any(
        ch not in _NAME_CHARS for ch in name
    ):
        raise InvalidNameError(
            f"macro name '{name}' invalid, use letters and numbers only"
        )


@dataclass
class MacroTable:
    """Ordered collection of macro definitions with expansion."""

    _macros: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._macros)

    def __contains__(self, name: str) -> bool:
        return name in self._macros

    def names(self) -> list[str]:
        return list(self._macros)

    def body(self, name: str) -> str:
        try:
            return self._macros[name]
        except KeyError:
            raise UndefinedMacroError(f"macro <{name}> not defined") from None

    def define(self, name: str, body: str) -> None:
        """Define a macro.  The body is expanded against earlier macros now,
        so later references need only a single expansion pass."""
        validate_macro_name(name)
        if name in self._macros:
            raise MacroRedefinitionError(f"macro <{name}> defined twice")
        self._macros[name] = self.expand(body)

    def expand(self, text: str) -> str:
        """Replace every ``~name`` reference in *text* with its body."""
        if MACRO_SIGIL not in text:
            return text
        out: list[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch != MACRO_SIGIL:
                out.append(ch)
                i += 1
                continue
            j = i + 1
            while j < len(text) and text[j] in _NAME_CHARS:
                j += 1
            name = text[i + 1 : j]
            if not name:
                raise UndefinedMacroError(
                    f"macro sigil with no name in '{text}'"
                )
            out.append(self.body(name))
            i = j
        return "".join(out)

    def as_dict(self) -> dict[str, str]:
        """Snapshot of the table (already-expanded bodies)."""
        return dict(self._macros)
