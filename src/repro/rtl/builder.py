"""Programmatic specification builder.

Writing large specifications as raw text is error prone (the thesis's stack
machine in Appendix D is several pages of hand-maintained decode ROM).  The
:class:`SpecBuilder` offers a small fluent API for constructing
specifications from Python, used heavily by :mod:`repro.machines`:

>>> from repro.rtl.builder import SpecBuilder
>>> b = SpecBuilder("three-bit counter")
>>> _ = b.alu("next", 4, "count", 1)          # count + 1
>>> _ = b.alu("wrapped", 8, "next", 7)        # next AND 7
>>> _ = b.register("count", data="wrapped", traced=True)
>>> spec = b.build()

Expression arguments may be plain integers (becoming constants), strings in
specification syntax (``"ir.0.6"``), or already-parsed ``Expression``
objects.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.errors import SpecificationError
from repro.rtl.components import Alu, Component, Memory, Selector
from repro.rtl.expressions import Expression, constant_expression, parse_expression
from repro.rtl.spec import Declaration, Specification
from repro.rtl.validate import ensure_valid
from repro.rtl.writer import spec_to_text

#: Things accepted wherever an expression is expected.
ExpressionLike = Union[int, str, Expression]


def as_expression(value: ExpressionLike) -> Expression:
    """Coerce an int / str / Expression into an :class:`Expression`."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, bool):
        return constant_expression(int(value))
    if isinstance(value, int):
        if value < 0:
            raise SpecificationError(
                f"expressions cannot hold the negative constant {value}"
            )
        return constant_expression(value)
    if isinstance(value, str):
        return parse_expression(value)
    raise TypeError(f"cannot convert {value!r} to an expression")


class SpecBuilder:
    """Incrementally build a :class:`Specification`."""

    def __init__(self, title: str, cycles: int | None = None) -> None:
        self._title = title
        self._cycles = cycles
        self._components: list[Component] = []
        self._traced: dict[str, bool] = {}

    # -- component constructors ------------------------------------------------

    def _add(self, component: Component, traced: bool) -> "SpecBuilder":
        if any(existing.name == component.name for existing in self._components):
            raise SpecificationError(
                f"component '{component.name}' defined more than once"
            )
        self._components.append(component)
        self._traced[component.name] = traced
        return self

    def alu(
        self,
        name: str,
        funct: ExpressionLike,
        left: ExpressionLike,
        right: ExpressionLike,
        traced: bool = False,
    ) -> "SpecBuilder":
        """Add ``A name funct left right``."""
        return self._add(
            Alu(
                name=name,
                funct=as_expression(funct),
                left=as_expression(left),
                right=as_expression(right),
            ),
            traced,
        )

    def selector(
        self,
        name: str,
        select: ExpressionLike,
        cases: Sequence[ExpressionLike],
        traced: bool = False,
    ) -> "SpecBuilder":
        """Add ``S name select case0 case1 ...``."""
        return self._add(
            Selector(
                name=name,
                select=as_expression(select),
                cases=tuple(as_expression(case) for case in cases),
            ),
            traced,
        )

    def memory(
        self,
        name: str,
        address: ExpressionLike,
        data: ExpressionLike,
        operation: ExpressionLike,
        size: int,
        initial_values: Iterable[int] | None = None,
        traced: bool = False,
    ) -> "SpecBuilder":
        """Add ``M name address data operation size [init...]``.

        If *initial_values* is given it is padded with zeros to *size* cells
        (a convenience over the raw format, which requires every value).
        """
        values: tuple[int, ...] = ()
        if initial_values is not None:
            provided = list(initial_values)
            if len(provided) > size:
                raise SpecificationError(
                    f"memory '{name}' has {len(provided)} initial values for "
                    f"{size} cells"
                )
            values = tuple(provided + [0] * (size - len(provided)))
        return self._add(
            Memory(
                name=name,
                address=as_expression(address),
                data=as_expression(data),
                operation=as_expression(operation),
                size=size,
                initial_values=values,
            ),
            traced,
        )

    def register(
        self,
        name: str,
        data: ExpressionLike,
        operation: ExpressionLike = 1,
        initial_value: int | None = None,
        traced: bool = False,
    ) -> "SpecBuilder":
        """Add a single-cell memory used as a register.

        By default the register writes every cycle (operation ``1``); pass a
        different operation expression to gate the write.
        """
        initial = None if initial_value is None else [initial_value]
        return self.memory(
            name,
            address=0,
            data=data,
            operation=operation,
            size=1,
            initial_values=initial,
            traced=traced,
        )

    def rom(
        self,
        name: str,
        address: ExpressionLike,
        contents: Sequence[int],
        size: int | None = None,
        traced: bool = False,
    ) -> "SpecBuilder":
        """Add a read-only memory initialised with *contents*."""
        cells = size if size is not None else max(1, len(contents))
        return self.memory(
            name,
            address=address,
            data=0,
            operation=0,
            size=cells,
            initial_values=contents,
            traced=traced,
        )

    # -- other settings ----------------------------------------------------------

    def trace(self, *names: str) -> "SpecBuilder":
        """Mark already-added components for per-cycle tracing."""
        known = {component.name for component in self._components}
        for name in names:
            if name not in known:
                raise SpecificationError(
                    f"cannot trace unknown component '{name}'"
                )
            self._traced[name] = True
        return self

    def cycles(self, count: int) -> "SpecBuilder":
        """Set the default cycle count recorded in the specification."""
        if count < 0:
            raise SpecificationError("cycle count must be non-negative")
        self._cycles = count
        return self

    # -- output -------------------------------------------------------------------

    def build(self, validate: bool = True, strict: bool = False) -> Specification:
        """Produce the (optionally validated) :class:`Specification`."""
        declarations = tuple(
            Declaration(name=component.name, traced=self._traced[component.name])
            for component in self._components
        )
        header = self._title
        if not header.startswith("#"):
            header = "# " + header
        spec = Specification(
            header_comment=header,
            components=tuple(self._components),
            declarations=declarations,
            cycles=self._cycles,
            source_name=self._title,
        )
        if validate:
            ensure_valid(spec, strict=strict)
        return spec

    def to_text(self) -> str:
        """Serialise the built specification to source text."""
        return spec_to_text(self.build(validate=False))
