"""The ASIM II register transfer language: model, parser and analysis.

This package implements the specification language of the paper — the three
primitives (ALU, selector, memory), the expression syntax with bit fields
and concatenation, macros, the file format, dependency ordering and
validation.  Everything downstream (the interpreter, the compiler, the
bundled machines and the hardware-construction pass) works from the
:class:`~repro.rtl.spec.Specification` objects produced here.
"""

from repro.rtl.bits import WORD_BITS, WORD_MASK, land, mask_word
from repro.rtl.builder import SpecBuilder, as_expression
from repro.rtl.components import (
    Alu,
    Component,
    ComponentKind,
    Memory,
    Selector,
)
from repro.rtl.dependency import (
    build_dependency_graph,
    dependency_depths,
    evaluation_order,
    has_combinational_cycle,
    sort_combinational,
)
from repro.rtl.expressions import (
    BitStringField,
    ComponentRef,
    ConstantField,
    Expression,
    Field,
    constant_expression,
    parse_expression,
    reference_expression,
)
from repro.rtl.macros import MacroTable
from repro.rtl.numbers import parse_number, parse_signed_count
from repro.rtl.parser import parse_spec, parse_spec_file
from repro.rtl.spec import Declaration, Specification
from repro.rtl.validate import ValidationReport, ensure_valid, validate
from repro.rtl.writer import spec_to_text

__all__ = [
    "WORD_BITS",
    "WORD_MASK",
    "land",
    "mask_word",
    "SpecBuilder",
    "as_expression",
    "Alu",
    "Component",
    "ComponentKind",
    "Memory",
    "Selector",
    "build_dependency_graph",
    "dependency_depths",
    "evaluation_order",
    "has_combinational_cycle",
    "sort_combinational",
    "BitStringField",
    "ComponentRef",
    "ConstantField",
    "Expression",
    "Field",
    "constant_expression",
    "parse_expression",
    "reference_expression",
    "MacroTable",
    "parse_number",
    "parse_signed_count",
    "parse_spec",
    "parse_spec_file",
    "Declaration",
    "Specification",
    "ValidationReport",
    "ensure_valid",
    "validate",
    "spec_to_text",
]
