"""Bit-level utilities shared by the whole simulator.

ASIM II works on a 31-bit machine word (the generated Pascal code uses
``mask = 2147483647``).  Every value flowing between components is an
unsigned integer in ``[0, 2**31)``.  This module centralises the word size,
masking, bit-field extraction and the ``land`` (logical and) helper that the
original Pascal runtime exposed, so that the interpreter, the compiler and
the generated code all agree on the arithmetic.
"""

from __future__ import annotations

#: Number of bits in the simulated machine word (paper: 31).
WORD_BITS = 31

#: All-ones mask for a machine word, ``2**31 - 1`` (paper: ``mask``).
WORD_MASK = (1 << WORD_BITS) - 1


def land(a: int, b: int) -> int:
    """Bitwise AND of two word values (the paper's ``land`` function).

    The original Pascal had no bitwise operators and implemented this with a
    variant-record set trick; in Python it is simply ``&`` restricted to the
    machine word.
    """
    return (a & b) & WORD_MASK


def mask_word(value: int) -> int:
    """Wrap *value* into the 31-bit machine word (two's complement wrap)."""
    return value & WORD_MASK


def mask_for_width(width: int) -> int:
    """Return an all-ones mask of *width* bits (``width`` may be 0)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if width >= WORD_BITS:
        return WORD_MASK
    return (1 << width) - 1


def extract_field(value: int, low: int, high: int) -> int:
    """Extract bits *low*..*high* (inclusive, zero-based) of *value*.

    This is the semantics of a component reference ``name.low.high`` in an
    ASIM II expression: the selected bits are shifted down so that bit *low*
    of *value* becomes bit 0 of the result.
    """
    if low < 0 or high < low:
        raise ValueError(f"invalid bit field {low}..{high}")
    width = high - low + 1
    return (value >> low) & mask_for_width(width)


def extract_bit(value: int, bit: int) -> int:
    """Extract a single bit (``name.bit`` in an expression)."""
    return extract_field(value, bit, bit)


def insert_field(base: int, value: int, low: int, width: int) -> int:
    """Place *value* (masked to *width* bits) at bit position *low* of *base*."""
    field_mask = mask_for_width(width)
    cleared = base & ~(field_mask << low)
    return mask_word(cleared | ((value & field_mask) << low))


def concatenate(fields: list[tuple[int, int]]) -> int:
    """Concatenate ``(value, width)`` fields, leftmost field most significant.

    Mirrors Figure 3.1 of the paper: ``mem.3.4, #01, count.1`` places the
    ``count.1`` bit at bit 0, the binary string above it and the memory field
    on top.  Fields wider than the remaining word raise ``ValueError``.
    """
    result = 0
    offset = 0
    for value, width in reversed(fields):
        if width < 0:
            raise ValueError("field width must be non-negative")
        if offset + width > WORD_BITS:
            raise ValueError("concatenation exceeds the 31-bit machine word")
        result |= (value & mask_for_width(width)) << offset
        offset += width
    return mask_word(result)


def bits_required(value: int) -> int:
    """Number of bits needed to represent a non-negative *value* (min 1)."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return max(1, value.bit_length())


def to_bit_string(value: int, width: int) -> str:
    """Render *value* as a binary string of exactly *width* characters."""
    if width <= 0:
        raise ValueError("width must be positive")
    return format(value & mask_for_width(width), f"0{width}b")


def sign_value(value: int, width: int = WORD_BITS) -> int:
    """Interpret a *width*-bit unsigned value as a signed integer."""
    value &= mask_for_width(width)
    sign_bit = 1 << (width - 1)
    if value & sign_bit:
        return value - (1 << width)
    return value
