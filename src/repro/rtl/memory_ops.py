"""Memory operation semantics.

Appendix A defines the memory operation word as a small bit field:

========  =====================================
value     meaning
========  =====================================
``0``     read (low two bits ``00``)
``1``     write (low two bits ``01``)
``2``     input  — memory-mapped input
``3``     output — memory-mapped output
``4``     trace writes (bit 2)
``8``     trace reads (bit 3)
========  =====================================

The low two bits select the operation performed this cycle; bits 2 and 3 are
trace enables that may be OR-ed onto any operation.  The generated Pascal
code prints a "Write to" line when ``land(op, 5) = 5`` and a "Read from"
line when ``land(op, 9) = 8``; those exact conditions are reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class MemoryOperation(IntEnum):
    """The four memory operations selected by the low two bits."""

    READ = 0
    WRITE = 1
    INPUT = 2
    OUTPUT = 3


#: Bit that enables write tracing when set in the operation word.
TRACE_WRITES_BIT = 4
#: Bit that enables read tracing when set in the operation word.
TRACE_READS_BIT = 8

#: Mask of all meaningful bits in an operation word.
OPERATION_MASK = 0xF


@dataclass(frozen=True)
class DecodedOperation:
    """A memory operation word split into its meaningful pieces."""

    operation: MemoryOperation
    trace_write: bool
    trace_read: bool

    @property
    def is_write(self) -> bool:
        return self.operation is MemoryOperation.WRITE

    @property
    def is_read(self) -> bool:
        return self.operation is MemoryOperation.READ

    @property
    def is_input(self) -> bool:
        return self.operation is MemoryOperation.INPUT

    @property
    def is_output(self) -> bool:
        return self.operation is MemoryOperation.OUTPUT


def decode_operation(op_word: int) -> DecodedOperation:
    """Split a raw operation word into operation + trace enables."""
    operation = MemoryOperation(op_word & 3)
    return DecodedOperation(
        operation=operation,
        trace_write=should_trace_write(op_word),
        trace_read=should_trace_read(op_word),
    )


def should_trace_write(op_word: int) -> bool:
    """Paper condition ``land(operation, 5) = 5``: trace bit set and writing."""
    return (op_word & 5) == 5


def should_trace_read(op_word: int) -> bool:
    """Paper condition ``land(operation, 9) = 8``: trace bit set, not writing."""
    return (op_word & 9) == 8


def operation_name(op_word: int) -> str:
    """Human-readable name for the operation selected by *op_word*."""
    return MemoryOperation(op_word & 3).name.lower()


def may_trace(op_word_bits: int) -> bool:
    """Whether an operation expression with this many bits could ever trace.

    The code generator decides whether to emit trace statements for a memory
    based on the *width* of its operation expression (paper's
    ``numberofbits``): an operation expression at least 3 bits wide can carry
    the trace-writes bit and one at least 4 bits wide the trace-reads bit.
    """
    return op_word_bits >= 3
