"""Dependency analysis and evaluation ordering.

Section 4.3 of the paper: "To eliminate the need for actual parallel
processing of the components, the components are sorted in a dependency
order. ...  Memories are not sorted.  Instead, their results are stored in
temporary memories while the new value is being computed."

Combinational components (ALUs and selectors) must therefore be evaluated
producers-before-consumers within a cycle; a combinational cycle is an error
("Circular dependency with X and/or Y").  References to memories impose no
ordering because a memory's visible output is the value latched at the end
of the previous cycle.

:func:`sort_combinational` is the scheduler of the shared lowering pipeline
(:mod:`repro.lowering`): the order it produces becomes the step order of
the CycleProgram IR, so all three backends execute one schedule rather than
re-deriving their own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircularDependencyError
from repro.rtl.components import Component
from repro.rtl.spec import Specification


@dataclass(frozen=True)
class DependencyGraph:
    """Dependency edges between the combinational components of a spec."""

    #: name -> set of combinational component names it reads.
    depends_on: dict[str, set[str]]
    #: name -> set of combinational component names that read it.
    consumers: dict[str, set[str]]

    def dependencies_of(self, name: str) -> set[str]:
        return set(self.depends_on.get(name, set()))

    def consumers_of(self, name: str) -> set[str]:
        return set(self.consumers.get(name, set()))


def build_dependency_graph(spec: Specification) -> DependencyGraph:
    """Build the combinational dependency graph of *spec*."""
    combinational_names = {c.name for c in spec.combinational()}
    depends_on: dict[str, set[str]] = {name: set() for name in combinational_names}
    consumers: dict[str, set[str]] = {name: set() for name in combinational_names}
    for component in spec.combinational():
        for referenced in component.referenced_names():
            if referenced in combinational_names and referenced != component.name:
                depends_on[component.name].add(referenced)
                consumers[referenced].add(component.name)
    # Self-references of a combinational component are a (minimal) cycle;
    # record them so sorting reports the error.
    for component in spec.combinational():
        if component.name in component.referenced_names():
            depends_on[component.name].add(component.name)
            consumers[component.name].add(component.name)
    return DependencyGraph(depends_on=depends_on, consumers=consumers)


def _find_cycle(depends_on: dict[str, set[str]], unresolved: set[str]) -> list[str]:
    """Return one combinational cycle among the *unresolved* components."""
    # Walk dependency edges until a node repeats; the repeated segment is a
    # cycle.  Deterministic (sorted choices) so error messages are stable.
    start = sorted(unresolved)[0]
    path: list[str] = []
    seen_at: dict[str, int] = {}
    node = start
    while node not in seen_at:
        seen_at[node] = len(path)
        path.append(node)
        candidates = sorted(n for n in depends_on[node] if n in unresolved)
        node = candidates[0]
    return path[seen_at[node]:]


def sort_combinational(spec: Specification) -> list[Component]:
    """Topologically sort ALUs and selectors (dependencies first).

    Kahn's algorithm, processed level by level so the result is stable with
    respect to definition order among components whose dependencies are
    satisfied at the same step: each level holds the components whose last
    dependency resolved in the previous level, sorted by definition order.
    Every component and edge is visited once — O(V + E), where the previous
    implementation re-scanned the whole pending list per level (O(V²) on a
    dependency chain).  Raises :class:`CircularDependencyError` naming the
    components of one cycle.
    """
    graph = build_dependency_graph(spec)
    combinational = spec.combinational()
    definition_index = {
        component.name: index for index, component in enumerate(combinational)
    }
    by_name = {component.name: component for component in combinational}
    indegree = {
        component.name: len(graph.depends_on[component.name])
        for component in combinational
    }
    consumers = graph.consumers

    ordered: list[Component] = []
    level = [c.name for c in combinational if indegree[c.name] == 0]
    while level:
        next_level: list[str] = []
        for name in level:
            ordered.append(by_name[name])
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    next_level.append(consumer)
        next_level.sort(key=definition_index.__getitem__)
        level = next_level
    if len(ordered) < len(combinational):
        unresolved = {
            name for name, degree in indegree.items() if degree > 0
        }
        cycle = _find_cycle(graph.depends_on, unresolved)
        raise CircularDependencyError(cycle)
    return ordered


def evaluation_order(spec: Specification) -> list[Component]:
    """Full per-cycle evaluation order: sorted combinational, then memories.

    This mirrors ``orderit`` in the original compiler: ALUs and selectors in
    dependency order followed by the memories in their definition order.
    """
    return sort_combinational(spec) + list(spec.memories())


def has_combinational_cycle(spec: Specification) -> bool:
    """True if the specification contains a combinational cycle."""
    try:
        sort_combinational(spec)
    except CircularDependencyError:
        return True
    return False


def dependency_depths(spec: Specification) -> dict[str, int]:
    """Longest combinational path (in components) ending at each component.

    Useful for reporting the critical path of a design; memories have depth 0.
    """
    depths: dict[str, int] = {memory.name: 0 for memory in spec.memories()}
    for component in sort_combinational(spec):
        graph_deps = [
            depths[name]
            for name in component.referenced_names()
            if name in depths
        ]
        depths[component.name] = 1 + max(graph_deps, default=0)
    return depths
