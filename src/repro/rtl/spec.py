"""The parsed specification object.

A :class:`Specification` is the fully parsed, macro-expanded, declarative
form of an ASIM II source file: the header comment, the optional cycle
count, the declaration list (with trace flags) and the ordered component
definitions.  It is immutable and carries no behaviour beyond lookups; the
interpreter and compiler packages consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DuplicateComponentError, UnknownComponentError
from repro.rtl.components import Alu, Component, Memory, Selector


@dataclass(frozen=True)
class Declaration:
    """One entry of the name list at the top of a specification."""

    name: str
    traced: bool = False

    def to_spec(self) -> str:
        return f"{self.name}*" if self.traced else self.name


@dataclass(frozen=True)
class Specification:
    """A complete parsed hardware specification."""

    header_comment: str
    components: tuple[Component, ...]
    declarations: tuple[Declaration, ...] = ()
    cycles: int | None = None
    macros: dict[str, str] = field(default_factory=dict)
    source_name: str = "<specification>"

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for component in self.components:
            if component.name in seen:
                raise DuplicateComponentError(
                    f"component '{component.name}' defined more than once"
                )
            seen.add(component.name)

    # -- lookups -------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return any(component.name == name for component in self.components)

    def __len__(self) -> int:
        return len(self.components)

    @property
    def component_map(self) -> dict[str, Component]:
        return {component.name: component for component in self.components}

    def component(self, name: str) -> Component:
        for component in self.components:
            if component.name == name:
                return component
        raise UnknownComponentError(f"component <{name}> not found")

    def alus(self) -> list[Alu]:
        return [c for c in self.components if isinstance(c, Alu)]

    def selectors(self) -> list[Selector]:
        return [c for c in self.components if isinstance(c, Selector)]

    def memories(self) -> list[Memory]:
        return [c for c in self.components if isinstance(c, Memory)]

    def combinational(self) -> list[Component]:
        """ALUs and selectors in definition order."""
        return [c for c in self.components if c.is_combinational]

    def component_names(self) -> list[str]:
        return [component.name for component in self.components]

    # -- declarations & tracing ----------------------------------------------

    @property
    def declared_names(self) -> list[str]:
        return [declaration.name for declaration in self.declarations]

    @property
    def traced_names(self) -> list[str]:
        """Names to print each cycle, in declaration order (paper Sec. 4.5)."""
        return [d.name for d in self.declarations if d.traced]

    def is_traced(self, name: str) -> bool:
        return any(d.traced and d.name == name for d in self.declarations)

    # -- whole-spec queries ----------------------------------------------------

    def referenced_names(self) -> set[str]:
        """Every component name read by any expression in the specification."""
        names: set[str] = set()
        for component in self.components:
            names |= component.referenced_names()
        return names

    def undefined_references(self) -> set[str]:
        """Referenced names with no matching component definition."""
        return self.referenced_names() - set(self.component_names())

    def iter_expressions(self) -> Iterator[tuple[Component, str, object]]:
        """Yield ``(component, role, expression)`` for every expression."""
        for component in self.components:
            if isinstance(component, Alu):
                yield component, "function", component.funct
                yield component, "left", component.left
                yield component, "right", component.right
            elif isinstance(component, Selector):
                yield component, "select", component.select
                for index, case in enumerate(component.cases):
                    yield component, f"case{index}", case
            elif isinstance(component, Memory):
                yield component, "address", component.address
                yield component, "data", component.data
                yield component, "operation", component.operation

    def summary(self) -> str:
        """One-line description used by logs and the CLI examples."""
        return (
            f"{self.source_name}: {len(self.alus())} ALUs, "
            f"{len(self.selectors())} selectors, {len(self.memories())} memories"
            f" ({len(self.components)} components)"
        )
