"""Numeric literal parsing for the ASIM II specification language.

Appendix B of the paper defines a ``number`` as a sum (joined by ``+``) of
any combination of:

* decimal integers (``128``),
* hexadecimal integers prefixed by ``$`` (``$3a``),
* binary integers prefixed by ``%`` (``%1101``),
* powers of two prefixed by ``^`` (``^8`` is ``256``).

Bit strings prefixed by ``#`` are *not* numbers: they carry an explicit width
and only appear inside expressions (see :mod:`repro.rtl.expressions`).

The original ``str2num`` routine accepted these sums anywhere a number is
allowed — memory sizes, cycle counts, selector indices inside the decode ROM
of Appendix D (``128+3+^8``) and bit positions.  This module reproduces that
behaviour with explicit error reporting.
"""

from __future__ import annotations

from repro.errors import MalformedNumberError

_DECIMAL_DIGITS = set("0123456789")
_HEX_DIGITS = set("0123456789ABCDEFabcdef")
_BINARY_DIGITS = set("01")

#: Characters that may start a numeric literal.
NUMBER_START_CHARS = frozenset("0123456789$%^")


def is_number_start(char: str) -> bool:
    """Return True if *char* can begin a numeric literal."""
    return char in NUMBER_START_CHARS


def looks_like_number(text: str) -> bool:
    """Cheap test used by the optimizer: could *text* be a numeric constant?

    Mirrors the paper's ``numeric`` function, which checks that every
    character belongs to the numeric alphabet.  It does not guarantee the
    literal parses; use :func:`parse_number` for that.
    """
    if not text:
        return False
    allowed = _HEX_DIGITS | {"+", "$", "%", "^"}
    return all(ch in allowed for ch in text)


def _parse_term(term: str) -> int:
    """Parse a single (non-sum) numeric term."""
    if not term:
        raise MalformedNumberError("empty numeric term")
    prefix = term[0]
    body = term[1:]
    if prefix == "$":
        if not body or any(ch not in _HEX_DIGITS for ch in body):
            raise MalformedNumberError(f"malformed hexadecimal number '{term}'")
        return int(body, 16)
    if prefix == "%":
        if not body or any(ch not in _BINARY_DIGITS for ch in body):
            raise MalformedNumberError(f"malformed binary number '{term}'")
        return int(body, 2)
    if prefix == "^":
        if not body or any(ch not in _DECIMAL_DIGITS for ch in body):
            raise MalformedNumberError(f"malformed power-of-two number '{term}'")
        return 2 ** int(body, 10)
    if any(ch not in _DECIMAL_DIGITS for ch in term):
        raise MalformedNumberError(f"malformed number '{term}'")
    return int(term, 10)


def parse_number(text: str) -> int:
    """Parse an ASIM II numeric literal (a ``+``-joined sum of terms).

    >>> parse_number("128+3+^8")
    387
    >>> parse_number("$3a")
    58
    >>> parse_number("%1101")
    13
    """
    if text is None or text == "":
        raise MalformedNumberError("empty number")
    total = 0
    for term in text.split("+"):
        total += _parse_term(term)
    return total


def parse_signed_count(text: str) -> int:
    """Parse a memory cell count, which may carry a leading ``-``.

    A negative count means "this memory is initialised from the value list
    that follows and has ``abs(count)`` cells" (Appendix A).
    """
    if text.startswith("-"):
        return -parse_number(text[1:])
    return parse_number(text)


def format_number(value: int, style: str = "decimal") -> str:
    """Render an integer back into specification syntax.

    ``style`` may be ``decimal``, ``hex``, ``binary`` or ``power2`` (the
    latter only for exact powers of two).  Used by the specification writer.
    """
    if value < 0:
        raise MalformedNumberError(f"cannot format negative value {value}")
    if style == "decimal":
        return str(value)
    if style == "hex":
        return "$" + format(value, "X")
    if style == "binary":
        return "%" + format(value, "b")
    if style == "power2":
        if value <= 0 or value & (value - 1):
            raise MalformedNumberError(f"{value} is not a power of two")
        return "^" + str(value.bit_length() - 1)
    raise ValueError(f"unknown number style '{style}'")
