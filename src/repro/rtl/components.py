"""Component model: the three ASIM II primitives.

Chapter 3 of the paper defines exactly three component kinds:

* ``A name function left right`` — an ALU,
* ``S name selector value0 ... valuen`` — a selector (multiplexor),
* ``M name address data operation number [initial values]`` — a memory.

Every field except a memory's cell count is an expression.  Components are
plain frozen dataclasses; all behaviour (evaluation, code generation) lives
in the interpreter and compiler packages so that a parsed specification is a
purely declarative artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.errors import SpecificationError
from repro.rtl.expressions import Expression


class ComponentKind(Enum):
    """The three primitive kinds, with their specification letters."""

    ALU = "A"
    SELECTOR = "S"
    MEMORY = "M"


@dataclass(frozen=True)
class Component:
    """Base class for the three primitives."""

    name: str

    @property
    def kind(self) -> ComponentKind:
        raise NotImplementedError

    @property
    def is_combinational(self) -> bool:
        """ALUs and selectors are combinational; memories are stateful."""
        return self.kind is not ComponentKind.MEMORY

    def source_expressions(self) -> Iterator[Expression]:
        """Yield every expression appearing in this component's definition."""
        raise NotImplementedError

    def referenced_names(self) -> set[str]:
        """Names of all components read by this component's expressions."""
        names: set[str] = set()
        for expression in self.source_expressions():
            names |= expression.referenced_names()
        return names


@dataclass(frozen=True)
class Alu(Component):
    """``A name function left right``.

    The function expression selects one of the fourteen ALU operations; when
    it is constant the compiler inlines the operation (Figure 4.1).
    """

    funct: Expression = field(default=None)  # type: ignore[assignment]
    left: Expression = field(default=None)  # type: ignore[assignment]
    right: Expression = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        for label, expr in (("function", self.funct), ("left", self.left),
                            ("right", self.right)):
            if expr is None:
                raise SpecificationError(
                    f"ALU '{self.name}' is missing its {label} expression"
                )

    @property
    def kind(self) -> ComponentKind:
        return ComponentKind.ALU

    @property
    def has_constant_function(self) -> bool:
        return self.funct.is_constant

    def source_expressions(self) -> Iterator[Expression]:
        yield self.funct
        yield self.left
        yield self.right


@dataclass(frozen=True)
class Selector(Component):
    """``S name selector value0 value1 ... valuen``.

    The selector expression indexes into the case list; an index past the
    end of the list is a runtime error (Section 4.3).
    """

    select: Expression = field(default=None)  # type: ignore[assignment]
    cases: tuple[Expression, ...] = ()

    def __post_init__(self) -> None:
        if self.select is None:
            raise SpecificationError(
                f"selector '{self.name}' is missing its select expression"
            )
        if not self.cases:
            raise SpecificationError(
                f"selector '{self.name}' has no case values"
            )

    @property
    def kind(self) -> ComponentKind:
        return ComponentKind.SELECTOR

    @property
    def case_count(self) -> int:
        return len(self.cases)

    def source_expressions(self) -> Iterator[Expression]:
        yield self.select
        yield from self.cases


@dataclass(frozen=True)
class Memory(Component):
    """``M name address data operation number [initial values]``.

    ``size`` is the number of cells.  ``initial_values`` is non-empty exactly
    when the specification declared the count negative (Appendix A); it then
    holds one value per cell.  A single-cell memory models a register or
    flip-flop, larger memories model RAM/ROM.  Memories have a one-cycle
    output delay: the value visible to other components during cycle *t* is
    the result of the operation performed during cycle *t - 1*.
    """

    address: Expression = field(default=None)  # type: ignore[assignment]
    data: Expression = field(default=None)  # type: ignore[assignment]
    operation: Expression = field(default=None)  # type: ignore[assignment]
    size: int = 0
    initial_values: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for label, expr in (("address", self.address), ("data", self.data),
                            ("operation", self.operation)):
            if expr is None:
                raise SpecificationError(
                    f"memory '{self.name}' is missing its {label} expression"
                )
        if self.size <= 0:
            raise SpecificationError(
                f"memory '{self.name}' must have at least one cell"
            )
        if self.initial_values and len(self.initial_values) != self.size:
            raise SpecificationError(
                f"memory '{self.name}' declares {self.size} cells but "
                f"{len(self.initial_values)} initial values"
            )
        if any(value < 0 for value in self.initial_values):
            raise SpecificationError(
                f"memory '{self.name}' has a negative initial value"
            )

    @property
    def kind(self) -> ComponentKind:
        return ComponentKind.MEMORY

    @property
    def is_register(self) -> bool:
        """Single-cell memories correspond to registers / flip-flops."""
        return self.size == 1

    @property
    def has_initial_values(self) -> bool:
        return bool(self.initial_values)

    @property
    def has_constant_operation(self) -> bool:
        return self.operation.is_constant

    def initial_cell_values(self) -> list[int]:
        """Cell contents at cycle 0 (zeros unless an init list was given)."""
        if self.initial_values:
            return list(self.initial_values)
        return [0] * self.size

    @property
    def initial_output(self) -> int:
        """The latched output visible during cycle 0.

        The paper initialises every latched output to zero; this reproduction
        makes one hardware-natural clarification: a *register* (single-cell
        memory) declared with an initial value exposes that value from cycle
        0, exactly as an initialised flip-flop would.  Multi-cell memories
        still start with a zero output.
        """
        if self.is_register and self.initial_values:
            return self.initial_values[0]
        return 0

    def source_expressions(self) -> Iterator[Expression]:
        yield self.address
        yield self.data
        yield self.operation


#: Mapping from specification letter to component class, used by the parser.
COMPONENT_LETTERS = {
    "A": Alu,
    "S": Selector,
    "M": Memory,
}
