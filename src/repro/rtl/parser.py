"""Parser for ASIM II specification source text.

The file format (Appendix A):

1. a mandatory ``#`` comment on the first line;
2. optional macro definitions (``~name body`` pairs);
3. an optional cycle count ``= N``;
4. the declaration list — component names, ``*`` marks a traced component,
   terminated by ``.``;
5. the component definitions (``A``, ``S``, ``M``), in any order, terminated
   by ``.``.

``{ ... }`` comments may appear anywhere whitespace may.  All tokens after
the macro section are macro-expanded before interpretation.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import (
    InvalidNameError,
    MalformedNumberError,
    SpecificationError,
)
from repro.rtl import numbers
from repro.rtl.components import Alu, Component, Memory, Selector
from repro.rtl.expressions import parse_expression
from repro.rtl.macros import MacroTable, is_macro_definition_token
from repro.rtl.scanner import Token, TokenStream, tokenize
from repro.rtl.spec import Declaration, Specification
from repro.rtl.validate import ensure_valid

_LETTERS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_NAME_CHARS = _LETTERS | set("0123456789")

#: Tokens that introduce a component definition.
COMPONENT_LETTERS = ("A", "S", "M")


def check_component_name(name: str, line: int | None = None) -> str:
    """Validate a component name: a letter followed by letters/digits."""
    if not name or name[0] not in _LETTERS or any(
        ch not in _NAME_CHARS for ch in name
    ):
        raise InvalidNameError(
            f"component name '{name}' invalid, use letters and numbers only",
            line,
        )
    return name


class SpecificationParser:
    """Single-use parser turning source text into a :class:`Specification`."""

    def __init__(self, source: str, source_name: str = "<specification>") -> None:
        self._source_name = source_name
        self._stream: TokenStream = tokenize(source)
        self._macros = MacroTable()
        self._cycles: int | None = None
        self._declarations: list[Declaration] = []
        self._components: list[Component] = []
        self._last_component: str | None = None

    # -- token helpers -------------------------------------------------------

    def _next(self, context: str) -> Token:
        token = self._stream.peek()
        if token is None:
            raise SpecificationError(
                f"unexpected end of specification while reading {context}"
                + self._last_component_hint()
            )
        return self._stream.next()

    def _expanded(self, context: str) -> Token:
        token = self._next(context)
        return Token(self._macros.expand(token.text), token.line)

    def _last_component_hint(self) -> str:
        if self._last_component is None:
            return ""
        return f" (last component read is <{self._last_component}>)"

    # -- sections -------------------------------------------------------------

    def _parse_macros(self) -> None:
        while True:
            token = self._stream.peek()
            if token is None or not is_macro_definition_token(token.text):
                return
            self._stream.next()
            name = token.text[1:]
            body = self._next(f"macro <{name}> body")
            try:
                self._macros.define(name, body.text)
            except SpecificationError as exc:
                raise type(exc)(str(exc), token.line) from None

    def _parse_cycles(self) -> None:
        token = self._stream.peek()
        if token is None or not token.text.startswith("="):
            return
        self._stream.next()
        if token.text == "=":
            count_token = self._expanded("cycle count")
            count_text = count_token.text
            line = count_token.line
        else:
            count_text = self._macros.expand(token.text[1:])
            line = token.line
        try:
            self._cycles = numbers.parse_number(count_text)
        except MalformedNumberError as exc:
            raise MalformedNumberError(
                f"invalid cycle count '{count_text}': {exc}", line
            ) from None

    def _parse_declarations(self) -> None:
        while True:
            token = self._next("the declaration list")
            if token.text == ".":
                return
            name = token.text
            traced = name.endswith("*")
            if traced:
                name = name[:-1]
            check_component_name(name, token.line)
            self._declarations.append(Declaration(name=name, traced=traced))

    # -- components -----------------------------------------------------------

    def _parse_component_name(self, kind: str) -> str:
        token = self._expanded(f"the name of a {kind}")
        name = check_component_name(token.text, token.line)
        self._last_component = name
        return name

    def _parse_expression_token(self, context: str):
        token = self._expanded(context)
        try:
            return parse_expression(token.text)
        except SpecificationError as exc:
            raise type(exc)(
                f"{exc}{self._last_component_hint()}", token.line
            ) from None

    def _parse_alu(self) -> Alu:
        name = self._parse_component_name("ALU")
        funct = self._parse_expression_token(f"ALU '{name}' function")
        left = self._parse_expression_token(f"ALU '{name}' left operand")
        right = self._parse_expression_token(f"ALU '{name}' right operand")
        return Alu(name=name, funct=funct, left=left, right=right)

    def _parse_selector(self) -> Selector:
        name = self._parse_component_name("selector")
        select = self._parse_expression_token(f"selector '{name}' index")
        cases = []
        while True:
            token = self._stream.peek()
            if token is None:
                raise SpecificationError(
                    f"unexpected end of specification in selector '{name}' cases"
                )
            if token.text == "." or (
                len(token.text) == 1 and token.text in COMPONENT_LETTERS
            ):
                break
            cases.append(self._parse_expression_token(f"selector '{name}' case"))
        return Selector(name=name, select=select, cases=tuple(cases))

    def _parse_memory(self) -> Memory:
        name = self._parse_component_name("memory")
        address = self._parse_expression_token(f"memory '{name}' address")
        data = self._parse_expression_token(f"memory '{name}' data")
        operation = self._parse_expression_token(f"memory '{name}' operation")
        count_token = self._expanded(f"memory '{name}' cell count")
        try:
            count = numbers.parse_signed_count(count_token.text)
        except MalformedNumberError as exc:
            raise MalformedNumberError(
                f"memory '{name}' cell count: {exc}", count_token.line
            ) from None
        if count == 0:
            raise SpecificationError(
                f"memory '{name}' must have at least one cell", count_token.line
            )
        initial_values: tuple[int, ...] = ()
        size = abs(count)
        if count < 0:
            values = []
            for index in range(size):
                value_token = self._expanded(
                    f"initial value {index} of memory '{name}'"
                )
                try:
                    values.append(numbers.parse_number(value_token.text))
                except MalformedNumberError as exc:
                    raise MalformedNumberError(
                        f"memory '{name}' initial value {index}: {exc}",
                        value_token.line,
                    ) from None
            initial_values = tuple(values)
        return Memory(
            name=name,
            address=address,
            data=data,
            operation=operation,
            size=size,
            initial_values=initial_values,
        )

    def _parse_components(self) -> None:
        while True:
            token = self._next("a component definition")
            if token.text == ".":
                return
            if len(token.text) == 1 and token.text in COMPONENT_LETTERS:
                if token.text == "A":
                    self._components.append(self._parse_alu())
                elif token.text == "S":
                    self._components.append(self._parse_selector())
                else:
                    self._components.append(self._parse_memory())
                continue
            raise SpecificationError(
                f"component expected, got <{token.text}> instead"
                + self._last_component_hint(),
                token.line,
            )

    # -- entry point -----------------------------------------------------------

    def parse(self) -> Specification:
        self._parse_macros()
        self._parse_cycles()
        self._parse_declarations()
        self._parse_components()
        return Specification(
            header_comment=self._stream.header_comment,
            components=tuple(self._components),
            declarations=tuple(self._declarations),
            cycles=self._cycles,
            macros=self._macros.as_dict(),
            source_name=self._source_name,
        )


def parse_spec(
    source: str,
    source_name: str = "<specification>",
    validate: bool = True,
    strict: bool = False,
) -> Specification:
    """Parse specification *source* text into a :class:`Specification`.

    With ``validate=True`` (the default) hard semantic errors (unknown
    references, combinational cycles, ...) raise immediately; warnings are
    available through :func:`repro.rtl.validate.validate`.
    """
    spec = SpecificationParser(source, source_name).parse()
    if validate:
        ensure_valid(spec, strict=strict)
    return spec


def parse_spec_file(
    path: str | Path, validate: bool = True, strict: bool = False
) -> Specification:
    """Parse a specification from a file on disk."""
    path = Path(path)
    return parse_spec(
        path.read_text(), source_name=path.name, validate=validate, strict=strict
    )
