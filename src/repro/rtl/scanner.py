"""Token scanner for specification source text.

The scanner performs the purely lexical part of reading a specification:

* the first line must be a ``#`` comment (it is captured, not tokenised);
* ``{ ... }`` comments are treated as whitespace anywhere (not nested);
* remaining text is split into whitespace-delimited tokens;
* a trailing ``.`` attached to a longer token is split off into its own
  token (the original ``gettoken`` did the same), because ``.`` terminates
  both the declaration list and the component section while also appearing
  inside expressions.

Macro expansion is *not* done here; the parser drives it so that macro
definitions themselves are never expanded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MissingCommentError, SpecificationError


@dataclass(frozen=True)
class Token:
    """A lexical token with the 1-based source line it started on."""

    text: str
    line: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.text


class TokenStream:
    """A peekable stream of tokens produced by :func:`tokenize`."""

    def __init__(self, tokens: list[Token], header_comment: str) -> None:
        self._tokens = tokens
        self._index = 0
        self.header_comment = header_comment

    def __len__(self) -> int:
        return len(self._tokens) - self._index

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)

    def peek(self) -> Token | None:
        if self.exhausted:
            return None
        return self._tokens[self._index]

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise SpecificationError("unexpected end of specification")
        self._index += 1
        return token

    def push_back(self) -> None:
        """Un-read the most recently consumed token."""
        if self._index == 0:
            raise SpecificationError("cannot push back before the first token")
        self._index -= 1


def strip_comments(text: str, start_line: int = 1) -> str:
    """Replace ``{ ... }`` comments with spaces, preserving line breaks."""
    out: list[str] = []
    i = 0
    line = start_line
    depth_open_line = 0
    in_comment = False
    while i < len(text):
        ch = text[i]
        if ch == "\n":
            line += 1
            out.append("\n")
            i += 1
            continue
        if in_comment:
            if ch == "}":
                in_comment = False
            out.append(" ")
            i += 1
            continue
        if ch == "{":
            in_comment = True
            depth_open_line = line
            out.append(" ")
            i += 1
            continue
        if ch == "}":
            raise SpecificationError("unmatched '}' comment terminator", line)
        out.append(ch)
        i += 1
    if in_comment:
        raise SpecificationError("unterminated '{' comment", depth_open_line)
    return "".join(out)


def _split_trailing_period(raw: str) -> list[str]:
    """Split a trailing ``.`` off a token longer than one character."""
    if len(raw) > 1 and raw.endswith("."):
        return [raw[:-1], "."]
    return [raw]


def tokenize(source: str) -> TokenStream:
    """Tokenise specification *source* into a :class:`TokenStream`.

    The first line must start with ``#`` (paper: "Comment required."); it is
    stored on the stream as ``header_comment`` and not tokenised.
    """
    if not source.strip():
        raise MissingCommentError("empty specification", 1)
    first_newline = source.find("\n")
    if first_newline == -1:
        header, rest = source, ""
        rest_start_line = 2
    else:
        header, rest = source[:first_newline], source[first_newline + 1 :]
        rest_start_line = 2
    header = header.strip()
    if not header.startswith("#"):
        raise MissingCommentError(
            "the first line of a specification must be a '#' comment", 1
        )
    cleaned = strip_comments(rest, rest_start_line)
    tokens: list[Token] = []
    for offset, line_text in enumerate(cleaned.split("\n")):
        line_number = rest_start_line + offset
        for raw in line_text.split():
            for piece in _split_trailing_period(raw):
                tokens.append(Token(piece, line_number))
    return TokenStream(tokens, header_comment=header)
