"""Activity profiling and coverage.

Section 1.4: the simulator should "produce statistics about the actual
simulation, such as execution cycles required, memory accesses, and other
related information ... invaluable when the designer desires to view the
internal states of a microprocessor."  The profiler runs a specification on
the interpreter while tracing every component and reports:

* per-component toggle counts (how often the visible value changed),
* selector case coverage (which selector inputs were ever exercised),
* ALU function usage,
* per-memory access statistics and the set of cells touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.iosystem import IOSystem
from repro.core.stats import SimulationStats
from repro.core.trace import TraceOptions
from repro.interp.interpreter import InterpreterBackend
from repro.rtl.components import Selector
from repro.rtl.spec import Specification


@dataclass
class ActivityProfile:
    """The result of profiling one run."""

    cycles: int
    toggle_counts: dict[str, int] = field(default_factory=dict)
    selector_coverage: dict[str, dict[int, int]] = field(default_factory=dict)
    uncovered_selector_cases: dict[str, list[int]] = field(default_factory=dict)
    alu_function_usage: dict[int, int] = field(default_factory=dict)
    stats: SimulationStats = field(default_factory=SimulationStats)

    def most_active(self, count: int = 5) -> list[tuple[str, int]]:
        """The components whose value changed most often."""
        ranked = sorted(self.toggle_counts.items(), key=lambda kv: -kv[1])
        return ranked[:count]

    def idle_components(self) -> list[str]:
        """Components whose visible value never changed during the run."""
        return sorted(name for name, count in self.toggle_counts.items() if count == 0)

    def coverage_fraction(self, selector: str) -> float:
        """Fraction of a selector's cases exercised at least once."""
        taken = self.selector_coverage.get(selector, {})
        missing = self.uncovered_selector_cases.get(selector, [])
        total = len(taken) + len(missing)
        if total == 0:
            return 1.0
        return len(taken) / total

    def render(self) -> str:
        lines = [f"activity profile over {self.cycles} cycles"]
        lines.append("most active components:")
        for name, toggles in self.most_active():
            lines.append(f"  {name:<16s} {toggles} value changes")
        idle = self.idle_components()
        if idle:
            lines.append("never-changing components: " + ", ".join(idle))
        for selector, missing in sorted(self.uncovered_selector_cases.items()):
            if missing:
                lines.append(
                    f"selector {selector}: cases never taken: "
                    + ", ".join(str(m) for m in missing)
                )
        return "\n".join(lines)


def profile_activity(
    spec: Specification,
    cycles: int,
    io: IOSystem | Iterable[int | str] | None = None,
) -> ActivityProfile:
    """Profile *spec* for *cycles* cycles on the interpreter backend."""
    backend = InterpreterBackend()
    all_names = spec.component_names()
    result = backend.run(
        spec,
        cycles=cycles,
        io=io,
        trace=TraceOptions(
            trace_cycles=True, trace_memory_accesses=False, names=tuple(all_names)
        ),
    )
    toggles = {name: 0 for name in all_names}
    previous: dict[str, int] = {}
    for trace in result.trace.cycles:
        for name, value in trace.values.items():
            if name in previous and previous[name] != value:
                toggles[name] += 1
            previous[name] = value

    selector_coverage: dict[str, dict[int, int]] = {}
    uncovered: dict[str, list[int]] = {}
    for component in spec.selectors():
        assert isinstance(component, Selector)
        taken = dict(result.stats.selector_case_usage.get(component.name, {}))
        selector_coverage[component.name] = taken
        uncovered[component.name] = [
            index for index in range(component.case_count) if index not in taken
        ]

    return ActivityProfile(
        cycles=cycles,
        toggle_counts=toggles,
        selector_coverage=selector_coverage,
        uncovered_selector_cases=uncovered,
        alu_function_usage=dict(result.stats.alu_function_usage),
        stats=result.stats,
    )
