"""Fault injection (Section 2.3.2 of the paper).

"One way to [test a design] is by fault injection, the process of inserting
a fault in the specification to cause errors (by design) in the simulation
run."  Two mechanisms are provided:

* **specification-level faults** — the specification is rewritten so that a
  combinational component is stuck at a value (or has one bit stuck).  The
  rewritten specification runs on *either* backend, exactly as the paper
  describes inserting the fault "in the specification";
* **run-time (transient) faults** — an ``override`` hook that flips bits
  of chosen components during chosen cycles, for single-event-upset style
  experiments; it runs identically on every backend via the shared
  instrumentation layer (:mod:`repro.core.instrument`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backend import ValueOverride
from repro.errors import FaultConfigurationError
from repro.rtl.alu_ops import FN_RIGHT
from repro.rtl.bits import WORD_BITS, mask_word
from repro.rtl.builder import as_expression
from repro.rtl.components import Alu, Component
from repro.rtl.expressions import constant_expression, reference_expression
from repro.rtl.spec import Specification

#: Suffix appended to a component's name when it is displaced by a fault.
_ORIGINAL_SUFFIX = "faultorig"


def _require_combinational(spec: Specification, name: str) -> Component:
    if name not in spec:
        raise FaultConfigurationError(f"cannot fault unknown component '{name}'")
    component = spec.component(name)
    if not component.is_combinational:
        raise FaultConfigurationError(
            f"specification-level faults only apply to ALUs and selectors; "
            f"'{name}' is a memory (use a run-time fault instead)"
        )
    return component


def _rebuild(spec: Specification, components: list[Component]) -> Specification:
    return Specification(
        header_comment=spec.header_comment + " {with injected fault}",
        components=tuple(components),
        declarations=spec.declarations,
        cycles=spec.cycles,
        macros=dict(spec.macros),
        source_name=spec.source_name + "+fault",
    )


def inject_stuck_at(spec: Specification, name: str, value: int) -> Specification:
    """Return a copy of *spec* where component *name* is stuck at *value*.

    The faulty component is replaced by an ALU that always produces the
    constant, so every consumer sees the stuck value on both backends.
    """
    _require_combinational(spec, name)
    value = mask_word(value)
    stuck = Alu(
        name=name,
        funct=constant_expression(FN_RIGHT),
        left=constant_expression(0),
        right=constant_expression(value),
    )
    components = [
        stuck if component.name == name else component
        for component in spec.components
    ]
    return _rebuild(spec, components)


def inject_stuck_bit(
    spec: Specification, name: str, bit: int, stuck_value: int
) -> Specification:
    """Return a copy of *spec* where one output bit of *name* is stuck.

    The original component is kept under a new name and a pair of masking
    ALUs reconstructs its output with the chosen bit forced to 0 or 1 — the
    classic stuck-at-0 / stuck-at-1 model.
    """
    if not 0 <= bit < WORD_BITS:
        raise FaultConfigurationError(f"bit {bit} outside the {WORD_BITS}-bit word")
    if stuck_value not in (0, 1):
        raise FaultConfigurationError("stuck_value must be 0 or 1")
    original = _require_combinational(spec, name)
    renamed = f"{name}{_ORIGINAL_SUFFIX}"
    if renamed in spec:
        raise FaultConfigurationError(
            f"cannot rename '{name}': '{renamed}' already exists"
        )
    displaced = _rename_component(original, renamed)
    clear_mask = mask_word(~(1 << bit))
    cleared_name = f"{name}faultmask"
    if cleared_name in spec:
        raise FaultConfigurationError(
            f"cannot add masking ALU: '{cleared_name}' already exists"
        )
    cleared = Alu(
        name=cleared_name,
        funct=constant_expression(8),            # AND
        left=reference_expression(renamed),
        right=constant_expression(clear_mask),
    )
    forced = Alu(
        name=name,
        funct=constant_expression(9),            # OR
        left=reference_expression(cleared_name),
        right=constant_expression(stuck_value << bit),
    )
    components: list[Component] = []
    for component in spec.components:
        if component.name == name:
            components.extend([displaced, cleared, forced])
        else:
            components.append(component)
    return _rebuild(spec, components)


def _rename_component(component: Component, new_name: str) -> Component:
    if isinstance(component, Alu):
        return Alu(
            name=new_name,
            funct=component.funct,
            left=component.left,
            right=component.right,
        )
    # selectors: rebuild with the new name and the same expressions
    from repro.rtl.components import Selector

    assert isinstance(component, Selector)
    return Selector(name=new_name, select=component.select, cases=component.cases)


# ---------------------------------------------------------------------------
# Run-time (transient) faults: override hooks, honored by every backend
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransientFault:
    """Flip *bit* of component *name* during the half-open cycle window."""

    name: str
    bit: int
    first_cycle: int
    last_cycle: int | None = None   # None = until the end of the run

    def active(self, cycle: int) -> bool:
        if cycle < self.first_cycle:
            return False
        return self.last_cycle is None or cycle <= self.last_cycle


def transient_override(faults: list[TransientFault]) -> ValueOverride:
    """Build an ``override`` hook applying the given transient faults."""
    for fault in faults:
        if not 0 <= fault.bit < WORD_BITS:
            raise FaultConfigurationError(
                f"bit {fault.bit} outside the {WORD_BITS}-bit word"
            )

    def override(name: str, value: int, cycle: int) -> int:
        for fault in faults:
            if fault.name == name and fault.active(cycle):
                value ^= 1 << fault.bit
        return mask_word(value)

    return override


def stuck_at_override(name: str, value: int) -> ValueOverride:
    """An ``override`` hook forcing *name* to *value* on every cycle.

    Unlike :func:`inject_stuck_at` this also works for memories (it forces
    the latched output seen by other components).
    """
    forced = mask_word(value)

    def override(component: str, current: int, cycle: int) -> int:
        return forced if component == name else current

    return override
