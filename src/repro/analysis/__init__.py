"""Design verification aids: fault injection, profiling, equivalence sweeps."""

from repro.analysis.equivalence import (
    FaultDetection,
    LibraryVerification,
    fault_detection_experiment,
    verify_library,
)
from repro.analysis.faults import (
    TransientFault,
    inject_stuck_at,
    inject_stuck_bit,
    stuck_at_override,
    transient_override,
)
from repro.analysis.profiling import ActivityProfile, profile_activity

__all__ = [
    "FaultDetection",
    "LibraryVerification",
    "fault_detection_experiment",
    "verify_library",
    "TransientFault",
    "inject_stuck_at",
    "inject_stuck_bit",
    "stuck_at_override",
    "transient_override",
    "ActivityProfile",
    "profile_activity",
]
