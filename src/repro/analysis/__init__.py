"""Design verification aids: fault injection, profiling, equivalence sweeps.

Section 2.3 of the paper frames simulation as a design-verification tool;
this package holds the experiments an engineer would run on top of the
simulator:

* :mod:`repro.analysis.faults` — specification-level stuck-at faults and
  run-time transient overrides (Section 2.3.2's "inserting a fault in the
  specification to cause errors by design"), with helpers to test whether
  a fault is observable at the machine's outputs;
* :mod:`repro.analysis.profiling` — activity profiles over a run: which
  components toggle, which memories are touched, where the cycles go;
* :mod:`repro.analysis.equivalence` — systematic cross-backend sweeps over
  the bundled machine library, extending the paper's interpreter-vs-
  compiler equivalence claim to every backend and machine at once.

Fault-injection ``override`` hooks run on every backend: the shared
instrumentation layer (:mod:`repro.core.instrument`) implements the hook
once, and when spec-level optimization changed the specification the run
executes the lowered program's full pre-specopt schedule so the hook sees
every original component.  Query ``supports_override`` on a backend or
prepared simulation to check a third-party backend programmatically.
"""

from repro.analysis.equivalence import (
    FaultDetection,
    LibraryVerification,
    fault_detection_experiment,
    verify_library,
)
from repro.analysis.faults import (
    TransientFault,
    inject_stuck_at,
    inject_stuck_bit,
    stuck_at_override,
    transient_override,
)
from repro.analysis.profiling import ActivityProfile, profile_activity

__all__ = [
    "FaultDetection",
    "LibraryVerification",
    "fault_detection_experiment",
    "verify_library",
    "TransientFault",
    "inject_stuck_at",
    "inject_stuck_bit",
    "stuck_at_override",
    "transient_override",
    "ActivityProfile",
    "profile_activity",
]
