"""Design-verification helpers built on cross-backend comparison.

Chapter 5 of the paper claims the compiled simulator "maintain[s] the same
functionality" as the interpreter.  :func:`verify_library` sweeps every
bundled machine through :func:`repro.core.comparison.compare_backends` and
reports the outcome, and :func:`fault_detection_experiment` demonstrates the
fault-injection methodology of Section 2.3.2: a stuck-at fault is considered
*detected* when the faulty design's outputs differ from the good design's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.faults import inject_stuck_at
from repro.core.comparison import ComparisonResult, compare_backends
from repro.core.simulator import Simulator
from repro.machines.library import all_machines
from repro.rtl.spec import Specification


@dataclass
class LibraryVerification:
    """Equivalence results for every bundled machine."""

    results: dict[str, ComparisonResult] = field(default_factory=dict)

    @property
    def all_equivalent(self) -> bool:
        return all(result.equivalent for result in self.results.values())

    def render(self) -> str:
        lines = ["backend equivalence across the machine library:"]
        for name, result in self.results.items():
            lines.append(f"  {name:<22s} {result.summary()}")
        return "\n".join(lines)


def verify_library(max_cycles: int = 400) -> LibraryVerification:
    """Run every bundled machine on both backends and compare."""
    verification = LibraryVerification()
    for entry in all_machines():
        spec = entry.build()
        cycles = min(entry.demo_cycles, max_cycles)
        verification.results[entry.name] = compare_backends(spec, cycles=cycles)
    return verification


@dataclass(frozen=True)
class FaultDetection:
    """Outcome of simulating one injected fault."""

    component: str
    stuck_value: int
    detected: bool
    good_outputs: tuple[int, ...]
    faulty_outputs: tuple[int, ...]


def fault_detection_experiment(
    spec: Specification,
    components: Sequence[str],
    cycles: int,
    stuck_value: int = 0,
    backend: str = "compiled",
) -> list[FaultDetection]:
    """Inject a stuck-at fault on each component and check the outputs change.

    Returns one :class:`FaultDetection` per component; ``detected`` is True
    when the memory-mapped output stream differs from the fault-free run —
    the observable criterion an engineer would use on a prototype.
    """
    good = Simulator(spec, backend=backend).run(cycles=cycles)
    good_outputs = tuple(good.output_values())
    detections = []
    for name in components:
        faulty_spec = inject_stuck_at(spec, name, stuck_value)
        faulty = Simulator(faulty_spec, backend=backend).run(cycles=cycles)
        faulty_outputs = tuple(faulty.output_values())
        detections.append(
            FaultDetection(
                component=name,
                stuck_value=stuck_value,
                detected=faulty_outputs != good_outputs,
                good_outputs=good_outputs,
                faulty_outputs=faulty_outputs,
            )
        )
    return detections
