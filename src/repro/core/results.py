"""Result object returned by every simulation backend."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.iosystem import OutputEvent
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog


@dataclass
class SimulationResult:
    """Everything produced by running a specification for some cycles.

    ``final_values`` holds, for every component, the value visible at the end
    of the last simulated cycle (for memories this is the latched output, the
    paper's ``temp`` variable).  ``memory_contents`` holds the full cell
    arrays of every memory.
    """

    backend: str
    cycles_run: int
    final_values: dict[str, int] = field(default_factory=dict)
    memory_contents: dict[str, list[int]] = field(default_factory=dict)
    outputs: list[OutputEvent] = field(default_factory=list)
    trace: TraceLog = field(default_factory=lambda: TraceLog(enabled=False))
    stats: SimulationStats = field(default_factory=SimulationStats)
    #: seconds spent preparing the simulation (table build / code generation)
    prepare_seconds: float = 0.0
    #: seconds spent running the simulation loop
    run_seconds: float = 0.0

    # -- convenience accessors ---------------------------------------------------

    def value(self, name: str) -> int:
        """Final visible value of component *name*."""
        return self.final_values[name]

    def memory(self, name: str) -> list[int]:
        """Final contents of memory *name*."""
        return self.memory_contents[name]

    def output_values(self, address: int | None = None) -> list[int]:
        """Values written to memory-mapped output, optionally by address."""
        return [
            event.value
            for event in self.outputs
            if address is None or event.address == address
        ]

    def output_integers(self) -> list[int]:
        """Values written to the integer output address (1)."""
        return self.output_values(address=1)

    def output_text(self) -> str:
        pieces: list[str] = []
        for event in self.outputs:
            if event.is_character:
                pieces.append(event.character)
            else:
                pieces.append(event.render() + "\n")
        return "".join(pieces)

    @property
    def total_seconds(self) -> float:
        return self.prepare_seconds + self.run_seconds

    def summary(self) -> str:
        return (
            f"{self.backend}: {self.cycles_run} cycles in "
            f"{self.run_seconds:.3f}s (prepare {self.prepare_seconds:.3f}s), "
            f"{len(self.outputs)} outputs"
        )
