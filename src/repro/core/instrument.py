"""The single instrumentation layer every backend honors.

Statistics recording, per-cycle value tracing, memory access tracing and
the per-cycle ``override`` hook (fault injection) used to be implemented
three times — once per backend — with slightly different capabilities (the
compiled backend had neither ``override`` nor the full statistics
breakdown).  This module implements them once, as an
:class:`Instrumentation` object whose hook methods every backend calls at
the same points of the cycle:

* after each ALU / selector evaluates (:meth:`Instrumentation.alu`,
  :meth:`Instrumentation.selector`) — records the function code / case
  index and applies the override to the value about to be stored;
* after the combinational phase (:meth:`Instrumentation.wants_cycle_trace`
  plus a ``record_cycle*`` call) — captures the traced values exactly as
  they were used during the cycle;
* after each memory update (:meth:`Instrumentation.memory`) — records the
  access, emits "Read from"/"Write to" trace records from the operation's
  trace bits, and applies the override to the latched output.

Because every backend calls the same hooks in the same order, the three
backends produce bit-identical traces and identical statistics for the
same effective program — the parity the equivalence matrix asserts.

:func:`plan_run` is the shared front half of every backend's ``run``: it
normalises the run arguments, decides whether the run needs the *full*
(pre-specopt) program variant (an ``override`` hook must see every original
component), resolves run-time traced names through the lowered program's
observables map, and builds the :class:`Instrumentation` — or ``None`` for
the fast path, so an uninstrumented run pays for none of this.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.core.backend import resolve_cycles, resolve_trace
from repro.core.iosystem import IOSystem, coerce_io
from repro.core.stats import SimulationStats
from repro.core.trace import TraceLog, TraceOptions
from repro.errors import DeadlineExceededError, UnknownComponentError

# ---------------------------------------------------------------------------
# Cooperative run deadlines
# ---------------------------------------------------------------------------

#: Hook calls between deadline checks: frequent enough that a cycle of any
#: bundled machine spans at most a few intervals, rare enough that the
#: ``time.monotonic`` call stays off the per-component hot path.
DEADLINE_CHECK_INTERVAL = 64

_AMBIENT_DEADLINE = threading.local()


def current_run_deadline() -> float | None:
    """The calling thread's run deadline (monotonic timestamp), if any."""
    return getattr(_AMBIENT_DEADLINE, "value", None)


@contextmanager
def run_deadline(deadline: float | None):
    """Scope a cooperative deadline over a ``PreparedSimulation.run`` call.

    The serving executors wrap run execution in this context manager;
    :func:`plan_run` picks the deadline up when building the run's
    :class:`Instrumentation`, whose hooks then check the monotonic clock
    every :data:`DEADLINE_CHECK_INTERVAL` calls and raise
    :class:`~repro.errors.DeadlineExceededError` once it has passed.  The
    deadline is carried in a thread-local, so the ``run`` signature —
    uniform across backends, including generated compiled code — never
    changes, and concurrent runs on other worker threads are unaffected.
    """
    if deadline is None:
        yield
        return
    previous = current_run_deadline()
    _AMBIENT_DEADLINE.value = deadline
    try:
        yield
    finally:
        _AMBIENT_DEADLINE.value = previous

#: A resolved trace entry: (reported name, "value" | "const", payload).
#: "value" payload is the live component name to read; "const" payload is
#: the statically-known per-cycle value of an eliminated component.
TraceEntry = tuple


class Instrumentation:
    """Per-run bundle of stats + trace + override hooks (one per run)."""

    __slots__ = (
        "stats",
        "override",
        "trace_log",
        "trace_accesses",
        "trace_limit",
        "traced",
        "deadline",
        "_ticks",
    )

    def __init__(
        self,
        stats: SimulationStats | None = None,
        override: Callable[[str, int, int], int] | None = None,
        trace_log: TraceLog | None = None,
        trace_accesses: bool = False,
        trace_limit: int | None = None,
        traced: tuple[TraceEntry, ...] = (),
        deadline: float | None = None,
    ) -> None:
        self.stats = stats
        self.override = override
        self.trace_log = trace_log if trace_log is not None else TraceLog(False)
        self.trace_accesses = trace_accesses
        self.trace_limit = trace_limit
        self.traced = traced
        #: monotonic timestamp past which hooks raise DeadlineExceededError
        self.deadline = deadline
        self._ticks = 0

    # -- cooperative deadline ------------------------------------------------

    def tick(self) -> None:
        """Count one hook call; periodically check the run deadline.

        Every backend's instrumented path calls the hooks per component
        per cycle, so the check fires within a bounded number of
        component evaluations of the deadline passing — on any backend,
        generated compiled code included — without putting a clock read
        on every evaluation.
        """
        self._ticks += 1
        if self._ticks >= DEADLINE_CHECK_INTERVAL:
            self._ticks = 0
            if time.monotonic() > self.deadline:
                raise DeadlineExceededError(
                    "run exceeded its deadline (cooperative timeout check)"
                )

    # -- combinational hooks -------------------------------------------------

    def alu(self, name: str, funct: int, value: int, cycle: int) -> int:
        """Record one ALU evaluation; returns the value to store."""
        if self.deadline is not None:
            self.tick()
        if self.stats is not None:
            self.stats.record_alu_function(funct)
        if self.override is not None:
            return self.override(name, value, cycle)
        return value

    def selector(self, name: str, index: int, value: int, cycle: int) -> int:
        """Record one selector evaluation; returns the value to store."""
        if self.deadline is not None:
            self.tick()
        if self.stats is not None:
            self.stats.record_selector_case(name, index)
        if self.override is not None:
            return self.override(name, value, cycle)
        return value

    # -- memory hook ---------------------------------------------------------

    def memory(
        self, name: str, operation: int, address: int, output: int, cycle: int
    ) -> int:
        """Record one memory update; returns the output value to latch.

        The access count and the "Read from"/"Write to" trace record use
        the *pre-override* output, exactly as the interpreter always has;
        only the latched value is overridden.
        """
        if self.deadline is not None:
            self.tick()
        if self.stats is not None:
            self.stats.record_memory_access(name, operation, address)
        if self.trace_accesses:
            if (operation & 5) == 5:
                self.trace_log.record_access(
                    cycle, name, "write", address, output
                )
            elif (operation & 9) == 8:
                self.trace_log.record_access(
                    cycle, name, "read", address, output
                )
        if self.override is not None:
            return self.override(name, output, cycle)
        return output

    # -- cycle tracing -------------------------------------------------------

    def wants_cycle_trace(self) -> bool:
        """True when this cycle's traced values should be recorded."""
        if not self.traced:
            return False
        limit = self.trace_limit
        return limit is None or len(self.trace_log.cycles) < limit

    def record_cycle(self, cycle: int, values: dict[str, int]) -> None:
        """Record an already-resolved ``{traced name: value}`` row."""
        self.trace_log.record_cycle(cycle, values)

    def record_cycle_values(
        self, cycle: int, values: dict[str, int]
    ) -> None:
        """Resolve the traced names against a full value mapping and record.

        *values* maps every live component name to its current value (the
        compiled backend's generated code passes its whole local state);
        eliminated constants and aliases resolve through the entries built
        by :func:`plan_run`.
        """
        row: dict[str, int] = {}
        for name, kind, payload in self.traced:
            row[name] = values[payload] if kind == "value" else payload
        self.trace_log.record_cycle(cycle, row)

    # -- end of run ----------------------------------------------------------

    def finish(self, cycles_run: int, evaluations_per_cycle: int) -> None:
        """Fold the whole-run counters into the statistics object."""
        if self.stats is not None:
            self.stats.cycles += cycles_run
            self.stats.component_evaluations += (
                cycles_run * evaluations_per_cycle
            )


@dataclass
class RunPlan:
    """Everything a backend needs to execute one normalised run."""

    cycle_count: int
    io_system: IOSystem
    options: TraceOptions
    trace_log: TraceLog
    stats: SimulationStats | None
    #: the shared instrumentation, or ``None`` for the uninstrumented fast path
    inst: Instrumentation | None
    #: the program variant to execute (full when the override hook must see
    #: every pre-specopt component)
    variant: object
    uses_full: bool

    def finish(self) -> None:
        """Record the whole-run statistics counters."""
        if self.inst is not None:
            self.inst.finish(
                self.cycle_count, self.variant.evaluations_per_cycle
            )


def resolve_traced_names(
    program, variant, names, strict: bool
) -> tuple[TraceEntry, ...]:
    """Resolve run-time traced *names* through the observables map.

    Names the optimizer removed resolve to their constant or surviving
    alias; unknown names raise :class:`UnknownComponentError` exactly as a
    state lookup would (only when *strict*, i.e. when the run would really
    record a trace row).
    """
    observables = program.observables
    entries: list[TraceEntry] = []
    for name in names:
        resolution = observables.get(name)
        if resolution is None:
            if strict:
                raise UnknownComponentError(f"component <{name}> not found")
            continue
        if variant is program.full:
            # every original component is live in the full variant
            entries.append((name, "value", name))
        elif resolution[0] == "const":
            entries.append((name, "const", resolution[1]))
        else:  # "live" or "alias": read the surviving component
            entries.append((name, "value", resolution[1]))
    return tuple(entries)


def plan_run(
    program,
    cycles: int | None,
    io,
    trace,
    collect_stats: bool,
    override,
) -> RunPlan:
    """Normalise one run's arguments against a lowered *program*.

    This is the shared front half of every backend's ``run``: cycle count
    and trace-option resolution, I/O coercion, program-variant selection,
    traced-name resolution, and instrumentation construction.
    """
    spec = program.spec
    cycle_count = resolve_cycles(spec, cycles)
    options = resolve_trace(spec, trace)
    io_system = coerce_io(io)
    uses_full = override is not None and program.changed
    variant = program.variant(uses_full)
    trace_log = TraceLog(
        enabled=options.trace_cycles or options.trace_memory_accesses
    )
    stats = SimulationStats() if collect_stats else None

    traced: tuple[TraceEntry, ...] = ()
    if options.trace_cycles:
        names = (
            list(options.names)
            if options.names is not None
            else spec.traced_names
        )
        if names:
            will_record = cycle_count > 0 and (
                options.limit is None or options.limit > 0
            )
            traced = resolve_traced_names(
                program, variant, names, strict=will_record
            )

    deadline = current_run_deadline()
    inst: Instrumentation | None = None
    if (
        stats is not None
        or override is not None
        or traced
        or options.trace_memory_accesses
        or deadline is not None
    ):
        # a deadline alone forces the instrumented path: the hooks are the
        # only per-cycle call sites every backend shares, so an otherwise
        # fast-path run trades some speed for interruptibility
        inst = Instrumentation(
            stats=stats,
            override=override,
            trace_log=trace_log,
            trace_accesses=options.trace_memory_accesses,
            trace_limit=options.limit,
            traced=traced,
            deadline=deadline,
        )
    return RunPlan(
        cycle_count=cycle_count,
        io_system=io_system,
        options=options,
        trace_log=trace_log,
        stats=stats,
        inst=inst,
        variant=variant,
        uses_full=uses_full,
    )
