"""Public simulation API: the Simulator facade, backends, traces and results."""

from repro.core.backend import Backend, PreparedSimulation
from repro.core.comparison import (
    ComparisonResult,
    assert_equivalent,
    compare_backends,
    compare_results,
)
from repro.core.iosystem import (
    IOSystem,
    NullIO,
    OutputEvent,
    QueueIO,
    StreamIO,
    coerce_io,
)
from repro.core.results import SimulationResult
from repro.core.simulator import Simulator, make_backend, simulate
from repro.core.stats import MemoryStats, SimulationStats
from repro.core.trace import CycleTrace, MemoryAccessTrace, TraceLog, TraceOptions

__all__ = [
    "Backend",
    "PreparedSimulation",
    "ComparisonResult",
    "assert_equivalent",
    "compare_backends",
    "compare_results",
    "IOSystem",
    "NullIO",
    "OutputEvent",
    "QueueIO",
    "StreamIO",
    "coerce_io",
    "SimulationResult",
    "Simulator",
    "make_backend",
    "simulate",
    "MemoryStats",
    "SimulationStats",
    "CycleTrace",
    "MemoryAccessTrace",
    "TraceLog",
    "TraceOptions",
]
