"""Cross-backend equivalence checking.

The central claim of the paper is that the compiled simulator produces "the
same final output" as the interpreted one, only faster.  This module runs a
specification on both backends with identical inputs and compares every
observable: final component values, memory contents, memory-mapped outputs
and (optionally) the per-cycle trace.  The equivalence tests and several
benchmarks are built on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.specopt import SpecOptPasses
from repro.compiler.threaded import ThreadedBackend
from repro.core.backend import Backend, ValueOverride
from repro.core.iosystem import QueueIO
from repro.core.results import SimulationResult
from repro.core.trace import TraceOptions
from repro.errors import BackendError
from repro.interp.interpreter import InterpreterBackend
from repro.rtl.spec import Specification


@dataclass
class ComparisonResult:
    """The outcome of running one specification on two backends."""

    reference: SimulationResult
    candidate: SimulationResult
    mismatches: list[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        """Reference run time divided by candidate run time (>1 = faster)."""
        if self.candidate.run_seconds == 0:
            return float("inf")
        return self.reference.run_seconds / self.candidate.run_seconds

    def summary(self) -> str:
        status = "EQUIVALENT" if self.equivalent else "MISMATCH"
        return (
            f"{status}: {self.reference.backend} {self.reference.run_seconds:.4f}s "
            f"vs {self.candidate.backend} {self.candidate.run_seconds:.4f}s "
            f"(speedup {self.speedup:.1f}x)"
        )


def compare_results(
    reference: SimulationResult,
    candidate: SimulationResult,
    compare_trace: bool = False,
    compare_stats: bool = False,
) -> list[str]:
    """Mismatch descriptions between two results (empty = bit-identical).

    The canonical observable comparison — final values, memory contents,
    output events, and optionally the traces and statistics — used by the
    equivalence sweeps and the CLI's ``serve-batch --check``.
    ``compare_stats`` asserts the instrumentation-layer parity: identical
    cycle/evaluation counts and identical per-ALU/selector/memory
    breakdowns (only meaningful when both runs executed the same effective
    program, e.g. the same specopt configuration or an ``override`` run).
    """
    return _compare_results(reference, candidate, compare_trace,
                            compare_stats)


def _compare_results(
    reference: SimulationResult,
    candidate: SimulationResult,
    compare_trace: bool,
    compare_stats: bool = False,
) -> list[str]:
    mismatches: list[str] = []
    for name, value in reference.final_values.items():
        other = candidate.final_values.get(name)
        if other != value:
            mismatches.append(
                f"final value of '{name}': {value} (reference) != {other} (candidate)"
            )
    for name, cells in reference.memory_contents.items():
        other_cells = candidate.memory_contents.get(name)
        if other_cells != cells:
            mismatches.append(f"memory contents of '{name}' differ")
    ref_outputs = [(e.address, e.value) for e in reference.outputs]
    cand_outputs = [(e.address, e.value) for e in candidate.outputs]
    if ref_outputs != cand_outputs:
        mismatches.append(
            f"outputs differ: {len(ref_outputs)} reference events vs "
            f"{len(cand_outputs)} candidate events"
        )
    if compare_trace:
        ref_cycles = [(t.cycle, t.values) for t in reference.trace.cycles]
        cand_cycles = [(t.cycle, t.values) for t in candidate.trace.cycles]
        if ref_cycles != cand_cycles:
            mismatches.append("per-cycle traces differ")
        ref_accesses = [
            (a.cycle, a.memory, a.kind, a.address, a.value)
            for a in reference.trace.accesses
        ]
        cand_accesses = [
            (a.cycle, a.memory, a.kind, a.address, a.value)
            for a in candidate.trace.accesses
        ]
        if ref_accesses != cand_accesses:
            mismatches.append("memory access traces differ")
    if compare_stats and reference.stats != candidate.stats:
        mismatches.append(
            "statistics differ: "
            f"{reference.stats.cycles} cycles / "
            f"{reference.stats.component_evaluations} evaluations (reference) "
            f"vs {candidate.stats.cycles} / "
            f"{candidate.stats.component_evaluations} (candidate)"
        )
    return mismatches


def compare_backends(
    spec: Specification,
    cycles: int | None = None,
    inputs: Sequence[int | str] = (),
    reference: Backend | None = None,
    candidate: Backend | None = None,
    trace: bool = True,
    codegen_options: CodegenOptions | None = None,
    override: ValueOverride | None = None,
    compare_stats: bool = False,
) -> ComparisonResult:
    """Run *spec* on two backends with identical inputs and compare.

    By default the reference is the ASIM-style interpreter and the candidate
    the ASIM II-style compiled simulator — the comparison made throughout
    Chapter 5 of the paper.  ``override`` injects the same per-cycle fault
    hook into both runs; the backends' capability flags are consulted first
    so an unsupporting backend fails with a clear error before anything
    runs.
    """
    reference_backend = reference or InterpreterBackend()
    candidate_backend = candidate or CompiledBackend(codegen_options)
    if override is not None:
        for backend in (reference_backend, candidate_backend):
            if not getattr(backend, "supports_override", True):
                raise BackendError(
                    f"backend '{backend.name}' does not support per-cycle "
                    "value overrides (supports_override is False)"
                )
    trace_options = (
        TraceOptions(trace_cycles=True, trace_memory_accesses=True)
        if trace
        else TraceOptions.disabled()
    )
    reference_result = reference_backend.run(
        spec, cycles=cycles, io=QueueIO(inputs, strict=False),
        trace=trace_options, override=override,
    )
    candidate_result = candidate_backend.run(
        spec, cycles=cycles, io=QueueIO(inputs, strict=False),
        trace=trace_options, override=override,
    )
    mismatches = _compare_results(reference_result, candidate_result, trace,
                                  compare_stats)
    return ComparisonResult(
        reference=reference_result,
        candidate=candidate_result,
        mismatches=mismatches,
    )


def compare_all_backends(
    spec: Specification,
    cycles: int | None = None,
    inputs: Sequence[int | str] = (),
    trace: bool = True,
    specopt: bool | SpecOptPasses = False,
    override: ValueOverride | None = None,
    compare_stats: bool = False,
) -> dict[str, ComparisonResult]:
    """Run *spec* on every registered backend against the interpreter.

    The ASIM-style interpreter is the reference; every other registered
    backend is compared to it with identical inputs.  ``specopt`` applies
    the spec-level optimization pipeline to each candidate, so the
    pipeline's observable-equivalence claim is checked in the same sweep.
    ``override`` injects the same fault hook everywhere and
    ``compare_stats`` additionally requires identical statistics — the
    instrumentation-layer parity check.
    """
    from repro.core.simulator import BACKEND_NAMES

    builders = {
        "threaded": lambda: ThreadedBackend(specopt=specopt),
        "compiled": lambda: CompiledBackend(specopt=specopt),
    }
    # derive the candidate list from the registry so a newly registered
    # backend cannot silently fall out of the equivalence sweep
    candidates: dict[str, Backend] = {
        name: builders[name]()
        for name in BACKEND_NAMES
        if name != "interpreter"
    }
    return {
        name: compare_backends(
            spec, cycles=cycles, inputs=inputs, candidate=candidate,
            trace=trace, override=override, compare_stats=compare_stats,
        )
        for name, candidate in candidates.items()
    }


def assert_equivalent(
    spec: Specification,
    cycles: int | None = None,
    inputs: Iterable[int | str] = (),
) -> ComparisonResult:
    """Raise ``AssertionError`` if the two backends disagree on *spec*."""
    result = compare_backends(spec, cycles=cycles, inputs=tuple(inputs))
    if not result.equivalent:
        raise AssertionError(
            "backends disagree:\n  " + "\n  ".join(result.mismatches)
        )
    return result


def assert_all_backends_equivalent(
    spec: Specification,
    cycles: int | None = None,
    inputs: Iterable[int | str] = (),
    specopt: bool | SpecOptPasses = False,
    override: ValueOverride | None = None,
    compare_stats: bool = False,
) -> dict[str, ComparisonResult]:
    """Raise ``AssertionError`` unless every backend agrees on *spec*."""
    results = compare_all_backends(
        spec, cycles=cycles, inputs=tuple(inputs), specopt=specopt,
        override=override, compare_stats=compare_stats,
    )
    problems = [
        f"{name}: {mismatch}"
        for name, result in results.items()
        for mismatch in result.mismatches
    ]
    if problems:
        raise AssertionError("backends disagree:\n  " + "\n  ".join(problems))
    return results
