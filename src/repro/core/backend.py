"""Simulation backend interface.

Three backends implement this interface — the two systems of the paper
plus the classic middle point of the design space they frame:

* :class:`repro.interp.interpreter.InterpreterBackend` — ASIM: the
  specification is read into tables and interpreted every cycle;
* :class:`repro.compiler.threaded.ThreadedBackend` — threaded code: every
  component is compiled into a Python closure over pre-bound locals and the
  closures are chained into a flat per-cycle op list;
* :class:`repro.compiler.compiled.CompiledBackend` — ASIM II: the
  specification is compiled into a program which is then executed.

``prepare`` corresponds to the paper's preparation phase ("generate tables"
for ASIM, "generate code" + "compile" for ASIM II) and ``run`` to the
simulation phase; both report their elapsed time so that Figure 5.1 can be
regenerated.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable

from repro.core.iosystem import IOSystem
from repro.core.results import SimulationResult
from repro.core.trace import TraceOptions
from repro.errors import SimulationError
from repro.rtl.spec import Specification

#: Optional per-component value override hook (fault injection):
#: called as ``override(name, value, cycle)`` and returns the value to use.
ValueOverride = Callable[[str, int, int], int]


def resolve_cycles(spec: Specification, cycles: int | None) -> int:
    """Determine how many cycles to run: explicit argument or the spec's."""
    if cycles is not None:
        if cycles < 0:
            raise SimulationError(f"cycle count must be non-negative, got {cycles}")
        return cycles
    if spec.cycles is not None:
        return spec.cycles
    raise SimulationError(
        "no cycle count: pass cycles= or declare '= N' in the specification"
    )


def resolve_trace(spec: Specification, trace: TraceOptions | bool | None) -> TraceOptions:
    """Normalise the ``trace`` argument accepted by ``run``."""
    if isinstance(trace, TraceOptions):
        return trace
    if trace:
        return TraceOptions(trace_cycles=True, trace_memory_accesses=True)
    if trace is None and spec.traced_names:
        # The specification asked for tracing via '*' declarations.
        return TraceOptions(trace_cycles=True, trace_memory_accesses=True)
    return TraceOptions.disabled()


class PreparedSimulation(ABC):
    """A specification made ready to run by a backend.

    A prepared simulation is reusable and re-entrant: every ``run`` builds
    fresh mutable state (values, memory arrays, I/O), so one prepared
    instance may be run many times — with different cycle counts, inputs
    and options — and runs are deterministic given the same arguments.
    The serving layer (:mod:`repro.serving`) relies on this to fan one
    prepared machine out over a worker pool.

    Run options are uniform across the three built-in backends — every
    backend consumes the same lowered program (:mod:`repro.lowering`) and
    honors the same instrumentation layer (:mod:`repro.core.instrument`):

    * ``override`` — per-cycle value override (fault injection), supported
      everywhere.  When spec-level optimization changed the specification,
      the run executes the lowered program's *full* (pre-specopt) step
      list so the hook sees — and can fault — every original component.
    * ``collect_stats`` — the full breakdown (per-ALU function,
      per-selector case, per-memory operation) on every backend; the
      compiled backend routes stats runs through its generated
      instrumented function.  Recording per-component statistics costs a
      hook call per component per cycle on every backend — on a hot path
      pass ``collect_stats=False`` (and ``trace=False``) to run each
      backend's uninstrumented fast path, which carries no hook call
      sites at all (that is the configuration the Figure 5.1 speedups
      are measured in).
    * ``trace`` — per-cycle value traces and memory access traces are
      bit-identical across backends.  Tracing a name the optimizer removed
      resolves through the program's observables map; an unknown name
      raises ``UnknownComponentError`` everywhere.

    The ``supports_override`` / ``supports_full_stats`` class flags let
    callers query capabilities programmatically instead of catching
    ``BackendError`` at run time; third-party backends that cannot honor a
    hook should set them to ``False``.
    """

    #: whether ``run(override=...)`` honors the per-cycle value hook
    supports_override: bool = True
    #: whether ``collect_stats`` records the full per-component breakdown
    supports_full_stats: bool = True

    def __init__(self, spec: Specification, backend_name: str,
                 prepare_seconds: float) -> None:
        self.spec = spec
        self.backend_name = backend_name
        self.prepare_seconds = prepare_seconds

    @abstractmethod
    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        """Simulate for *cycles* cycles and return a :class:`SimulationResult`."""

    def run_lanes(
        self,
        cycles: int | None = None,
        ios: Iterable[IOSystem] = (),
        collect_stats: bool = True,
    ) -> list:
        """Run one lane group: N runs advanced together, one per I/O system.

        Every lane executes the same cycle count with fast-path (untraced,
        override-free) semantics; see :mod:`repro.lowering.lanes`.  Returns
        one ``LaneOutcome`` per lane, in order — a lane that raises records
        its error without poisoning its neighbours.  Backends exposing the
        shared lowered ``program`` get the generic lane evaluator for free;
        anything else falls back to scalar runs per lane, so third-party
        backends stay correct without opting in.
        """
        program = getattr(self, "program", None)
        if program is not None:
            from repro.lowering.lanes import run_lanes

            return run_lanes(
                program,
                cycles=cycles,
                ios=ios,
                collect_stats=collect_stats,
                backend_name=self.backend_name,
                prepare_seconds=self.prepare_seconds,
            )
        from repro.lowering.lanes import LaneOutcome

        outcomes = []
        for io in ios:
            try:
                result = self.run(
                    cycles=cycles, io=io, trace=False,
                    collect_stats=collect_stats,
                )
            except SimulationError as exc:
                outcomes.append(LaneOutcome(result=None, error=exc))
            else:
                outcomes.append(LaneOutcome(result=result, error=None))
        return outcomes


class Backend(ABC):
    """Factory turning specifications into :class:`PreparedSimulation`."""

    #: short name used in results and benchmark reports
    name: str = "backend"
    #: capability flags mirrored from :class:`PreparedSimulation` so callers
    #: can query a backend before preparing anything
    supports_override: bool = True
    supports_full_stats: bool = True

    @abstractmethod
    def prepare(self, spec: Specification) -> PreparedSimulation:
        """Build whatever the backend needs to simulate *spec*.

        This is the paper's preparation phase, and its cost ranks exactly
        as Figure 5.1 does: trivial for the interpreter (sort the tables,
        ~0.5 ms on the Fig 5.1 sieve), cheap for the threaded backend
        (closure compilation, ~2 ms), expensive for the compiled backend
        (generate + byte-compile a module, ~8 ms).  The threaded and
        compiled backends consult the prepare cache
        (:mod:`repro.compiler.cache`, on by default), which stores the
        shared lowered program (:mod:`repro.lowering`) keyed on a stable
        content hash of (specification, specopt passes); backend-private
        artifacts (closure plans, generated modules) are memoized on that
        program, so a repeated ``prepare`` of the same machine reuses
        everything and sets ``cache_hit``.  Preparation depends only on
        the specification — never on run options — which is what lets
        one prepared artifact serve many concurrent runs
        (:mod:`repro.serving`).
        """

    def run(
        self,
        spec: Specification,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        """Convenience: prepare and run in one call."""
        prepared = self.prepare(spec)
        return prepared.run(
            cycles=cycles,
            io=io,
            trace=trace,
            collect_stats=collect_stats,
            override=override,
        )
