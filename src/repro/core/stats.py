"""Simulation statistics.

Section 1.4 of the paper: "the register transfer execution will typically
produce statistics about the actual simulation, such as execution cycles
required, memory accesses, and other related information."  The
:class:`SimulationStats` object collects exactly that: cycle counts,
per-memory access counts broken down by operation, component evaluation
counts and selector/ALU activity.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class MemoryStats:
    """Access counts for one memory component."""

    reads: int = 0
    writes: int = 0
    inputs: int = 0
    outputs: int = 0
    #: distinct addresses touched (for coverage-style reporting)
    addresses_touched: set[int] = field(default_factory=set)

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes + self.inputs + self.outputs

    def record(self, operation: int, address: int) -> None:
        op = operation & 3
        if op == 0:
            self.reads += 1
        elif op == 1:
            self.writes += 1
        elif op == 2:
            self.inputs += 1
        else:
            self.outputs += 1
        self.addresses_touched.add(address)


@dataclass
class SimulationStats:
    """Aggregated statistics for one simulation run."""

    cycles: int = 0
    component_evaluations: int = 0
    memories: dict[str, MemoryStats] = field(default_factory=dict)
    #: how many times each ALU function code was evaluated
    alu_function_usage: Counter = field(default_factory=Counter)
    #: (selector name -> Counter of case indices taken)
    selector_case_usage: dict[str, Counter] = field(default_factory=dict)

    # -- recording -------------------------------------------------------------

    def record_cycle(self) -> None:
        self.cycles += 1

    def record_evaluation(self, count: int = 1) -> None:
        self.component_evaluations += count

    def record_memory_access(self, memory: str, operation: int, address: int) -> None:
        self.memories.setdefault(memory, MemoryStats()).record(operation, address)

    def record_alu_function(self, funct: int) -> None:
        self.alu_function_usage[funct] += 1

    def record_selector_case(self, selector: str, index: int) -> None:
        self.selector_case_usage.setdefault(selector, Counter())[index] += 1

    # -- queries -----------------------------------------------------------------

    def memory(self, name: str) -> MemoryStats:
        return self.memories.setdefault(name, MemoryStats())

    @property
    def total_memory_accesses(self) -> int:
        return sum(stats.total_accesses for stats in self.memories.values())

    @property
    def total_memory_writes(self) -> int:
        return sum(stats.writes for stats in self.memories.values())

    @property
    def total_memory_reads(self) -> int:
        return sum(stats.reads for stats in self.memories.values())

    def summary(self) -> str:
        """Multi-line human readable report (used by examples)."""
        lines = [
            f"cycles executed          : {self.cycles}",
            f"component evaluations    : {self.component_evaluations}",
            f"total memory accesses    : {self.total_memory_accesses}",
        ]
        for name in sorted(self.memories):
            stats = self.memories[name]
            lines.append(
                f"  {name:<12s} reads={stats.reads} writes={stats.writes} "
                f"inputs={stats.inputs} outputs={stats.outputs} "
                f"cells touched={len(stats.addresses_touched)}"
            )
        return "\n".join(lines)
