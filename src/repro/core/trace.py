"""Cycle tracing.

The paper's generated simulators print, every cycle, the values of the
components marked with ``*`` in the declaration list, plus "Read from" /
"Write to" lines for memories whose operation carries a trace bit.  The
:class:`TraceLog` captures the same information as structured records and
can render them in the paper's textual format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class CycleTrace:
    """The traced component values for one simulation cycle.

    Memory components report the value *used* during the cycle (the latched
    output), matching the paper: "the value used in the computation is
    printed before it is updated".
    """

    cycle: int
    values: dict[str, int]

    def render(self) -> str:
        parts = [f"Cycle {self.cycle:3d}"]
        parts.extend(f" {name}= {value}" for name, value in self.values.items())
        return "".join(parts)


@dataclass(frozen=True)
class MemoryAccessTrace:
    """A traced memory read or write (operation trace bits 4 / 8)."""

    cycle: int
    memory: str
    kind: str  # "read" or "write"
    address: int
    value: int

    def render(self) -> str:
        if self.kind == "write":
            return f"Write to {self.memory} at {self.address}: {self.value}"
        return f"Read from {self.memory} at {self.address}: {self.value}"


class TraceLog:
    """Accumulates cycle traces and memory access traces for one run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.cycles: list[CycleTrace] = []
        self.accesses: list[MemoryAccessTrace] = []

    def __len__(self) -> int:
        return len(self.cycles)

    def __iter__(self) -> Iterator[CycleTrace]:
        return iter(self.cycles)

    # -- recording ------------------------------------------------------------

    def record_cycle(self, cycle: int, values: dict[str, int]) -> None:
        if self.enabled:
            self.cycles.append(CycleTrace(cycle=cycle, values=dict(values)))

    def record_access(
        self, cycle: int, memory: str, kind: str, address: int, value: int
    ) -> None:
        if self.enabled:
            self.accesses.append(
                MemoryAccessTrace(
                    cycle=cycle, memory=memory, kind=kind, address=address,
                    value=value,
                )
            )

    # -- queries ---------------------------------------------------------------

    def values_of(self, name: str) -> list[int]:
        """The per-cycle series of one traced component."""
        return [trace.values[name] for trace in self.cycles if name in trace.values]

    def cycle(self, number: int) -> CycleTrace:
        for trace in self.cycles:
            if trace.cycle == number:
                return trace
        raise KeyError(f"cycle {number} was not traced")

    def accesses_of(self, memory: str, kind: str | None = None) -> list[MemoryAccessTrace]:
        return [
            access
            for access in self.accesses
            if access.memory == memory and (kind is None or access.kind == kind)
        ]

    # -- rendering ----------------------------------------------------------------

    def render(self) -> str:
        """Render the whole log in the paper's output format."""
        by_cycle: dict[int, list[str]] = {}
        for trace in self.cycles:
            by_cycle.setdefault(trace.cycle, []).append(trace.render())
        for access in self.accesses:
            by_cycle.setdefault(access.cycle, []).append(access.render())
        lines: list[str] = []
        for cycle in sorted(by_cycle):
            lines.extend(by_cycle[cycle])
        return "\n".join(lines)


@dataclass
class TraceOptions:
    """What to record during a run."""

    trace_cycles: bool = False
    trace_memory_accesses: bool = True
    #: Restrict cycle tracing to these names (defaults to the spec's ``*`` list).
    names: tuple[str, ...] | None = None
    #: Record at most this many cycle records (None = unlimited).
    limit: int | None = None

    @classmethod
    def disabled(cls) -> "TraceOptions":
        return cls(trace_cycles=False, trace_memory_accesses=False)

    @classmethod
    def full(cls) -> "TraceOptions":
        return cls(trace_cycles=True, trace_memory_accesses=True)
