"""The public ``Simulator`` facade.

This is the front door of the library: load a specification (from text, a
file or a :class:`~repro.rtl.builder.SpecBuilder`), pick a backend (the
ASIM-style interpreter or the ASIM II-style compiler) and run it.

>>> from repro import Simulator
>>> SPEC = '''# three bit counter
... count* next wrapped .
... A next 4 count 1
... A wrapped 8 next 7
... M count 0 wrapped 1 1
... .'''
>>> simulator = Simulator.from_text(SPEC, backend="compiled")
>>> result = simulator.run(cycles=10)
>>> result.value("count")
2
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.compiler.compiled import CompiledBackend
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.threaded import ThreadedBackend
from repro.core.backend import Backend, PreparedSimulation, ValueOverride
from repro.core.iosystem import IOSystem
from repro.core.results import SimulationResult
from repro.core.trace import TraceOptions
from repro.errors import BackendError
from repro.interp.interpreter import InterpreterBackend
from repro.rtl.builder import SpecBuilder
from repro.rtl.parser import parse_spec, parse_spec_file
from repro.rtl.spec import Specification
from repro.rtl.validate import ValidationReport, validate

#: What the ``backend`` argument accepts.
BackendLike = Union[str, Backend]

#: Registered backend names: the paper's two systems plus the threaded-code
#: middle point (closures over pre-bound locals, see repro.compiler.threaded).
BACKEND_NAMES = ("interpreter", "threaded", "compiled")


def make_backend(
    backend: BackendLike = "compiled",
    codegen_options: CodegenOptions | None = None,
) -> Backend:
    """Resolve a backend name or instance into a :class:`Backend`."""
    if isinstance(backend, Backend):
        return backend
    if backend == "interpreter":
        return InterpreterBackend()
    if backend == "threaded":
        return ThreadedBackend()
    if backend == "compiled":
        return CompiledBackend(codegen_options)
    raise BackendError(
        f"unknown backend '{backend}'; expected one of {BACKEND_NAMES} "
        "or a Backend instance"
    )


class Simulator:
    """A specification bound to a prepared simulation backend."""

    def __init__(
        self,
        spec: Specification,
        backend: BackendLike = "compiled",
        codegen_options: CodegenOptions | None = None,
    ) -> None:
        self._spec = spec
        self._backend = make_backend(backend, codegen_options)
        self._prepared: PreparedSimulation = self._backend.prepare(spec)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_text(
        cls,
        source: str,
        backend: BackendLike = "compiled",
        codegen_options: CodegenOptions | None = None,
        source_name: str = "<specification>",
    ) -> "Simulator":
        """Parse specification *source* text and prepare it."""
        spec = parse_spec(source, source_name=source_name)
        return cls(spec, backend=backend, codegen_options=codegen_options)

    @classmethod
    def from_file(
        cls,
        path: str | Path,
        backend: BackendLike = "compiled",
        codegen_options: CodegenOptions | None = None,
    ) -> "Simulator":
        """Parse a specification file and prepare it."""
        spec = parse_spec_file(path)
        return cls(spec, backend=backend, codegen_options=codegen_options)

    @classmethod
    def from_builder(
        cls,
        builder: SpecBuilder,
        backend: BackendLike = "compiled",
        codegen_options: CodegenOptions | None = None,
    ) -> "Simulator":
        """Build the specification from a :class:`SpecBuilder` and prepare it."""
        return cls(builder.build(), backend=backend, codegen_options=codegen_options)

    # -- introspection -------------------------------------------------------------

    @property
    def spec(self) -> Specification:
        return self._spec

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def prepared(self) -> PreparedSimulation:
        return self._prepared

    @property
    def prepare_seconds(self) -> float:
        return self._prepared.prepare_seconds

    @property
    def generated_source(self) -> str | None:
        """Generated simulator source when using the compiled backend."""
        return getattr(self._prepared, "source", None)

    def validation_report(self, strict: bool = False) -> ValidationReport:
        """Re-run validation (e.g. to inspect warnings)."""
        return validate(self._spec, strict=strict)

    # -- running ----------------------------------------------------------------------

    def run(
        self,
        cycles: int | None = None,
        io: IOSystem | Iterable[int | str] | None = None,
        trace: TraceOptions | bool | None = None,
        collect_stats: bool = True,
        override: ValueOverride | None = None,
    ) -> SimulationResult:
        """Simulate for *cycles* cycles (default: the spec's ``= N`` count)."""
        return self._prepared.run(
            cycles=cycles,
            io=io,
            trace=trace,
            collect_stats=collect_stats,
            override=override,
        )


def simulate(
    source: str,
    cycles: int | None = None,
    backend: BackendLike = "compiled",
    io: IOSystem | Iterable[int | str] | None = None,
    trace: TraceOptions | bool | None = None,
) -> SimulationResult:
    """One-shot helper: parse, prepare and run a specification text."""
    return Simulator.from_text(source, backend=backend).run(
        cycles=cycles, io=io, trace=trace
    )
