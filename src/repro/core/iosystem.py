"""Memory-mapped I/O (Section 4.5 of the paper).

ASIM II models input and output as a special case of memory: a memory
component whose operation is 2 performs an input, operation 3 an output.
The address selects the data format — address 0 is character data, address 1
is integer data, any other address is integer data tagged with the address
(the paper's ``sinput`` / ``soutput`` procedures).

The paper routes these to standard input/output; here an :class:`IOSystem`
is an explicit object so tests and benchmarks can feed inputs from a list
and capture outputs, while :class:`StreamIO` reproduces the original
stdin/stdout behaviour.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import IO, Iterable

from repro.errors import InputExhaustedError

#: Address whose data is treated as a character.
CHARACTER_ADDRESS = 0
#: Address whose data is treated as a plain integer.
INTEGER_ADDRESS = 1


@dataclass(frozen=True)
class OutputEvent:
    """One memory-mapped output performed by a simulation."""

    address: int
    value: int
    cycle: int | None = None

    @property
    def is_character(self) -> bool:
        return self.address == CHARACTER_ADDRESS

    @property
    def character(self) -> str:
        return chr(self.value & 0xFF)

    def render(self) -> str:
        """Format as the paper's ``soutput`` procedure would print it."""
        if self.address == CHARACTER_ADDRESS:
            return self.character
        if self.address == INTEGER_ADDRESS:
            return str(self.value)
        return f"Output to address {self.address}: {self.value}"


class IOSystem:
    """Base class: records outputs, subclasses provide input values."""

    def __init__(self) -> None:
        self.outputs: list[OutputEvent] = []
        self.inputs_consumed: int = 0

    # -- input -------------------------------------------------------------

    def read(self, address: int, cycle: int | None = None) -> int:
        """Return the next input value for a memory-mapped input."""
        value = self._next_input(address)
        self.inputs_consumed += 1
        return value

    def _next_input(self, address: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- output -------------------------------------------------------------

    def write(self, address: int, value: int, cycle: int | None = None) -> None:
        """Record (and possibly emit) a memory-mapped output."""
        event = OutputEvent(address=address, value=value, cycle=cycle)
        self.outputs.append(event)
        self._emit(event)

    def _emit(self, event: OutputEvent) -> None:
        """Hook for subclasses that forward output somewhere (default: keep)."""

    # -- convenience ---------------------------------------------------------

    def output_values(self, address: int | None = None) -> list[int]:
        """Values output so far, optionally filtered by address."""
        return [
            event.value
            for event in self.outputs
            if address is None or event.address == address
        ]

    def output_text(self) -> str:
        """Concatenated rendering of all outputs, one per line for integers."""
        pieces: list[str] = []
        for event in self.outputs:
            if event.is_character:
                pieces.append(event.character)
            else:
                pieces.append(event.render() + "\n")
        return "".join(pieces)


class NullIO(IOSystem):
    """Inputs always read zero; outputs are only recorded."""

    def _next_input(self, address: int) -> int:
        return 0


@dataclass
class _InputQueue:
    values: list[int] = field(default_factory=list)
    cursor: int = 0

    def pop(self) -> int | None:
        if self.cursor >= len(self.values):
            return None
        value = self.values[self.cursor]
        self.cursor += 1
        return value


class QueueIO(IOSystem):
    """Feed inputs from a predefined sequence (ints, or single characters).

    This is the deterministic replacement for the paper's interactive
    standard input, used by tests, examples and benchmarks.
    """

    def __init__(
        self, inputs: Iterable[int | str] = (), strict: bool = True
    ) -> None:
        super().__init__()
        self._queue = _InputQueue(
            [ord(v) if isinstance(v, str) else int(v) for v in inputs]
        )
        self._strict = strict

    def remaining_inputs(self) -> int:
        return len(self._queue.values) - self._queue.cursor

    def _next_input(self, address: int) -> int:
        value = self._queue.pop()
        if value is None:
            if self._strict:
                raise InputExhaustedError(
                    f"memory-mapped input at address {address} requested but "
                    "the input queue is empty"
                )
            return 0
        return value


class StreamIO(IOSystem):
    """Read inputs from / write outputs to text streams (paper behaviour).

    Character addresses (0) exchange single characters; every other address
    exchanges whitespace-delimited integers.
    """

    def __init__(self, stdin: IO[str] | None = None, stdout: IO[str] | None = None):
        super().__init__()
        self._stdin = stdin if stdin is not None else sys.stdin
        self._stdout = stdout if stdout is not None else sys.stdout

    def _next_input(self, address: int) -> int:
        if address == CHARACTER_ADDRESS:
            char = self._stdin.read(1)
            if not char:
                raise InputExhaustedError("end of input stream")
            return ord(char)
        token = ""
        while True:
            char = self._stdin.read(1)
            if not char:
                break
            if char.isspace():
                if token:
                    break
                continue
            token += char
        if not token:
            raise InputExhaustedError("end of input stream")
        return int(token)

    def _emit(self, event: OutputEvent) -> None:
        if event.is_character:
            self._stdout.write(event.character)
        else:
            self._stdout.write(event.render() + "\n")


def coerce_io(io: IOSystem | Iterable[int | str] | None) -> IOSystem:
    """Accept an IOSystem, a plain iterable of inputs, or ``None``."""
    if io is None:
        return NullIO()
    if isinstance(io, IOSystem):
        return io
    return QueueIO(io)
