"""Fan-out of one prepared machine over many runs, on a pluggable engine.

The pool is the serving layer's engine room.  Construction resolves the
backend and performs one warm ``prepare`` on the caller's thread; for the
cache-backed backends (threaded, compiled) this pays code generation once
and seeds the prepare cache, so every later ``prepare`` of the same
specification is a cache hit returning the *same* artifact.

Scheduling is delegated to an execution strategy
(:mod:`repro.serving.executor`): ``serial`` runs inline, ``thread`` fans
out over worker threads (the GIL-bound prepare-amortisation engine), and
``process`` ships the lowered program to worker processes once and scales
with CPU cores.  ``chunk_size`` groups requests per scheduling unit to
amortise IPC on the process strategy.

In-process dispatch (serial/thread) is backend-aware:

* **threaded / compiled** (backend exposes a prepare ``cache``): each
  worker thread binds its own
  :class:`~repro.core.backend.PreparedSimulation` the first time it picks
  up a run and reuses it afterwards.  Every worker's prepare is a cache
  hit on the *same* shared lowered program
  (:class:`~repro.lowering.program.CycleProgram`) — the expensive
  artifacts derived from it (closure plans, byte-compiled module) are
  memoized on the program, so the whole pool executes one IR (see
  ``shared_program``).
* **interpreter** (or any backend without a prepare cache): every worker
  shares the pool's single warm prepared simulation.  Prepared
  simulations are re-entrant by contract (each ``run`` builds fresh
  mutable state), so one prepared interpreter program serves the whole
  pool instead of re-lowering per run.

On the process strategy each worker binds its backend to the lowered
program shipped at pool startup (see
:class:`~repro.serving.executor.WorkerContext`), and the persistent
artifact cache (:class:`~repro.compiler.cache.DiskCache`) lets a worker's
compiled backend skip code generation too.

Throughput model: simulations are pure Python, so ``thread`` workers
interleave on the GIL and win by paying preparation once; ``process``
workers each own a core and win again by actually simulating in parallel
— the dimension ``BENCH_batch.json`` measures.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Sequence

from repro.compiler.cache import DiskCache, resolve_disk, spec_fingerprint
from repro.compiler.optimizer import CodegenOptions
from repro.core.backend import PreparedSimulation
from repro.core.results import SimulationResult
from repro.core.simulator import BackendLike, make_backend
from repro.errors import ServingError
from repro.serving.batch import BatchItem, BatchRequest, BatchResult, RunRequest
from repro.serving.executor import (
    EXECUTOR_NAMES,
    ExecutorStrategy,
    LaneExecutor,
    ProcessExecutor,
    RunOutcome,
    SerialExecutor,
    ThreadExecutor,
    prepared_lane_outcomes,
    seed_disk_cache,
    worker_context_for,
)
from repro.serving.tracing import Span, outcome_spans


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _default_workers(executor: str) -> int:
    if executor in ("serial", "lane"):
        # lane wins by vectorization on the caller's thread, not workers
        return 1
    if executor == "process":
        # one worker per available core: the whole point is parallelism
        return max(2, min(8, _available_cpus()))
    # thread: the serving win is cache amortisation, not CPU parallelism,
    # so a useful pool does not need one core per worker
    return max(4, min(8, os.cpu_count() or 1))


def batch_items(
    requests: Sequence[RunRequest],
    outcomes: "Sequence[RunOutcome | BaseException]",
    collected: "Sequence[float] | None" = None,
    executor: str | None = None,
) -> list[BatchItem]:
    """Pair requests with their outcomes (RunOutcome, or the exception
    that killed the whole scheduling unit, e.g. an unpicklable chunk).

    *collected*, when given, holds the parent-side monotonic timestamp at
    which each outcome was gathered; together with *executor* it lets the
    per-item trace spans include the IPC return leg on the process
    strategy (see :func:`~repro.serving.tracing.outcome_spans`).  Every
    failed item carries a terminal ``error`` span — errors never vanish
    from a trace.
    """
    items: list[BatchItem] = []
    for index, (request, outcome) in enumerate(zip(requests, outcomes)):
        gathered = collected[index] if collected is not None else None
        if isinstance(outcome, BaseException):
            if not isinstance(outcome, Exception):  # let KeyboardInterrupt &c out
                raise outcome
            at = gathered if gathered is not None else time.monotonic()
            detail = f"{type(outcome).__name__}: {outcome}"[:200]
            spans = (Span("error", at, 0.0, None, None, index, detail),)
            items.append(BatchItem(index=index, request=request,
                                   error=outcome, spans=spans))
        else:
            spans = tuple(
                span._replace(item=index)
                for span in outcome_spans(outcome, gathered, executor)
            )
            items.append(
                BatchItem(
                    index=index,
                    request=request,
                    result=outcome.result,
                    error=outcome.error,
                    seconds=outcome.seconds,
                    worker=outcome.worker,
                    queue_seconds=outcome.queue_seconds,
                    spans=spans,
                )
            )
    return items


class SimulationPool:
    """A worker pool serving many runs of one prepared specification.

    ``executor`` picks the execution strategy (``"serial"``, ``"thread"``,
    ``"process"`` or ``"lane"``); ``chunk_size`` fixes how many requests
    travel per scheduling unit (default: one for serial/thread, about two
    chunks per worker for process, the whole batch for lane).
    ``lane_width`` bounds how many compatible requests ride one lane
    group (see :mod:`repro.lowering.lanes`); on the process strategy a
    non-``None`` width turns on lanes *inside* each worker, composing
    vectorization with multi-core fan-out.  ``artifact_cache`` roots the persistent
    artifact cache used to seed process workers (``True``/``None`` for
    the default directory, a path, a
    :class:`~repro.compiler.cache.DiskCache`, or ``False`` to disable).

    The pool is a context manager; ``close()`` (or leaving the ``with``
    block) waits for in-flight runs and rejects new submissions.
    """

    def __init__(
        self,
        spec,
        backend: BackendLike = "threaded",
        max_workers: int | None = None,
        codegen_options: CodegenOptions | None = None,
        executor: str = "thread",
        chunk_size: int | None = None,
        artifact_cache: "DiskCache | str | Path | bool | None" = None,
        mp_context=None,
        lane_width: int | None = None,
    ) -> None:
        if executor not in EXECUTOR_NAMES:
            raise ServingError(
                f"unknown executor '{executor}'; expected one of "
                f"{EXECUTOR_NAMES}"
            )
        if max_workers is None:
            max_workers = _default_workers(executor)
        if max_workers <= 0:
            raise ServingError(
                f"max_workers must be positive, got {max_workers}"
            )
        if executor in ("serial", "lane"):
            max_workers = 1
        if chunk_size is not None and chunk_size <= 0:
            raise ServingError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        if lane_width is not None and lane_width <= 0:
            raise ServingError(
                f"lane_width must be positive, got {lane_width}"
            )
        self.spec = spec
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.lane_width = lane_width
        self._backend = make_backend(backend, codegen_options)
        # warm prepare on the caller's thread: seeds the shared cache (when
        # the backend has one) and surfaces compilation errors eagerly,
        # before any worker exists
        start = time.perf_counter()
        self._warm: PreparedSimulation = self._backend.prepare(spec)
        self.prepare_seconds = time.perf_counter() - start
        self._reuse_prepared = getattr(self._backend, "cache", None) is not None
        self._local = threading.local()
        self._strategy = self._build_strategy(executor, artifact_cache,
                                              mp_context)
        self._closed = False
        # makes the closed check and the executor submit atomic against a
        # concurrent close(), so racing submitters always see ServingError
        # rather than the executor's RuntimeError
        self._submit_lock = threading.Lock()

    def _build_strategy(
        self, executor: str, artifact_cache, mp_context
    ) -> ExecutorStrategy:
        if executor == "serial":
            return SerialExecutor(self._execute)
        if executor == "lane":
            return LaneExecutor(
                self._execute_lanes,
                self._execute,
                self.spec,
                lane_width=self.lane_width,
            )
        if executor == "thread":
            return ThreadExecutor(
                self._execute,
                workers=self.max_workers,
                thread_name_prefix=f"repro-{self._backend.name}",
            )
        # process: seed the persistent artifact cache so worker cold starts
        # skip lowering and code generation, then ship the lowered program
        # once through the pool initializer
        disk = resolve_disk(True if artifact_cache is None else artifact_cache)
        context = worker_context_for(self.spec, self._backend, self._warm,
                                     disk)
        if disk is not None:
            seed_disk_cache(
                disk,
                self.spec,
                self._warm,
                getattr(self._backend, "passes", None),
                getattr(self._backend, "options", None),
            )
        return ProcessExecutor(context, workers=self.max_workers,
                               mp_context=mp_context,
                               lane_width=self.lane_width)

    # -- introspection -------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def executor_name(self) -> str:
        return self._strategy.name

    @property
    def shared_program(self):
        """The lowered program every in-process worker binds to, or ``None``.

        Cache-backed backends (threaded, compiled) share it through the
        prepare cache; backends without one (the interpreter) share the
        warm prepared simulation itself, so its program — when it exposes
        one — is equally shared.  Process workers bind to a pickled copy
        of this same program, shipped once at pool startup.
        """
        return getattr(self._warm, "program", None)

    @property
    def supports_override(self) -> bool:
        """Whether runs on this pool may carry a per-cycle ``override``
        (the warm prepared simulation's capability flag; consulted by the
        HTTP server before scheduling, and per run by ``check_supported``)."""
        return getattr(self._warm, "supports_override", True)

    @property
    def supports_full_stats(self) -> bool:
        """Whether this pool's backend reports the full statistics
        breakdown (see :class:`~repro.core.backend.PreparedSimulation`)."""
        return getattr(self._warm, "supports_full_stats", True)

    @property
    def closed(self) -> bool:
        return self._closed

    def resilience_counters(self) -> dict[str, int]:
        """Cumulative crash/retry/quarantine counters for this pool's
        strategy (all zero except on the process executor)."""
        return self._strategy.counters()

    # -- per-worker / per-run binding ---------------------------------------

    def _prepared_for_run(self) -> PreparedSimulation:
        """Backend-aware dispatch: per-thread cache-hit binding for
        cache-backed backends, shared warm prepared otherwise."""
        if not self._reuse_prepared:
            # prepared simulations are re-entrant: one warm interpreter
            # program serves every worker (no per-run re-lowering)
            return self._warm
        prepared = getattr(self._local, "prepared", None)
        if prepared is None:
            prepared = self._backend.prepare(self.spec)
            self._local.prepared = prepared
        return prepared

    def _execute(self, request: RunRequest) -> tuple[SimulationResult, float]:
        start = time.perf_counter()
        prepared = self._prepared_for_run()
        request.check_supported(prepared)
        result = prepared.run(
            cycles=request.cycles,
            io=request.make_io(),
            trace=request.trace,
            collect_stats=request.collect_stats,
            override=request.override,
        )
        return result, time.perf_counter() - start

    def _execute_lanes(self, requests: "list[RunRequest]"):
        """Run one compatible lane group on this thread's prepared binding."""
        return prepared_lane_outcomes(self._prepared_for_run(), requests)

    # -- submission ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServingError("simulation pool is closed")

    def _submit_many(
        self, requests: Sequence[RunRequest]
    ) -> "list[Future[RunOutcome]]":
        with self._submit_lock:
            self._check_open()
            if not isinstance(self._strategy, (SerialExecutor, LaneExecutor)):
                return self._strategy.submit_many(requests, self.chunk_size)
        # the serial and lane strategies execute inline at submission: run
        # them outside the lock so close(wait=False) never blocks on a batch
        # and a run hook that submits re-entrantly cannot deadlock (there is
        # no underlying executor for close() to race with)
        return self._strategy.submit_many(requests, self.chunk_size)

    def submit(self, request: RunRequest) -> "Future[SimulationResult]":
        """Schedule one run; the future resolves to its SimulationResult."""
        outcome_future = self._submit_many([request])[0]
        result_future: Future = Future()

        def relay(done: Future) -> None:
            try:
                outcome = done.result()
            except BaseException as exc:  # noqa: BLE001 - mirrored over
                result_future.set_exception(exc)
                return
            if outcome.error is not None:
                result_future.set_exception(outcome.error)
            else:
                result_future.set_result(outcome.result)

        outcome_future.add_done_callback(relay)
        return result_future

    def run(self, request: RunRequest) -> SimulationResult:
        """Run one request on the pool and wait for its result."""
        return self.submit(request).result()

    def run_batch(
        self, runs: BatchRequest | Sequence[RunRequest]
    ) -> BatchResult:
        """Run every request, collecting per-run outcomes in order.

        A run that raises becomes a :class:`BatchItem` with ``error`` set;
        the other runs are unaffected.
        """
        requests = self._coerce_runs(runs)
        start = time.perf_counter()
        before = self._strategy.counters()
        outcomes: "list[RunOutcome | BaseException] | None"
        collected: "list[float]"
        if isinstance(self._strategy, LaneExecutor):
            # the lane strategy produces outcomes directly on this thread —
            # no per-item Future plumbing (same no-deadlock reasoning as
            # in _submit_many: execution happens outside the submit lock)
            with self._submit_lock:
                self._check_open()
            outcomes = self._strategy.execute_many(requests, self.chunk_size)
            collected = [time.monotonic()] * len(outcomes)
        else:
            outcomes = []
            collected = []
            for future in self._submit_many(requests):
                try:
                    outcomes.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - per item
                    outcomes.append(exc)
                collected.append(time.monotonic())
        wall_seconds = time.perf_counter() - start
        after = self._strategy.counters()
        return BatchResult(
            backend=self.backend_name,
            pool_size=self.max_workers,
            items=batch_items(requests, outcomes, collected,
                              self.executor_name),
            wall_seconds=wall_seconds,
            prepare_seconds=self.prepare_seconds,
            executor=self.executor_name,
            worker_crashes=after["worker_crashes"] - before["worker_crashes"],
            worker_retries=after["worker_retries"] - before["worker_retries"],
            quarantined=after["quarantined"] - before["quarantined"],
        )

    def _coerce_runs(
        self, runs: BatchRequest | Sequence[RunRequest]
    ) -> list[RunRequest]:
        if isinstance(runs, BatchRequest):
            if runs.spec is not self.spec and (
                spec_fingerprint(runs.spec) != spec_fingerprint(self.spec)
            ):
                raise ServingError(
                    "batch request specification does not match the pool's; "
                    "build a pool per machine (the prepare artifact is "
                    "per-specification)"
                )
            requested = (
                runs.backend
                if isinstance(runs.backend, str)
                else runs.backend.name
            )
            if requested != self.backend_name:
                raise ServingError(
                    f"batch request asks for the '{requested}' backend but "
                    f"the pool runs '{self.backend_name}'; submit the plain "
                    "run list to override, or build a matching pool"
                )
            return list(runs.runs)
        return list(runs)

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting runs; optionally wait for in-flight ones."""
        with self._submit_lock:
            self._closed = True
        self._strategy.close(wait=wait)

    def __enter__(self) -> "SimulationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_batch(
    request: BatchRequest,
    max_workers: int | None = None,
    codegen_options: CodegenOptions | None = None,
    executor: str = "thread",
    chunk_size: int | None = None,
    lane_width: int | None = None,
) -> BatchResult:
    """One-shot: build a pool for *request* and run it to completion."""
    with SimulationPool(
        request.spec,
        backend=request.backend,
        max_workers=max_workers,
        codegen_options=codegen_options,
        executor=executor,
        chunk_size=chunk_size,
        lane_width=lane_width,
    ) as pool:
        return pool.run_batch(request.runs)
