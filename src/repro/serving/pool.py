"""Thread-pool fan-out of one prepared machine over many runs.

The pool is the serving layer's engine room.  Construction resolves the
backend and performs one warm ``prepare`` on the caller's thread; for the
cache-backed backends (threaded, compiled) this pays code generation once
and seeds the prepare cache, so every later ``prepare`` of the same
specification is a cache hit returning the *same* artifact.

Dispatch is backend-aware:

* **threaded / compiled** (backend exposes a prepare ``cache``): each worker
  thread binds its own :class:`~repro.core.backend.PreparedSimulation` the
  first time it picks up a run and reuses it afterwards.  Every worker's
  prepare is a cache hit on the *same* shared lowered program
  (:class:`~repro.lowering.program.CycleProgram`) — the expensive artifacts
  derived from it (closure plans, byte-compiled module) are memoized on the
  program, so the whole pool executes one IR (see ``shared_program``).
* **interpreter** (or any backend without a prepare cache): preparation is
  re-done per run.  For the interpreter this is the paper's cheap
  "generate tables" phase, so the fallback costs microseconds.

Note the throughput model: simulations are pure Python, so concurrent
workers interleave on the GIL rather than running truly in parallel.  The
serving win measured by ``BENCH_batch.json`` comes from paying preparation
once instead of per request — many small requests against one machine —
not from adding CPU cores.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Sequence

from repro.compiler.cache import spec_fingerprint
from repro.compiler.optimizer import CodegenOptions
from repro.core.backend import PreparedSimulation
from repro.core.results import SimulationResult
from repro.core.simulator import BackendLike, make_backend
from repro.errors import ServingError
from repro.rtl.spec import Specification
from repro.serving.batch import BatchItem, BatchRequest, BatchResult, RunRequest


def _default_workers() -> int:
    # at least 4: the serving win is cache amortisation, not CPU parallelism,
    # so a useful pool does not need one core per worker
    return max(4, min(8, os.cpu_count() or 1))


def batch_items(
    requests: Sequence[RunRequest],
    outcomes: Sequence[tuple[SimulationResult, float] | BaseException],
) -> list[BatchItem]:
    """Pair requests with their outcomes (result+seconds, or exception)."""
    items: list[BatchItem] = []
    for index, (request, outcome) in enumerate(zip(requests, outcomes)):
        if isinstance(outcome, BaseException):
            if not isinstance(outcome, Exception):  # let KeyboardInterrupt &c out
                raise outcome
            items.append(BatchItem(index=index, request=request, error=outcome))
        else:
            result, seconds = outcome
            items.append(
                BatchItem(index=index, request=request, result=result,
                          seconds=seconds)
            )
    return items


class SimulationPool:
    """A thread pool serving many runs of one prepared specification.

    The pool is a context manager; ``close()`` (or leaving the ``with``
    block) waits for in-flight runs and rejects new submissions.
    """

    def __init__(
        self,
        spec: Specification,
        backend: BackendLike = "threaded",
        max_workers: int | None = None,
        codegen_options: CodegenOptions | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = _default_workers()
        if max_workers <= 0:
            raise ServingError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.spec = spec
        self.max_workers = max_workers
        self._backend = make_backend(backend, codegen_options)
        # warm prepare on the caller's thread: seeds the shared cache (when
        # the backend has one) and surfaces compilation errors eagerly,
        # before any worker exists
        start = time.perf_counter()
        self._warm: PreparedSimulation = self._backend.prepare(spec)
        self.prepare_seconds = time.perf_counter() - start
        self._reuse_prepared = getattr(self._backend, "cache", None) is not None
        self._local = threading.local()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix=f"repro-{self._backend.name}",
        )
        self._closed = False
        # makes the closed check and the executor submit atomic against a
        # concurrent close(), so racing submitters always see ServingError
        # rather than the executor's RuntimeError
        self._submit_lock = threading.Lock()

    # -- introspection -------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def shared_program(self):
        """The lowered program every worker binds to, or ``None``.

        Only cache-backed backends (threaded, compiled) actually share one
        program across workers; backends on the per-run prepare fallback
        (the interpreter) re-lower per run, so no shared program exists.
        """
        if not self._reuse_prepared:
            return None
        return getattr(self._warm, "program", None)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- per-worker / per-run binding ---------------------------------------

    def _prepared_for_run(self) -> PreparedSimulation:
        """Backend-aware dispatch: worker-bound reuse vs per-run prepare."""
        if not self._reuse_prepared:
            return self._backend.prepare(self.spec)
        prepared = getattr(self._local, "prepared", None)
        if prepared is None:
            prepared = self._backend.prepare(self.spec)
            self._local.prepared = prepared
        return prepared

    def _execute(self, request: RunRequest) -> tuple[SimulationResult, float]:
        start = time.perf_counter()
        prepared = self._prepared_for_run()
        request.check_supported(prepared)
        result = prepared.run(
            cycles=request.cycles,
            io=request.make_io(),
            trace=request.trace,
            collect_stats=request.collect_stats,
            override=request.override,
        )
        return result, time.perf_counter() - start

    # -- submission ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServingError("simulation pool is closed")

    def _submit_timed(
        self, request: RunRequest
    ) -> "Future[tuple[SimulationResult, float]]":
        with self._submit_lock:
            self._check_open()
            return self._executor.submit(self._execute, request)

    def submit(self, request: RunRequest) -> "Future[SimulationResult]":
        """Schedule one run; the future resolves to its SimulationResult."""
        with self._submit_lock:
            self._check_open()
            return self._executor.submit(lambda: self._execute(request)[0])

    def run(self, request: RunRequest) -> SimulationResult:
        """Run one request on the pool and wait for its result."""
        return self.submit(request).result()

    def run_batch(
        self, runs: BatchRequest | Sequence[RunRequest]
    ) -> BatchResult:
        """Run every request, collecting per-run outcomes in order.

        A run that raises becomes a :class:`BatchItem` with ``error`` set;
        the other runs are unaffected.
        """
        requests = self._coerce_runs(runs)
        start = time.perf_counter()
        futures = [self._submit_timed(request) for request in requests]
        outcomes: list[tuple[SimulationResult, float] | BaseException] = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - rerouted per item
                outcomes.append(exc)
        wall_seconds = time.perf_counter() - start
        return BatchResult(
            backend=self.backend_name,
            pool_size=self.max_workers,
            items=batch_items(requests, outcomes),
            wall_seconds=wall_seconds,
            prepare_seconds=self.prepare_seconds,
        )

    def _coerce_runs(
        self, runs: BatchRequest | Sequence[RunRequest]
    ) -> list[RunRequest]:
        if isinstance(runs, BatchRequest):
            if runs.spec is not self.spec and (
                spec_fingerprint(runs.spec) != spec_fingerprint(self.spec)
            ):
                raise ServingError(
                    "batch request specification does not match the pool's; "
                    "build a pool per machine (the prepare artifact is "
                    "per-specification)"
                )
            requested = (
                runs.backend
                if isinstance(runs.backend, str)
                else runs.backend.name
            )
            if requested != self.backend_name:
                raise ServingError(
                    f"batch request asks for the '{requested}' backend but "
                    f"the pool runs '{self.backend_name}'; submit the plain "
                    "run list to override, or build a matching pool"
                )
            return list(runs.runs)
        return list(runs)

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting runs; optionally wait for in-flight ones."""
        with self._submit_lock:
            self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "SimulationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_batch(
    request: BatchRequest,
    max_workers: int | None = None,
    codegen_options: CodegenOptions | None = None,
) -> BatchResult:
    """One-shot: build a pool for *request* and run it to completion."""
    with SimulationPool(
        request.spec,
        backend=request.backend,
        max_workers=max_workers,
        codegen_options=codegen_options,
    ) as pool:
        return pool.run_batch(request.runs)
