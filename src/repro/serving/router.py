"""Front-door HTTP router for a supervised serving fleet.

The router is the piece that turns N independent ``repro serve``
processes (spawned by :class:`repro.serving.fleet.FleetSupervisor`)
into one service:

* **Consistent sharding.**  ``POST /v1/run`` and ``POST /v1/batch`` are
  routed by the ``(pool key, backend, executor)`` triple — the same
  identity the per-node ``PoolRegistry`` keys its warm pools on — using
  rendezvous (highest-random-weight) hashing.  Repeats of a combination
  land on the node whose pool is already warm, and the assignment of
  every *other* combination is untouched when a node leaves or returns.
* **Spillover and bounded failover.**  A request whose home node is
  benched, restarting or suspect spills to the next healthy node in
  rendezvous order.  A connection-refused/reset or 5xx from a node
  mid-request is retried exactly once on a sibling; the response then
  carries an ``X-Repro-Retry`` header attributing the failure.  4xx
  responses and per-item simulation errors pass through untouched —
  they would fail identically anywhere.
* **Fleet-wide views.**  ``GET /v1/fleet`` reports topology and health,
  ``GET /v1/stats`` aggregates per-node stats plus router counters, and
  ``GET /readyz`` answers 200 only while a quorum of nodes is ready.
* **End-to-end tracing.**  Every forwarded run carries an
  ``X-Repro-Trace`` id (client-supplied or minted at the front door), so
  the node-side trace is retrievable through ``GET /v1/trace/<id>`` —
  the router fans the lookup out to the node that holds it.
  ``GET /metrics`` merges every node's Prometheus exposition under
  per-node ``node=<id>`` labels alongside the router's own counters.

Every proxied response is stamped with ``X-Repro-Node`` (the node that
actually answered).  The CLI front door is ``repro fleet``; semantics
are documented in ``docs/serving.md`` ("Running a fleet") and
``docs/api-reference.md``.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping, Sequence

from repro.compiler.cache import _code_version
from repro.serving.fleet import FleetSupervisor
from repro.serving.protocol import (
    NODE_HEADER,
    PROTOCOL_VERSION,
    RETRY_HEADER,
    TRACE_HEADER,
    ProtocolError,
    error_to_json,
    shard_identity,
)
from repro.serving.server import MAX_BODY_BYTES
from repro.serving.tracing import (
    merge_node_metrics,
    metric_line,
    sanitize_trace_id,
)

__all__ = ["FleetRouter", "ServingFleet", "rank_nodes"]

_version = _code_version


def rank_nodes(shard_key: str, node_ids: Sequence[str]) -> list[str]:
    """Rendezvous (highest-random-weight) ranking of nodes for one shard.

    Each (shard key, node) pair hashes to a weight; the ranking is the
    nodes sorted by descending weight.  The property that matters: a
    node leaving or returning never changes the *relative* order of the
    other nodes, so only the shards whose home was the lost node move —
    warm pools everywhere else stay warm.
    """
    def weight(node_id: str) -> str:
        return hashlib.sha256(f"{shard_key}|{node_id}".encode()).hexdigest()

    return sorted(node_ids, key=weight, reverse=True)


#: Routes the router answers itself or proxies; same shape as the
#: server's tables so the docs gate can check both the same way.
GET_ROUTES = {
    "/healthz": "handle_healthz",
    "/readyz": "handle_readyz",
    "/v1/fleet": "handle_fleet",
    "/v1/stats": "handle_stats",
    "/v1/machines": "handle_proxy_get",
    "/v1/backends": "handle_proxy_get",
    "/v1/trace": "handle_trace",
    "/metrics": "handle_metrics",
}
POST_ROUTES = {
    "/v1/run": "handle_forward",
    "/v1/batch": "handle_forward",
}


class _RouterSocket(ThreadingHTTPServer):
    daemon_threads = True
    app: "FleetRouter"


class _RouterHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into :class:`FleetRouter` handlers.

    Handlers return ``(status, body_bytes, headers)`` — raw bytes, not
    documents, because the proxy paths pass upstream bodies through
    byte-for-byte (bit-identity is the product; re-serialising JSON
    would be a place for it to quietly break).
    """

    protocol_version = "HTTP/1.1"

    def version_string(self) -> str:
        return f"repro-fleet-router/{_version()}"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def app(self) -> "FleetRouter":
        return self.server.app  # type: ignore[attr-defined]

    def _respond(self, status: int, body: bytes,
                 headers: Mapping[str, str]) -> None:
        self.send_response(status)
        if "Content-Type" not in headers:
            self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, document: dict,
                      headers: Mapping[str, str] | None = None) -> None:
        self._respond(status, json.dumps(document).encode(), dict(headers or {}))

    def _discard_body(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or "0")
        except ValueError:
            length = -1
        if 0 <= length <= self.app.max_body_bytes:
            while length > 0:
                chunk = self.rfile.read(min(length, 65536))
                if not chunk:
                    break
                length -= len(chunk)
        else:
            self.close_connection = True

    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            length = -1
        if length < 0:
            self.close_connection = True
            raise ProtocolError(
                "a JSON body with a valid non-negative Content-Length "
                "header is required",
                status=411, kind="length_required",
            ) from None
        if length > self.app.max_body_bytes:
            self.close_connection = True
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{self.app.max_body_bytes}-byte limit",
                status=413, kind="body_too_large",
            )
        return self.rfile.read(length)

    def _dispatch(self, routes: Mapping[str, str],
                  other: Mapping[str, str]) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        lookup = path
        if path.startswith("/v1/trace/"):
            # the one parameterised route: /v1/trace/<id> — the handler
            # gets the full path so it can forward it verbatim
            lookup = "/v1/trace"
        handler_name = routes.get(lookup)
        if handler_name is None:
            self._discard_body()
            self.app.count_error()
            if lookup in other:
                self._respond_json(405, error_to_json(
                    "method_not_allowed",
                    f"{path} does not accept {self.command}",
                ))
            else:
                self._respond_json(404, error_to_json(
                    "unknown_route",
                    f"no such route: {path} (see docs/api-reference.md)",
                ))
            return
        self.app.count_request(lookup)
        headers: dict[str, str] = {}
        try:
            if self.command == "POST":
                body = self._read_body()
                status, payload, out_headers = getattr(self.app, handler_name)(
                    path, body, dict(self.headers.items())
                )
            else:
                status, payload, out_headers = getattr(self.app, handler_name)(path)
        except ProtocolError as exc:
            status = exc.status
            payload = json.dumps(error_to_json(exc.kind, str(exc))).encode()
            out_headers = {}
            if exc.retry_after is not None:
                out_headers["Retry-After"] = str(max(1, round(exc.retry_after)))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status = 500
            payload = json.dumps(error_to_json(
                "internal_error", f"{type(exc).__name__}: {exc}"
            )).encode()
            out_headers = {}
        if status >= 400:
            self.app.count_error()
        headers.update(out_headers)
        self._respond(status, payload, headers)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(GET_ROUTES, POST_ROUTES)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(POST_ROUTES, GET_ROUTES)


class FleetRouter:
    """Stdlib front door over a :class:`FleetSupervisor`'s nodes.

    Lifecycle mirrors :class:`~repro.serving.server.SimulationServer`:
    the socket binds in the constructor (``port=0`` for ephemeral), then
    :meth:`start` (background thread) or :meth:`serve_forever`
    (blocking) and :meth:`close`.  ``quorum`` is the number of ready
    nodes ``/readyz`` requires; the default is a majority
    (``N // 2 + 1``).
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        default_backend: str = "threaded",
        default_executor: str = "thread",
        quorum: int | None = None,
        max_body_bytes: int = MAX_BODY_BYTES,
        forward_timeout: float = 600.0,
        proxy_timeout: float = 10.0,
        drain_timeout: float = 10.0,
    ) -> None:
        total = len(supervisor.nodes)
        if quorum is None:
            quorum = total // 2 + 1
        if not 1 <= quorum <= total:
            raise ValueError(
                f"quorum must be between 1 and {total}, got {quorum!r}"
            )
        self.supervisor = supervisor
        self.default_backend = default_backend
        self.default_executor = default_executor
        self.quorum = quorum
        self.max_body_bytes = max_body_bytes
        self.forward_timeout = forward_timeout
        self.proxy_timeout = proxy_timeout
        self.drain_timeout = drain_timeout
        self.started_at = time.time()
        self.failovers = 0
        self._requests: dict[str, int] = {}
        self._errors = 0
        self._counter_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._serve_started = False
        self._http = _RouterSocket((host, port), _RouterHandler)
        self._http.app = self

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetRouter":
        self._serve_started = True
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-fleet-router",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serve_started = True
        self._http.serve_forever()

    def close(self) -> None:
        """Stop accepting and finish in-flight proxied requests, bounded
        by ``drain_timeout`` (same sacrificial-closer shape as the
        server: a wedged upstream must not hang shutdown)."""
        if self._closed:
            return
        self._closed = True
        if self._serve_started:
            self._http.shutdown()
        closer = threading.Thread(
            target=self._http.server_close,
            name="repro-fleet-router-close",
            daemon=True,
        )
        closer.start()
        closer.join(timeout=self.drain_timeout)
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- counters ------------------------------------------------------------

    def count_request(self, route: str) -> None:
        with self._counter_lock:
            self._requests[route] = self._requests.get(route, 0) + 1

    def count_error(self) -> None:
        with self._counter_lock:
            self._errors += 1

    def count_failover(self) -> None:
        with self._counter_lock:
            self.failovers += 1

    # -- upstream plumbing ---------------------------------------------------

    def _forward(self, url: str, method: str, path: str,
                 body: bytes | None, headers: Mapping[str, str],
                 timeout: float):
        """One HTTP attempt against one node.  Raises ``OSError`` /
        ``http.client.HTTPException`` on transport failure; HTTP error
        statuses come back as ordinary responses."""
        parsed = urllib.parse.urlsplit(url)
        connection = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=timeout
        )
        try:
            connection.request(method, path, body=body, headers=dict(headers))
            response = connection.getresponse()
            payload = response.read()
            return response.status, response.headers, payload
        finally:
            connection.close()

    def _passthrough_headers(self, node_id: str, upstream) -> dict[str, str]:
        headers = {NODE_HEADER: node_id}
        content_type = upstream.get("Content-Type")
        if content_type:
            headers["Content-Type"] = content_type
        retry_after = upstream.get("Retry-After")
        if retry_after:
            headers["Retry-After"] = retry_after
        trace_id = upstream.get(TRACE_HEADER)
        if trace_id:
            headers[TRACE_HEADER] = trace_id
        return headers

    def _attempt_nodes(self, candidates: list[tuple[str, str]], method: str,
                       path: str, body: bytes | None,
                       headers: Mapping[str, str],
                       timeout: float) -> tuple[int, bytes, dict[str, str]]:
        """Try up to two nodes in order; the bounded-failover core.

        Transport failures and 5xx responses move on to the sibling (and
        mark the node suspect on transport failures, so routing reacts
        before the supervisor's next probe); anything else — including
        every 4xx — passes through untouched.  A 5xx from the *last*
        candidate passes through too, with the attribution header: the
        client learns both that the fleet retried and what it got.
        """
        failures: list[str] = []
        for position, (node_id, node_url) in enumerate(candidates):
            last = position == len(candidates) - 1
            try:
                status, upstream, payload = self._forward(
                    node_url, method, path, body, headers, timeout
                )
            except (OSError, http.client.HTTPException) as exc:
                reason = f"{node_id}: {type(exc).__name__}: {exc}".strip(": ")
                failures.append(reason)
                self.supervisor.mark_suspect(
                    node_id, f"forward failed: {type(exc).__name__}"
                )
                self.count_failover()
                continue
            if status >= 500 and not last:
                failures.append(f"{node_id}: HTTP {status}")
                self.count_failover()
                continue
            out = self._passthrough_headers(node_id, upstream)
            if failures:
                out[RETRY_HEADER] = "; ".join(failures)
            return status, payload, out
        raise ProtocolError(
            "every candidate node failed: " + "; ".join(failures),
            status=502, kind="upstream_failed",
        )

    # -- POST handlers -------------------------------------------------------

    def handle_forward(self, path: str, body: bytes,
                       headers: Mapping[str, str]):
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(
                f"request body is not valid JSON: {exc}",
                kind="malformed_json",
            ) from exc
        pool_key, backend, executor = shard_identity(
            doc, self.default_backend, self.default_executor
        )
        shard_key = f"{pool_key}|{backend}|{executor}"
        ready = dict(self.supervisor.ready_nodes())
        # Rank over *all* node ids, then keep the healthy ones: a node's
        # temporary absence must not reshuffle anyone else's home.
        order = [
            node_id
            for node_id in rank_nodes(shard_key, self.supervisor.node_ids())
            if node_id in ready
        ]
        if not order:
            raise ProtocolError(
                "no healthy fleet node is available for this request",
                status=503, kind="no_healthy_node", retry_after=1.0,
            )
        forward_headers = {"Content-Type": "application/json"}
        request_timeout = headers.get("X-Request-Timeout")
        if request_timeout is not None:
            forward_headers["X-Request-Timeout"] = request_timeout
        # Pin the trace id at the front door (minting one if the client
        # did not send a safe one) so the node's trace is retrievable by
        # the id the client saw — even across a mid-request failover.
        forward_headers[TRACE_HEADER] = sanitize_trace_id(
            headers.get(TRACE_HEADER)
        )
        candidates = [(node_id, ready[node_id]) for node_id in order[:2]]
        return self._attempt_nodes(
            candidates, "POST", path, body, forward_headers,
            self.forward_timeout,
        )

    # -- GET handlers --------------------------------------------------------

    def handle_proxy_get(self, path: str):
        """Static discovery routes (machines, backends): any ready node
        answers identically, so forward to the first one that works."""
        ready = self.supervisor.ready_nodes()
        if not ready:
            raise ProtocolError(
                "no healthy fleet node is available for this request",
                status=503, kind="no_healthy_node", retry_after=1.0,
            )
        return self._attempt_nodes(
            ready[:2], "GET", path, None, {}, self.proxy_timeout
        )

    def handle_trace(self, path: str):
        """``GET /v1/trace/<id>``: find the node that served the traced
        request.  Only the node that ran a request holds its trace (each
        keeps its own ring buffer), so the router fans the lookup out to
        every ready node and passes the first hit through — a miss
        everywhere is an honest 404."""
        trace_id = path[len("/v1/trace/"):] if path.startswith("/v1/trace/") else ""
        ready = self.supervisor.ready_nodes()
        if not ready:
            raise ProtocolError(
                "no healthy fleet node is available for this request",
                status=503, kind="no_healthy_node", retry_after=1.0,
            )
        for node_id, node_url in ready:
            try:
                status, upstream, payload = self._forward(
                    node_url, "GET", path, None, {}, self.proxy_timeout
                )
            except (OSError, http.client.HTTPException):
                continue
            if status == 200:
                return status, payload, self._passthrough_headers(
                    node_id, upstream
                )
        raise ProtocolError(
            f"no fleet node holds a trace with id {trace_id!r} (traces "
            "live in a bounded per-node ring buffer; old ones are "
            "evicted)",
            status=404, kind="unknown_trace",
        )

    def handle_metrics(self, path: str):
        """``GET /metrics``: router counters plus every ready node's own
        ``/metrics`` payload merged under per-node ``node=<id>`` labels."""
        with self._counter_lock:
            by_route = dict(self._requests)
            errors = self._errors
            failovers = self.failovers
        states: dict[str, int] = {}
        node_texts: dict[str, str] = {}
        for snap in self.supervisor.describe():
            states[snap["state"]] = states.get(snap["state"], 0) + 1
            if snap["state"] != "ready" or snap["url"] is None:
                continue
            try:
                status, _headers, payload = self._forward(
                    snap["url"], "GET", "/metrics", None, {},
                    self.proxy_timeout,
                )
                if status != 200:
                    continue
                node_texts[snap["id"]] = payload.decode("utf-8", "replace")
            except (OSError, http.client.HTTPException):
                continue
        lines = [
            "# HELP repro_router_requests_total HTTP requests the router "
            "received, by route.",
            "# TYPE repro_router_requests_total counter",
            *(metric_line("repro_router_requests_total", by_route[route],
                          {"route": route})
              for route in sorted(by_route)),
            "# HELP repro_router_errors_total Router requests answered "
            "with an error status.",
            "# TYPE repro_router_errors_total counter",
            metric_line("repro_router_errors_total", errors),
            "# HELP repro_router_failovers_total Forwards retried on a "
            "sibling node after a transport failure or 5xx.",
            "# TYPE repro_router_failovers_total counter",
            metric_line("repro_router_failovers_total", failovers),
            "# HELP repro_router_nodes Fleet nodes by supervisor state.",
            "# TYPE repro_router_nodes gauge",
            *(metric_line("repro_router_nodes", states[state],
                          {"state": state})
              for state in sorted(states)),
        ]
        lines.extend(merge_node_metrics(node_texts))
        body = ("\n".join(lines) + "\n").encode()
        content_type = "text/plain; version=0.0.4; charset=utf-8"
        return 200, body, {"Content-Type": content_type}

    def handle_healthz(self, path: str):
        document = {
            "protocol": PROTOCOL_VERSION,
            "status": "ok",
            "role": "router",
            "version": _version(),
            "uptime_seconds": time.time() - self.started_at,
        }
        return 200, json.dumps(document).encode(), {}

    def handle_readyz(self, path: str):
        ready = len(self.supervisor.ready_nodes())
        document = {
            "protocol": PROTOCOL_VERSION,
            "quorum": self.quorum,
            "ready_nodes": ready,
            "nodes": len(self.supervisor.nodes),
        }
        if self._closed or self.supervisor.draining:
            document.update(ready=False, reason="draining")
            return 503, json.dumps(document).encode(), {}
        if ready < self.quorum:
            document.update(ready=False, reason="no_quorum")
            return 503, json.dumps(document).encode(), {}
        document["ready"] = True
        return 200, json.dumps(document).encode(), {}

    def handle_fleet(self, path: str):
        with self._counter_lock:
            requests_total = sum(self._requests.values())
            errors = self._errors
            failovers = self.failovers
        document = {
            "protocol": PROTOCOL_VERSION,
            "role": "router",
            "quorum": self.quorum,
            "ready_nodes": len(self.supervisor.ready_nodes()),
            "draining": self.supervisor.draining,
            "router": {
                "requests": requests_total,
                "errors": errors,
                "failovers": failovers,
            },
            "nodes": self.supervisor.describe(),
        }
        return 200, json.dumps(document).encode(), {}

    def handle_stats(self, path: str):
        """Fleet-wide stats: router counters, per-node stats documents,
        and summed totals over the nodes that answered."""
        with self._counter_lock:
            by_route = dict(self._requests)
            errors = self._errors
            failovers = self.failovers
        totals = {
            "requests": 0,
            "errors": 0,
            "worker_crashes": 0,
            "worker_retries": 0,
            "quarantined": 0,
            "backend_fallbacks": 0,
            "pool_evictions": 0,
        }
        nodes: dict[str, dict] = {}
        for snap in self.supervisor.describe():
            node_id, node_url = snap["id"], snap["url"]
            if node_url is None:
                nodes[node_id] = {"error": f"node is {snap['state']}"}
                continue
            try:
                status, _headers, payload = self._forward(
                    node_url, "GET", "/v1/stats", None, {}, self.proxy_timeout
                )
                if status != 200:
                    raise ValueError(f"HTTP {status}")
                stats = json.loads(payload)
            except Exception as exc:  # noqa: BLE001 - report, don't fail
                nodes[node_id] = {"error": f"{type(exc).__name__}: {exc}"}
                continue
            nodes[node_id] = stats
            requests = stats.get("requests", {})
            totals["requests"] += requests.get("total", 0)
            totals["errors"] += requests.get("errors", 0)
            resilience = stats.get("resilience", {})
            for key in (
                "worker_crashes", "worker_retries", "quarantined",
                "backend_fallbacks", "pool_evictions",
            ):
                totals[key] += resilience.get(key, 0)
        document = {
            "protocol": PROTOCOL_VERSION,
            "router": {
                "version": _version(),
                "uptime_seconds": time.time() - self.started_at,
                "requests": {
                    "total": sum(by_route.values()),
                    "by_route": by_route,
                    "errors": errors,
                },
                "failovers": failovers,
            },
            "totals": totals,
            "nodes": nodes,
        }
        return 200, json.dumps(document).encode(), {}


class ServingFleet:
    """One-call fleet: a supervisor plus a router, as a context manager.

    The shape every consumer wants — the CLI, the chaos tests, the
    benchmark, the check.sh smoke: spawn ``nodes`` children, wait until
    all are ready, open the front door; ``close()`` stops routing and
    performs the rolling drain.
    """

    def __init__(
        self,
        nodes: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        child_args: Sequence[str] = (),
        backend: str = "threaded",
        executor: str = "thread",
        quorum: int | None = None,
        drain_timeout: float = 10.0,
        health_interval: float = 0.25,
        bench_after: int = 3,
        bench_window: float = 30.0,
        log_dir: str | None = None,
        trace_sink: str | None = None,
        trace_dir: str | None = None,
        start_timeout: float = 60.0,
        forward_timeout: float = 600.0,
    ) -> None:
        self.start_timeout = start_timeout
        self.supervisor = FleetSupervisor(
            nodes=nodes,
            child_args=["--backend", backend, "--executor", executor,
                        *child_args],
            drain_timeout=drain_timeout,
            health_interval=health_interval,
            bench_after=bench_after,
            bench_window=bench_window,
            log_dir=log_dir,
            trace_sink=trace_sink,
            trace_dir=trace_dir,
        )
        self.router = FleetRouter(
            self.supervisor,
            host=host,
            port=port,
            default_backend=backend,
            default_executor=executor,
            quorum=quorum,
            forward_timeout=forward_timeout,
            drain_timeout=drain_timeout,
        )

    @property
    def url(self) -> str:
        return self.router.url

    def start(self) -> "ServingFleet":
        self.supervisor.start(wait=True, timeout=self.start_timeout)
        self.router.start()
        return self

    def close(self) -> list[dict]:
        self.router.close()
        return self.supervisor.stop()

    def __enter__(self) -> "ServingFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
