"""Asyncio front-end over :class:`~repro.serving.pool.SimulationPool`.

Async callers (a web handler serving simulation requests, a notebook
driving many experiments) should not block their event loop on a batch.
:func:`async_run_batch` submits every run through the pool's execution
strategy and awaits the wrapped futures, so the loop stays responsive
while workers simulate; :func:`async_run` is the single-request form.

The pool semantics are unchanged — one warm prepare, per-worker program
binding, per-item error capture — only the waiting is asynchronous.  That
holds for the thread and process strategies, whose futures resolve off
the loop; the ``serial`` and ``lane`` strategies execute inline *at
submission* by design (serial is the debugging baseline, lane runs its
groups on the submitting thread), so driving either from async code
blocks the loop for the duration of the batch — prefer ``thread`` or
``process`` (which composes with lanes via ``lane_width``) in an
event-loop context.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.results import SimulationResult
from repro.serving.batch import BatchRequest, BatchResult, RunRequest
from repro.serving.executor import RunOutcome
from repro.serving.pool import SimulationPool, batch_items


async def async_run(pool: SimulationPool, request: RunRequest) -> SimulationResult:
    """Await one run on *pool* without blocking the event loop."""
    outcome: RunOutcome = await asyncio.wrap_future(
        pool._submit_many([request])[0]
    )
    if outcome.error is not None:
        raise outcome.error
    return outcome.result


async def async_run_batch(
    request: BatchRequest,
    max_workers: int | None = None,
    pool: SimulationPool | None = None,
    executor: str = "thread",
    chunk_size: int | None = None,
    lane_width: int | None = None,
) -> BatchResult:
    """Run a batch from async code; returns the same :class:`BatchResult`.

    With ``pool=None`` a pool is built for the request's spec, backend and
    *executor* strategy and closed afterwards; pass an open pool to
    amortise it across batches (the request's spec must then match the
    pool's, and the pool's own strategy wins).
    """
    owns_pool = pool is None
    if pool is None:
        pool = SimulationPool(
            request.spec,
            backend=request.backend,
            max_workers=max_workers,
            executor=executor,
            chunk_size=chunk_size,
            lane_width=lane_width,
        )
    try:
        requests = pool._coerce_runs(request)
        start = time.perf_counter()
        futures = [
            asyncio.wrap_future(future)
            for future in pool._submit_many(requests)
        ]
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        wall_seconds = time.perf_counter() - start
        return BatchResult(
            backend=pool.backend_name,
            pool_size=pool.max_workers,
            items=batch_items(requests, outcomes),
            wall_seconds=wall_seconds,
            prepare_seconds=pool.prepare_seconds,
            executor=pool.executor_name,
        )
    finally:
        if owns_pool:
            pool.close()
