"""Asyncio front-end over :class:`~repro.serving.pool.SimulationPool`.

Async callers (a web handler serving simulation requests, a notebook
driving many experiments) should not block their event loop on a batch.
:func:`async_run_batch` submits every run to the pool's executor and
awaits the wrapped futures, so the loop stays responsive while worker
threads simulate; :func:`async_run` is the single-request form.

The pool semantics are unchanged — one warm prepare, per-worker program
binding, per-item error capture — only the waiting is asynchronous.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.results import SimulationResult
from repro.serving.batch import BatchRequest, BatchResult, RunRequest
from repro.serving.pool import SimulationPool, batch_items


async def async_run(pool: SimulationPool, request: RunRequest) -> SimulationResult:
    """Await one run on *pool* without blocking the event loop."""
    result, _ = await asyncio.wrap_future(pool._submit_timed(request))
    return result


async def async_run_batch(
    request: BatchRequest,
    max_workers: int | None = None,
    pool: SimulationPool | None = None,
) -> BatchResult:
    """Run a batch from async code; returns the same :class:`BatchResult`.

    With ``pool=None`` a pool is built for the request's spec and backend
    and closed afterwards; pass an open pool to amortise it across batches
    (the request's spec must then match the pool's).
    """
    owns_pool = pool is None
    if pool is None:
        pool = SimulationPool(
            request.spec, backend=request.backend, max_workers=max_workers
        )
    try:
        requests = pool._coerce_runs(request)
        start = time.perf_counter()
        futures = []
        try:
            for run in requests:
                futures.append(asyncio.wrap_future(pool._submit_timed(run)))
        except BaseException:
            # a mid-loop failure (e.g. the pool closed under us) must not
            # abandon the futures already created
            await asyncio.gather(*futures, return_exceptions=True)
            raise
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        wall_seconds = time.perf_counter() - start
        return BatchResult(
            backend=pool.backend_name,
            pool_size=pool.max_workers,
            items=batch_items(requests, outcomes),
            wall_seconds=wall_seconds,
            prepare_seconds=pool.prepare_seconds,
        )
    finally:
        if owns_pool:
            pool.close()
