"""Batch/parallel simulation serving: one prepared machine, many runs.

The paper's framing stops at single simulation runs; this package is the
serving story on top of it.  The observation driving the design is the
prepare/run split every backend already honours: preparation (table
building, closure compilation, code generation) depends only on the
specification, while a run varies cycles, inputs, tracing and fault hooks.
In a serving setting — the same machine simulated for many concurrent
requests — preparation should therefore be paid **once** and the runs
fanned out.

Four pieces implement that:

* :class:`~repro.serving.batch.BatchRequest` / :class:`~repro.serving.batch.BatchResult`
  (:mod:`repro.serving.batch`) — N run variants against one specification,
  with per-run outcomes, per-item error capture, and throughput aggregates
  down to per-worker runs/sec and queue-wait statistics;
* :class:`~repro.serving.executor.ExecutorStrategy`
  (:mod:`repro.serving.executor`) — the execution strategies: ``serial``
  (inline baseline), ``thread`` (GIL-bound prepare amortisation),
  ``process`` (true multi-core: the lowered program is pickled to worker
  processes once at pool startup, requests travel in chunks, and the
  persistent artifact cache makes worker cold starts nearly free) and
  ``lane`` (:mod:`repro.lowering.lanes`: N compatible run variants
  advanced together through one walk of the dependency-scheduled step
  list, amortising per-run dispatch overhead; composes with ``process``
  — lanes within each worker, chunks across workers);
* :class:`~repro.serving.pool.SimulationPool` (:mod:`repro.serving.pool`)
  — the pool over a chosen strategy, with backend-aware dispatch: the
  cache-backed threaded and compiled backends share one cached prepare
  artifact and bind it per worker, the interpreter shares its single warm
  prepared program across the whole pool;
* :func:`~repro.serving.aio.async_run_batch` (:mod:`repro.serving.aio`)
  — the asyncio front-end wrapping the pool for async callers;
* :class:`~repro.serving.server.SimulationServer`
  (:mod:`repro.serving.server` + :mod:`repro.serving.protocol`) — the
  long-lived HTTP front-end: pools created lazily per (machine, backend,
  executor, lane width) and kept warm across client requests, a JSON
  wire protocol
  any ``curl`` can speak, and startup garbage collection of the
  persistent artifact cache (``DiskCache.prune``).

The layer is fault-tolerant by construction: per-run deadlines
(``RunRequest.timeout_seconds``, enforced cooperatively through the
instrumentation layer plus a wall-clock backstop on the process
executor), worker-crash recovery with poisoned-request quarantine
(:class:`~repro.serving.executor.ProcessExecutor`), bounded admission
with structured 429s (:class:`~repro.serving.server.AdmissionGate`) and
graceful degradation (backend fallback chain, memory-only disk-cache
mode).  The chaos harness (``tests/serving/test_chaos.py``, shims in
:mod:`repro.serving.chaos`) injects each failure and proves the system
answers structurally instead of hanging.

Above the single server sits the fleet layer
(:mod:`repro.serving.fleet` + :mod:`repro.serving.router`): a
supervisor that spawns and babysits N child ``repro serve`` processes
(ephemeral ports, readiness probing, crash restart with capped backoff,
flap-benching, rolling SIGTERM drain) behind a front-door router that
shards ``/v1/run``/``/v1/batch`` by (spec fingerprint, backend,
executor) with rendezvous hashing — warm pools stay sticky — and fails
a request over to a sibling exactly once when its home node dies
mid-request.  ``repro fleet --nodes N`` is the CLI front door.

Observability is built in (:mod:`repro.serving.tracing`): every request
is assembled into a :class:`~repro.serving.tracing.RequestTrace` of
typed :class:`~repro.serving.tracing.Span` records — HTTP parse,
admission wait, pool resolution, executor dispatch, per-item queue wait
and worker run (the worker-side spans cross the process boundary on the
``RunOutcome``) — identified by an ``X-Repro-Trace`` id that rides the
wire protocol end-to-end through the fleet router.  Finished traces land
in a bounded in-memory ring behind ``GET /v1/trace/<id>`` and,
optionally, in a durable :class:`~repro.serving.tracing.JsonlExporter`
or :class:`~repro.serving.tracing.SqliteExporter` sink
(``repro serve --trace-sink``); ``GET /metrics`` exposes counters and
per-span-kind latency histograms in Prometheus text format, aggregated
with per-node labels at the router.

The CLI exposes the layer as ``repro serve-batch --executor {serial,
thread,process,lane}`` (one-shot) and ``repro serve`` (the long-lived
server); the throughput benchmark
(``benchmarks/test_batch_throughput.py``) writes ``BENCH_batch.json``
(schema v3, with the executor and lane-width dimensions) from it, and
the equivalence tests prove batched results bit-identical to sequential
ones on every backend and every strategy — including over HTTP
(``tests/serving/test_server.py``).
"""

from repro.serving.aio import async_run, async_run_batch
from repro.serving.batch import BatchItem, BatchRequest, BatchResult, RunRequest
from repro.serving.executor import (
    EXECUTOR_NAMES,
    ExecutorStrategy,
    LaneExecutor,
    ProcessExecutor,
    RunOutcome,
    SerialExecutor,
    ThreadExecutor,
    WorkerContext,
    lane_compatible,
)
from repro.serving.fleet import Backoff, FlapGuard, FleetSupervisor
from repro.serving.pool import SimulationPool, run_batch
from repro.serving.protocol import PROTOCOL_VERSION, ProtocolError, error_kind
from repro.serving.router import FleetRouter, ServingFleet, rank_nodes
from repro.serving.server import AdmissionGate, SimulationServer
from repro.serving.tracing import (
    JsonlExporter,
    RequestTrace,
    Span,
    SqliteExporter,
    TraceRecorder,
    coverage_fraction,
)

__all__ = [
    "AdmissionGate",
    "Backoff",
    "BatchItem",
    "BatchRequest",
    "BatchResult",
    "EXECUTOR_NAMES",
    "ExecutorStrategy",
    "FlapGuard",
    "FleetRouter",
    "FleetSupervisor",
    "JsonlExporter",
    "LaneExecutor",
    "PROTOCOL_VERSION",
    "ProcessExecutor",
    "ProtocolError",
    "RequestTrace",
    "RunOutcome",
    "RunRequest",
    "SerialExecutor",
    "ServingFleet",
    "SimulationPool",
    "SimulationServer",
    "Span",
    "SqliteExporter",
    "ThreadExecutor",
    "TraceRecorder",
    "WorkerContext",
    "async_run",
    "async_run_batch",
    "coverage_fraction",
    "error_kind",
    "lane_compatible",
    "rank_nodes",
    "run_batch",
]
