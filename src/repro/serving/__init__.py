"""Batch/parallel simulation serving: one prepared machine, many runs.

The paper's framing stops at single simulation runs; this package is the
serving story on top of it.  The observation driving the design is the
prepare/run split every backend already honours: preparation (table
building, closure compilation, code generation) depends only on the
specification, while a run varies cycles, inputs, tracing and fault hooks.
In a serving setting — the same machine simulated for many concurrent
requests — preparation should therefore be paid **once** and the runs
fanned out.

Three pieces implement that:

* :class:`~repro.serving.batch.BatchRequest` / :class:`~repro.serving.batch.BatchResult`
  (:mod:`repro.serving.batch`) — N run variants against one specification,
  with per-run outcomes, per-item error capture and throughput aggregates;
* :class:`~repro.serving.pool.SimulationPool` (:mod:`repro.serving.pool`)
  — a thread-pool executor with backend-aware dispatch: the cache-backed
  threaded and compiled backends share one cached prepare artifact and
  bind it per worker, the interpreter falls back to its (trivial) per-run
  prepare;
* :func:`~repro.serving.aio.async_run_batch` (:mod:`repro.serving.aio`)
  — the asyncio front-end wrapping the pool for async callers.

The CLI exposes the layer as ``repro serve-batch``; the throughput
benchmark (``benchmarks/test_batch_throughput.py``) writes
``BENCH_batch.json`` from it, and the equivalence tests prove batched
results bit-identical to sequential ones on every backend.
"""

from repro.serving.aio import async_run, async_run_batch
from repro.serving.batch import BatchItem, BatchRequest, BatchResult, RunRequest
from repro.serving.pool import SimulationPool, run_batch

__all__ = [
    "BatchItem",
    "BatchRequest",
    "BatchResult",
    "RunRequest",
    "SimulationPool",
    "async_run",
    "async_run_batch",
    "run_batch",
]
