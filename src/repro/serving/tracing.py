"""Per-request tracing: typed spans from the HTTP edge to the worker run.

The serving stack spans router -> node -> pool -> executor -> worker, and a
slow batch can lose its time in any layer: admission queueing, pool compile,
process-pool dispatch, lane grouping, or the simulation itself.  This module
gives every served request one :class:`RequestTrace` assembled from typed
:class:`Span` records so the answer is measured, not guessed.

Span model
----------
A span is a ``(name, start, duration, parent, worker, item, detail)`` tuple
(:class:`Span`, a ``NamedTuple`` so equality and pickling are structural).
``start`` is ``time.monotonic()`` — CLOCK_MONOTONIC is system-wide on Linux,
so worker-process timestamps line up with the parent's without translation.
``parent`` is the *index* of the parent span within its containing span
tuple; spans stamped worker-side onto a ``RunOutcome`` use indices relative
to that outcome's own tuple (or ``None``) and are rebased when the request
trace is assembled, so the records survive pickling unchanged.

The request-level spans tile the handler's wall time contiguously
(``http_parse`` -> ``admission_wait`` -> ``pool_resolve`` ->
``executor_dispatch`` -> ``serialize``), which makes near-total coverage a
construction property rather than an aspiration; per-item spans
(``pool_queue``, ``worker_run``, ``lane_group``, ``chunk_ipc``, ``error``)
hang off the dispatch span.  ``tests/serving/test_tracing.py`` holds every
machine x backend x executor combination to >=95% coverage and
parent-containment.

Recording and export
--------------------
:class:`TraceRecorder` keeps a bounded in-memory ring (always on, backs
``GET /v1/trace/<id>``), per-span-kind fixed-bucket latency histograms
(rendered on ``GET /metrics``), and fans finished traces out to pluggable
sinks: :class:`JsonlExporter` (append-only lines, size-based rotation) and
:class:`SqliteExporter` (one ``spans`` table, WAL, one transaction per trace
so a hard kill never leaves a torn trace visible).  Sinks are selected with
``repro serve --trace-sink {jsonl,sqlite} --trace-dir DIR``.

See docs/serving.md ("Tracing and metrics") for operations guidance and
docs/api-reference.md for the wire schemas.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, NamedTuple, Sequence

__all__ = [
    "SPAN_KINDS",
    "LATENCY_BUCKETS",
    "METRIC_NAMES",
    "ROUTER_METRIC_NAMES",
    "TRACE_SINKS",
    "Span",
    "RequestTrace",
    "TraceBuilder",
    "TraceRecorder",
    "TraceExporter",
    "JsonlExporter",
    "SqliteExporter",
    "coverage_fraction",
    "make_exporter",
    "make_trace_id",
    "merge_node_metrics",
    "metric_line",
    "outcome_spans",
]

#: Every span name the pipeline emits.  ``request`` is the root envelope;
#: the next five tile the handler thread's wall time; the rest are per-item
#: spans parented under ``executor_dispatch``.
SPAN_KINDS = (
    "request",
    "http_parse",
    "admission_wait",
    "pool_resolve",
    "executor_dispatch",
    "serialize",
    "pool_queue",
    "worker_run",
    "lane_group",
    "chunk_ipc",
    "error",
)

#: Fixed histogram bucket upper bounds (seconds) for span durations.  The
#: range spans sub-millisecond HTTP parsing up to ten-second batch runs.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Valid values for ``repro serve --trace-sink``.
TRACE_SINKS = ("none", "jsonl", "sqlite")

#: Metric families a single node's ``GET /metrics`` emits.  The docs gate
#: (tests/integration/test_server_docs.py) holds this list and
#: docs/api-reference.md to bidirectional agreement, and the scrape test
#: asserts the live endpoint emits exactly these names.
METRIC_NAMES = (
    "repro_http_requests_total",
    "repro_http_errors_total",
    "repro_admission_inflight",
    "repro_admission_queued",
    "repro_admission_rejected_total",
    "repro_resilience_events_total",
    "repro_pools_live",
    "repro_uptime_seconds",
    "repro_traces_recorded_total",
    "repro_trace_ring_evictions_total",
    "repro_trace_export_errors_total",
    "repro_span_duration_seconds",
)

#: Additional metric families the fleet router's ``GET /metrics`` emits
#: (child-node metrics are re-emitted beneath these with a ``node`` label).
ROUTER_METRIC_NAMES = (
    "repro_router_requests_total",
    "repro_router_errors_total",
    "repro_router_failovers_total",
    "repro_router_nodes",
)

#: Characters allowed in a client-supplied ``X-Repro-Trace`` id.  Anything
#: else (or anything overlong) is replaced with a fresh id rather than
#: echoed back into headers and exports.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def make_trace_id() -> str:
    """Return a fresh 32-hex-character trace id."""
    return uuid.uuid4().hex


def sanitize_trace_id(candidate: str | None) -> str:
    """Return *candidate* if it is a safe trace id, else a fresh one."""
    if candidate and _TRACE_ID_RE.match(candidate):
        return candidate
    return make_trace_id()


class Span(NamedTuple):
    """One timed stage of a request.

    ``start`` is ``time.monotonic()`` seconds; ``parent`` is the index of
    the parent span within the containing tuple (``None`` for the root, or
    — on a ``RunOutcome``/``BatchItem`` — "attach me to the dispatch span"
    once the request trace is assembled).  ``item`` is the batch-item index
    the span belongs to, ``worker`` the executing worker's name, ``detail``
    a short free-form annotation (error kind, lane count, ...).
    """

    name: str
    start: float
    duration: float
    parent: int | None = None
    worker: str | None = None
    item: int | None = None
    detail: str | None = None

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_json(self) -> dict:
        """JSON-object form; ``from_json`` round-trips to an equal tuple."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "parent": self.parent,
            "worker": self.worker,
            "item": self.item,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            start=data["start"],
            duration=data["duration"],
            parent=data.get("parent"),
            worker=data.get("worker"),
            item=data.get("item"),
            detail=data.get("detail"),
        )


@dataclass(frozen=True)
class RequestTrace:
    """One served request, assembled from spans.

    ``spans[0]`` is always the root ``request`` span; every other span's
    ``parent`` is a valid index into ``spans``.  ``started`` is wall-clock
    (``time.time()``) for humans; span timestamps stay monotonic.
    """

    trace_id: str
    route: str
    status: int
    started: float
    duration: float
    spans: tuple[Span, ...]
    label: str | None = None
    backend: str | None = None
    executor: str | None = None

    def to_json(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "status": self.status,
            "started": self.started,
            "duration": self.duration,
            "label": self.label,
            "backend": self.backend,
            "executor": self.executor,
            "spans": [span.to_json() for span in self.spans],
        }

    @classmethod
    def from_json(cls, data: dict) -> "RequestTrace":
        return cls(
            trace_id=data["trace_id"],
            route=data["route"],
            status=data["status"],
            started=data["started"],
            duration=data["duration"],
            label=data.get("label"),
            backend=data.get("backend"),
            executor=data.get("executor"),
            spans=tuple(Span.from_json(s) for s in data["spans"]),
        )


def coverage_fraction(trace: RequestTrace) -> float:
    """Fraction of the root span's wall time covered by other spans.

    Overlapping child intervals are merged (union, clipped to the root's
    interval), so double-counting cannot inflate the figure.  The
    completeness matrix requires >=0.95 for every served request.
    """
    root = trace.spans[0]
    if root.duration <= 0.0:
        return 1.0
    lo, hi = root.start, root.end
    intervals = sorted(
        (max(lo, span.start), min(hi, span.end)) for span in trace.spans[1:]
    )
    covered, cursor = 0.0, lo
    for begin, end in intervals:
        begin = max(begin, cursor)
        if end > begin:
            covered += end - begin
            cursor = end
    return covered / (hi - lo)


class TraceBuilder:
    """Accumulates spans for one in-flight request.

    The handler calls :meth:`mark` at each phase boundary — every mark
    closes the interval since the previous one, so the phase spans tile the
    handler's wall time with no gaps by construction — and
    :meth:`add_items` with the finished batch items, whose outcome-level
    spans (stamped worker-side) are rebased under the ``executor_dispatch``
    phase at :meth:`build` time.
    """

    def __init__(self, route: str, trace_id: str | None = None):
        self.trace_id = trace_id or make_trace_id()
        self.route = route
        self.started = time.time()
        self._t0 = time.monotonic()
        self._cursor = self._t0
        self._phases: list[tuple[str, float, float, str | None]] = []
        self._items: list[tuple[Span, ...]] = []
        self.label: str | None = None
        self.backend: str | None = None
        self.executor: str | None = None
        #: set by :meth:`error`; the handler keeps the error span terminal
        #: by extending it over the response write instead of marking a
        #: ``serialize`` phase after it
        self.errored = False

    def mark(self, name: str, detail: str | None = None) -> None:
        """Close the phase that ran since the previous mark as *name*."""
        now = time.monotonic()
        self._phases.append((name, self._cursor, now - self._cursor, detail))
        self._cursor = now

    def error(self, kind: str, message: str) -> None:
        """Close the current phase as a terminal ``error`` span."""
        self.mark("error", detail=f"{kind}: {message}"[:200])
        self.errored = True

    def extend_last(self) -> None:
        """Stretch the most recent phase to now (folds trailing work —
        e.g. writing an error body — into the terminal span)."""
        if not self._phases:
            return
        now = time.monotonic()
        name, start, _duration, detail = self._phases[-1]
        self._phases[-1] = (name, start, now - start, detail)
        self._cursor = now

    def annotate(self, label: str | None = None, backend: str | None = None,
                 executor: str | None = None) -> None:
        if label is not None:
            self.label = label
        if backend is not None:
            self.backend = backend
        if executor is not None:
            self.executor = executor

    def add_items(self, items: Iterable) -> None:
        """Adopt the per-item spans of finished ``BatchItem`` records."""
        for item in items:
            spans = getattr(item, "spans", ())
            if spans:
                self._items.append(tuple(spans))

    def build(self, status: int) -> RequestTrace:
        """Assemble the final trace (root + phases + rebased item spans)."""
        end = time.monotonic()
        spans: list[Span] = [
            Span("request", self._t0, end - self._t0, None, None, None,
                 self.route),
        ]
        dispatch_index = 0
        for name, start, duration, detail in self._phases:
            spans.append(Span(name, start, duration, 0, None, None, detail))
            if name == "executor_dispatch":
                dispatch_index = len(spans) - 1
        for group in self._items:
            base = len(spans)
            for span in group:
                parent = (dispatch_index if span.parent is None
                          else base + span.parent)
                spans.append(span._replace(parent=parent))
        return RequestTrace(
            trace_id=self.trace_id,
            route=self.route,
            status=status,
            started=self.started,
            duration=end - self._t0,
            label=self.label,
            backend=self.backend,
            executor=self.executor,
            spans=tuple(spans),
        )


def outcome_spans(outcome, collected: float | None = None,
                  executor: str | None = None) -> tuple[Span, ...]:
    """Assemble one batch item's span tuple from its ``RunOutcome``.

    Prepends a ``pool_queue`` span (the wait between submission and
    execution start, reconstructed from ``queue_seconds`` against the
    earliest worker-stamped span) and — on the process executor, where
    results travel back over IPC — appends a ``chunk_ipc`` span from the
    last worker-side timestamp to *collected*, the parent-side monotonic
    time the outcome was gathered.  Worker-stamped spans keep their
    relative ``parent`` indices, shifted past the prepended span.
    """
    worker_spans = tuple(getattr(outcome, "spans", ()))
    spans: list[Span] = []
    if worker_spans:
        exec_start = min(span.start for span in worker_spans)
        spans.append(Span("pool_queue", exec_start - outcome.queue_seconds,
                          outcome.queue_seconds, None, outcome.worker,
                          None, None))
    offset = len(spans)
    for span in worker_spans:
        spans.append(span if span.parent is None
                     else span._replace(parent=span.parent + offset))
    if executor == "process" and collected is not None and worker_spans:
        worker_end = max(span.end for span in worker_spans)
        if collected > worker_end:
            spans.append(Span("chunk_ipc", worker_end,
                              collected - worker_end, None, outcome.worker,
                              None, None))
    return tuple(spans)


class TraceExporter:
    """Base class for pluggable trace sinks."""

    def export(self, trace: RequestTrace) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; idempotent."""


class JsonlExporter(TraceExporter):
    """Append-only JSON-lines sink with size-based rotation.

    One line per trace (``RequestTrace.to_json``).  When appending a line
    would push the file past *max_bytes*, the current file is renamed to
    ``<name>.1`` (replacing any previous rotation) and a fresh file is
    started, bounding disk use at roughly ``2 * max_bytes`` per process.
    Give every server process its own file or directory — ``repro fleet``
    does this automatically with per-node subdirectories.
    """

    def __init__(self, path: str | Path, max_bytes: int = 64 * 1024 * 1024):
        path = Path(path)
        if path.is_dir():
            path = path / "traces.jsonl"
        self.path = path
        self.max_bytes = max(1, int(max_bytes))
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = self.path.stat().st_size

    def export(self, trace: RequestTrace) -> None:
        line = json.dumps(trace.to_json(), separators=(",", ":")) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            if self._size and self._size + encoded > self.max_bytes:
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += encoded

    def _rotate(self) -> None:
        self._handle.close()
        os.replace(self.path, self.path.with_name(self.path.name + ".1"))
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    @staticmethod
    def read(path: str | Path) -> list[RequestTrace]:
        """Parse a JSONL trace file back into traces.

        Crash-tolerant: a line torn by a killed writer (unterminated
        JSON, missing fields) is skipped rather than poisoning the whole
        file — every complete line before and after it is returned.
        """
        traces = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    traces.append(RequestTrace.from_json(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    continue
        return traces


class SqliteExporter(TraceExporter):
    """SQLite sink: one ``spans`` table, WAL journal, one transaction per
    trace.

    Trace-level columns are duplicated onto every span row so the table is
    queryable without joins; ``total`` records the trace's span count so a
    reader can tell complete traces from ones torn by a crash — though the
    per-trace transaction means a killed process leaves either all of a
    trace's rows or none (verified by the ``hard_kill`` crash-safety test).
    """

    SCHEMA = """
        CREATE TABLE IF NOT EXISTS spans (
            trace_id TEXT NOT NULL,
            idx INTEGER NOT NULL,
            name TEXT NOT NULL,
            start REAL NOT NULL,
            duration REAL NOT NULL,
            parent INTEGER,
            worker TEXT,
            item INTEGER,
            detail TEXT,
            route TEXT NOT NULL,
            status INTEGER NOT NULL,
            started REAL NOT NULL,
            trace_seconds REAL NOT NULL,
            label TEXT,
            backend TEXT,
            executor TEXT,
            total INTEGER NOT NULL,
            PRIMARY KEY (trace_id, idx)
        )
    """

    def __init__(self, path: str | Path):
        path = Path(path)
        if path.is_dir():
            path = path / "traces.sqlite"
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.execute(self.SCHEMA)

    def export(self, trace: RequestTrace) -> None:
        rows = [
            (trace.trace_id, index, span.name, span.start, span.duration,
             span.parent, span.worker, span.item, span.detail,
             trace.route, trace.status, trace.started, trace.duration,
             trace.label, trace.backend, trace.executor, len(trace.spans))
            for index, span in enumerate(trace.spans)
        ]
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO spans VALUES "
                "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)", rows)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    @staticmethod
    def read(path: str | Path,
             complete_only: bool = True) -> list[RequestTrace]:
        """Reassemble traces from a spans database.

        With *complete_only* (the default) only traces whose row count
        matches their recorded ``total`` are returned — after a crash this
        is what a reader should trust.
        """
        conn = sqlite3.connect(str(path))
        try:
            rows = conn.execute(
                "SELECT trace_id, idx, name, start, duration, parent, "
                "worker, item, detail, route, status, started, "
                "trace_seconds, label, backend, executor, total "
                "FROM spans ORDER BY trace_id, idx").fetchall()
        finally:
            conn.close()
        grouped: "OrderedDict[str, list]" = OrderedDict()
        for row in rows:
            grouped.setdefault(row[0], []).append(row)
        traces = []
        for trace_id, group in grouped.items():
            total = group[0][16]
            if complete_only and len(group) != total:
                continue
            first = group[0]
            traces.append(RequestTrace(
                trace_id=trace_id,
                route=first[9],
                status=first[10],
                started=first[11],
                duration=first[12],
                label=first[13],
                backend=first[14],
                executor=first[15],
                spans=tuple(
                    Span(name=r[2], start=r[3], duration=r[4], parent=r[5],
                         worker=r[6], item=r[7], detail=r[8])
                    for r in group
                ),
            ))
        return traces


def make_exporter(sink: str | None,
                  directory: str | Path | None) -> TraceExporter | None:
    """Build the exporter selected by ``--trace-sink`` / ``--trace-dir``."""
    if sink in (None, "", "none"):
        return None
    if directory is None:
        raise ValueError(f"trace sink {sink!r} requires a trace directory")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if sink == "jsonl":
        return JsonlExporter(directory / "traces.jsonl")
    if sink == "sqlite":
        return SqliteExporter(directory / "traces.sqlite")
    raise ValueError(f"unknown trace sink {sink!r}; expected one of "
                     f"{', '.join(TRACE_SINKS)}")


class TraceRecorder:
    """Thread-safe trace store: bounded ring, histograms, exporter fan-out.

    The ring (an ordered dict capped at *ring_size*) is always on and backs
    ``GET /v1/trace/<id>``; the oldest finished trace is evicted first, and
    in-flight builders are unaffected because a trace only enters the ring
    at :meth:`finish`.  Every finished span feeds a per-kind fixed-bucket
    latency histogram rendered by :meth:`render_metrics`.  Exporter
    failures are counted, never raised — tracing must not fail requests.
    """

    def __init__(self, ring_size: int = 256,
                 exporters: Sequence[TraceExporter] = ()):
        self.ring_size = max(1, int(ring_size))
        self.exporters = tuple(exporters)
        self._ring: "OrderedDict[str, RequestTrace]" = OrderedDict()
        self._lock = threading.Lock()
        self.traces_recorded = 0
        self.ring_evictions = 0
        self.export_errors = 0
        self._histograms: dict[str, list] = {}

    def begin(self, route: str, trace_id: str | None = None) -> TraceBuilder:
        """Start a builder for one request (not yet in the ring)."""
        return TraceBuilder(route, trace_id=trace_id)

    def finish(self, builder: TraceBuilder, status: int) -> RequestTrace:
        """Assemble, ring-buffer, histogram, and export one trace."""
        trace = builder.build(status)
        with self._lock:
            self.traces_recorded += 1
            self._ring[trace.trace_id] = trace
            while len(self._ring) > self.ring_size:
                self._ring.popitem(last=False)
                self.ring_evictions += 1
            for span in trace.spans:
                self._observe(span.name, span.duration)
        for exporter in self.exporters:
            try:
                exporter.export(trace)
            except Exception:
                with self._lock:
                    self.export_errors += 1
        return trace

    def get(self, trace_id: str) -> RequestTrace | None:
        with self._lock:
            return self._ring.get(trace_id)

    def close(self) -> None:
        for exporter in self.exporters:
            exporter.close()

    def _observe(self, kind: str, duration: float) -> None:
        state = self._histograms.get(kind)
        if state is None:
            state = self._histograms[kind] = [
                [0] * (len(LATENCY_BUCKETS) + 1), 0.0, 0]
        buckets, _, _ = state
        for index, bound in enumerate(LATENCY_BUCKETS):
            if duration <= bound:
                buckets[index] += 1
                break
        else:
            buckets[-1] += 1
        state[1] += duration
        state[2] += 1

    def snapshot(self) -> dict:
        """Counter snapshot for ``/v1/stats``."""
        with self._lock:
            return {
                "recorded": self.traces_recorded,
                "ring_size": self.ring_size,
                "ring_entries": len(self._ring),
                "ring_evictions": self.ring_evictions,
                "export_errors": self.export_errors,
            }

    def render_metrics(self) -> list[str]:
        """Prometheus text lines for the trace counters and histograms."""
        with self._lock:
            lines = [
                "# HELP repro_traces_recorded_total Traces finished and "
                "recorded to the ring buffer.",
                "# TYPE repro_traces_recorded_total counter",
                metric_line("repro_traces_recorded_total",
                            self.traces_recorded),
                "# HELP repro_trace_ring_evictions_total Oldest traces "
                "evicted from the bounded ring buffer.",
                "# TYPE repro_trace_ring_evictions_total counter",
                metric_line("repro_trace_ring_evictions_total",
                            self.ring_evictions),
                "# HELP repro_trace_export_errors_total Trace exports that "
                "raised and were dropped.",
                "# TYPE repro_trace_export_errors_total counter",
                metric_line("repro_trace_export_errors_total",
                            self.export_errors),
                "# HELP repro_span_duration_seconds Span durations by span "
                "kind (fixed buckets).",
                "# TYPE repro_span_duration_seconds histogram",
            ]
            for kind in sorted(self._histograms):
                buckets, total, count = self._histograms[kind]
                cumulative = 0
                for bound, bucket in zip(LATENCY_BUCKETS, buckets):
                    cumulative += bucket
                    lines.append(metric_line(
                        "repro_span_duration_seconds_bucket", cumulative,
                        {"kind": kind, "le": _format_float(bound)}))
                cumulative += buckets[-1]
                lines.append(metric_line(
                    "repro_span_duration_seconds_bucket", cumulative,
                    {"kind": kind, "le": "+Inf"}))
                lines.append(metric_line(
                    "repro_span_duration_seconds_sum", total,
                    {"kind": kind}))
                lines.append(metric_line(
                    "repro_span_duration_seconds_count", count,
                    {"kind": kind}))
        return lines


def _format_float(value: float) -> str:
    text = format(value, ".10g")
    return text


def _format_value(value) -> str:
    if isinstance(value, float):
        return _format_float(value)
    return str(value)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def metric_line(name: str, value, labels: dict | None = None) -> str:
    """Render one Prometheus exposition sample line."""
    if labels:
        body = ",".join(f'{key}="{_escape_label(val)}"'
                        for key, val in labels.items())
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


#: One exposition sample: name, optional label block, value.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")

#: Suffixes that map a histogram sample back to its declared family.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def metric_base_name(sample_name: str, declared: set[str]) -> str:
    """Map a sample name to its declared metric family name."""
    if sample_name in declared:
        return sample_name
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in declared:
                return base
    return sample_name


def merge_node_metrics(node_texts: dict[str, str]) -> list[str]:
    """Merge child-node ``/metrics`` payloads under per-node labels.

    Re-emits every sample with a ``node="<node_id>"`` label prepended, and
    groups all samples of a metric family behind a single ``# HELP`` /
    ``# TYPE`` header pair as the exposition format requires.  Returns the
    merged lines (no trailing newline handling — the caller joins).
    """
    declared: "OrderedDict[str, dict]" = OrderedDict()
    stray: list[str] = []
    for node_id in sorted(node_texts):
        for raw in node_texts[node_id].splitlines():
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    family = declared.setdefault(
                        parts[2], {"help": None, "type": None, "samples": []})
                    key = parts[1].lower()
                    if family[key] is None:
                        family[key] = line
                continue
            match = _SAMPLE_RE.match(line)
            if not match:
                continue
            name, labels, value = match.groups()
            node_label = f'node="{_escape_label(node_id)}"'
            labels = f"{node_label},{labels}" if labels else node_label
            sample = f"{name}{{{labels}}} {value}"
            base = metric_base_name(name, set(declared))
            if base in declared:
                declared[base]["samples"].append(sample)
            else:
                stray.append(sample)
    lines: list[str] = []
    for family in declared.values():
        for header in (family["help"], family["type"]):
            if header:
                lines.append(header)
        lines.extend(family["samples"])
    lines.extend(stray)
    return lines
