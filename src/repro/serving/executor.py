"""Execution strategies for the serving pool: serial, thread, process, lane.

:class:`~repro.serving.pool.SimulationPool` used to be welded to one
``ThreadPoolExecutor``; this module extracts the scheduling decision into
an :class:`ExecutorStrategy` with four implementations:

* **serial** — every run executes inline on the caller's thread, in
  submission order.  The baseline and the debugging strategy: no
  concurrency, no queueing, deterministic scheduling.
* **thread** — the classic pool: worker threads interleave on the GIL, so
  the win is prepare amortisation (one cached artifact, many runs), not
  CPU parallelism.  Right for I/O-bound hooks and modest batches.
* **process** — true multi-core serving.  Worker processes are started
  once per pool; each receives the parent's :class:`WorkerContext` — the
  specification plus the already-lowered, picklable
  :class:`~repro.lowering.program.CycleProgram` — through the pool
  initializer (pickled **once** at startup, never per run) and binds its
  own backend to it.  The parent also seeds the persistent artifact cache
  (:class:`~repro.compiler.cache.DiskCache`) with the lowered IR and the
  compiled backend's generated source, so a worker's cold start skips
  lowering and code generation entirely.  Requests travel to workers in
  chunks (``chunk_size``) to amortise IPC; results come back as picklable
  :class:`RunOutcome` values with per-item error capture.
* **lane** — lane-vectorized batching (:mod:`repro.lowering.lanes`):
  compatible requests — same cycle count, same instrumentation profile,
  no trace/override/deadline — are grouped into lane groups of up to
  ``lane_width`` and the whole group executes in **one walk** of the
  per-cycle schedule, amortising every per-run cost (plan construction,
  dispatch, result plumbing).  Incompatible requests fall back to scalar
  execution inside the same chunk, and a lane whose run raises yields a
  per-item error without touching its neighbours.  Lanes compose with
  the process strategy (``ProcessExecutor(lane_width=...)``): chunks
  fan out across worker processes, lanes batch within each worker.

Every strategy resolves one submitted request to one future of a
:class:`RunOutcome` — result or error, worker label, busy seconds and
queue wait — so the pool, the batch aggregates and the asyncio front-end
are strategy-agnostic.
"""

from __future__ import annotations

import math
import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import (
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Callable, Sequence

from repro.compiler.cache import (
    DiskCache,
    PrepareCache,
    artifact_key,
    spec_fingerprint,
)
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.specopt import SpecOptPasses
from repro.core.backend import Backend, PreparedSimulation, resolve_trace
from repro.core.instrument import run_deadline
from repro.core.results import SimulationResult
from repro.errors import DeadlineExceededError, ServingError, WorkerCrashError
from repro.lowering.lanes import DEFAULT_LANE_WIDTH, LaneOutcome
from repro.lowering.program import CycleProgram
from repro.rtl.spec import Specification
from repro.serving.batch import RunRequest
from repro.serving.tracing import Span

#: Registered execution strategies, in cost order.
EXECUTOR_NAMES = ("serial", "thread", "process", "lane")

#: How a strategy runs one request: returns (result, busy seconds).
ExecuteFn = Callable[[RunRequest], "tuple[SimulationResult, float]"]

#: Worker crashes a single request may cause before it is quarantined.
MAX_CRASHES_PER_REQUEST = 2

#: Capped exponential backoff between pool respawn and chunk retry.
RETRY_BACKOFF_SECONDS = 0.05
RETRY_BACKOFF_CAP_SECONDS = 1.0

#: The process executor's wall-clock backstop fires at this multiple of a
#: chunk's largest per-item deadline — the bound on how long a hard-hung
#: worker (one the cooperative check cannot interrupt) can hold a request.
WALL_CLOCK_DEADLINE_FACTOR = 2.0

#: Cumulative resilience counters every strategy reports (all zero except
#: on the process executor, the only strategy whose workers can die).
ZERO_COUNTERS = {"worker_crashes": 0, "worker_retries": 0, "quarantined": 0}


def _try_resolve(future: Future, outcomes=None, error=None) -> bool:
    """Resolve *future* if still pending (wall-clock backstop vs. the real
    chunk result is a benign race: first writer wins, the loser is
    discarded)."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(outcomes)
        return True
    except InvalidStateError:
        return False


@dataclass
class RunOutcome:
    """What one scheduled run produced, wherever it executed.

    Exactly one of ``result``/``error`` is set.  ``worker`` labels the
    thread or process that ran the request; ``queue_seconds`` is the time
    the request (or its chunk) waited between submission and execution
    start, measured on the system-wide monotonic clock so it is meaningful
    across process boundaries.

    ``spans`` carries the execution-side trace records
    (:class:`~repro.serving.tracing.Span` tuples — ``worker_run``,
    ``lane_group`` or a terminal ``error``) stamped where the run actually
    executed; they are plain tuples on the monotonic clock, so they
    survive the pickle back from a worker process and line up with the
    parent's spans without translation.  ``parent`` indices are relative
    to this outcome's own tuple (``None`` = attach to the dispatch span
    when the request trace is assembled).
    """

    result: SimulationResult | None
    error: Exception | None
    seconds: float
    worker: str
    queue_seconds: float
    spans: tuple = ()


def _error_span(start: float, duration: float, worker: str,
                error: Exception) -> Span:
    """The terminal ``error`` span for a failed run (never vanishes)."""
    detail = f"{type(error).__name__}: {error}"[:200]
    return Span("error", start, duration, None, worker, None, detail)


def execute_outcome(
    execute: ExecuteFn, request: RunRequest, submitted: float, worker: str
) -> RunOutcome:
    """Run one request, capturing any ``Exception`` into the outcome.

    Enforces the request's ``timeout_seconds`` deadline, measured from
    *submitted*: a request whose queue wait already spent the budget is
    shed without executing, and an executing run is scoped under
    :func:`~repro.core.instrument.run_deadline` so the instrumentation
    hooks interrupt it cooperatively.  This one code path covers the
    serial and thread executors in-process and the process executor
    inside its workers (``submitted`` is system-wide monotonic time, so
    the budget survives the process boundary).

    ``BaseException`` (KeyboardInterrupt and friends) propagates — the
    batch machinery re-raises it rather than recording it per item.
    """
    entered = time.monotonic()
    queue_seconds = max(0.0, entered - submitted)
    deadline = None
    if request.timeout_seconds is not None:
        remaining = request.timeout_seconds - queue_seconds
        if remaining <= 0.0:
            shed = DeadlineExceededError(
                f"request shed before execution: waited "
                f"{queue_seconds:.3f}s in queue against a "
                f"{request.timeout_seconds:.3f}s deadline"
            )
            return RunOutcome(
                result=None, error=shed,
                seconds=0.0, worker=worker, queue_seconds=queue_seconds,
                spans=(_error_span(entered, 0.0, worker, shed),),
            )
        deadline = entered + remaining
    try:
        if deadline is None:
            result, seconds = execute(request)
        else:
            with run_deadline(deadline):
                result, seconds = execute(request)
    except Exception as exc:  # noqa: BLE001 - rerouted per item
        return RunOutcome(
            result=None, error=exc, seconds=0.0,
            worker=worker, queue_seconds=queue_seconds,
            spans=(_error_span(
                entered, time.monotonic() - entered, worker, exc),),
        )
    return RunOutcome(
        result=result, error=None, seconds=seconds,
        worker=worker, queue_seconds=queue_seconds,
        spans=(Span("worker_run", entered, time.monotonic() - entered,
                    None, worker, None, None),),
    )


def _spread_chunk(
    slots: "list[Future[RunOutcome]]", chunk_future: Future
) -> None:
    """Resolve per-item futures from one finished chunk future."""
    try:
        outcomes = chunk_future.result()
    except BaseException as exc:  # noqa: BLE001 - mirrored into every item
        for slot in slots:
            slot.set_exception(exc)
        return
    for slot, outcome in zip(slots, outcomes):
        slot.set_result(outcome)


class ExecutorStrategy(ABC):
    """One way of scheduling run requests onto compute."""

    #: strategy name as accepted by ``SimulationPool(executor=...)``
    name: str = "strategy"

    def __init__(self, workers: int) -> None:
        self.workers = workers

    @abstractmethod
    def submit_chunk(
        self, requests: Sequence[RunRequest]
    ) -> "Future[list[RunOutcome]]":
        """Schedule one chunk; the future resolves to per-item outcomes."""

    def default_chunk_size(self, count: int) -> int:
        """Requests per chunk when the caller did not choose one."""
        return 1

    def execute_many(
        self, requests: Sequence[RunRequest], chunk_size: int | None = None
    ) -> "list[RunOutcome] | None":
        """Outcomes for every request, produced inline — or ``None``.

        The lane strategy overrides this so a synchronous batch skips the
        per-item ``Future`` plumbing of :meth:`submit_many` entirely —
        per-run scheduling overhead is precisely what lanes amortise.
        Every other strategy (including serial, the baseline that runs
        the standard pipeline) returns ``None`` and the pool uses
        futures.
        """
        return None

    def counters(self) -> dict[str, int]:
        """Cumulative resilience counters (see :data:`ZERO_COUNTERS`)."""
        return dict(ZERO_COUNTERS)

    def submit_many(
        self, requests: Sequence[RunRequest], chunk_size: int | None = None
    ) -> "list[Future[RunOutcome]]":
        """Schedule every request, returning one outcome future per item.

        Requests are grouped into chunks of *chunk_size* (default: the
        strategy's own heuristic) and each chunk travels as one scheduling
        unit; per-item futures are resolved when their chunk completes.
        """
        requests = list(requests)
        if not requests:
            return []
        if chunk_size is None:
            chunk_size = self.default_chunk_size(len(requests))
        item_futures: list[Future] = [Future() for _ in requests]
        for start in range(0, len(requests), chunk_size):
            chunk = requests[start:start + chunk_size]
            slots = item_futures[start:start + len(chunk)]
            self.submit_chunk(chunk).add_done_callback(
                partial(_spread_chunk, slots)
            )
        return item_futures

    @abstractmethod
    def close(self, wait: bool = True) -> None:
        """Release the strategy's workers."""


class SerialExecutor(ExecutorStrategy):
    """Inline execution on the caller's thread, in submission order."""

    name = "serial"

    def __init__(self, execute: ExecuteFn) -> None:
        super().__init__(workers=1)
        self._execute = execute

    def submit_chunk(self, requests):
        submitted = time.monotonic()
        future: Future = Future()
        future.set_result([
            execute_outcome(self._execute, request, submitted, "serial-0")
            for request in requests
        ])
        return future

    def close(self, wait: bool = True) -> None:
        pass


class ThreadExecutor(ExecutorStrategy):
    """The classic GIL-bound worker-thread pool (prepare amortisation)."""

    name = "thread"

    def __init__(self, execute: ExecuteFn, workers: int,
                 thread_name_prefix: str = "repro") -> None:
        super().__init__(workers=workers)
        self._execute = execute
        self._threads = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=thread_name_prefix
        )

    def submit_chunk(self, requests):
        return self._threads.submit(
            self._run_chunk, list(requests), time.monotonic()
        )

    def _run_chunk(self, requests, submitted):
        worker = threading.current_thread().name
        return [
            execute_outcome(self._execute, request, submitted, worker)
            for request in requests
        ]

    def close(self, wait: bool = True) -> None:
        self._threads.shutdown(wait=wait)


# ---------------------------------------------------------------------------
# The lane strategy: vectorized grouping of compatible requests
# ---------------------------------------------------------------------------

#: How a strategy runs one lane group: one LaneOutcome per request, in order.
LaneExecuteFn = Callable[["list[RunRequest]"], "list[LaneOutcome]"]


def lane_compatible(request: RunRequest, spec: Specification) -> bool:
    """Whether *request* may ride in a lane group.

    Lane groups carry only the fast-path run shape: no per-cycle
    ``override``, no deadline, and no tracing.  Note the trace decision
    must be resolved against the specification — ``trace=None`` on a
    machine with ``*`` trace declarations means tracing is *on* — so an
    eligible request is one whose resolved options disable both trace
    kinds.  Everything else executes scalar inside the same chunk.
    """
    if request.override is not None or request.timeout_seconds is not None:
        return False
    options = resolve_trace(spec, request.trace)
    return not (options.trace_cycles or options.trace_memory_accesses)


def prepared_lane_outcomes(
    prepared: PreparedSimulation, requests: "list[RunRequest]"
) -> "list[LaneOutcome]":
    """Run one compatible lane group on *prepared* (shared profile)."""
    for request in requests:
        request.check_supported(prepared)
    ios = [request.make_io() for request in requests]
    return prepared.run_lanes(
        cycles=requests[0].cycles,
        ios=ios,
        collect_stats=requests[0].collect_stats,
    )


def execute_lane_chunk(
    lane_execute: LaneExecuteFn,
    execute: ExecuteFn,
    spec: Specification,
    requests: "list[RunRequest]",
    submitted: float,
    worker: str,
    lane_width: int,
) -> "list[RunOutcome]":
    """Execute one chunk with lane grouping; outcomes in request order.

    Compatible requests are grouped by execution profile (cycle count and
    statistics collection) and sliced into lane groups of up to
    *lane_width*; a group-level failure is mirrored into every member.
    Lone lanes gain nothing from vectorization and run scalar along with
    the incompatible (override / trace / deadline) requests.
    """
    outcomes: "list[RunOutcome | None]" = [None] * len(requests)
    groups: "dict[tuple, list[int]]" = {}
    # batches routinely repeat one request object N times, so the
    # compatibility decision is memoized per distinct object
    decisions: "dict[int, tuple | None]" = {}
    for index, request in enumerate(requests):
        ident = id(request)
        key = decisions.get(ident, False)
        if key is False:
            key = (
                (request.cycles, request.collect_stats)
                if lane_compatible(request, spec) else None
            )
            decisions[ident] = key
        if key is not None:
            groups.setdefault(key, []).append(index)
    for indices in groups.values():
        for start in range(0, len(indices), lane_width):
            lane_indices = indices[start:start + lane_width]
            if len(lane_indices) < 2:
                continue  # a lone lane runs scalar below
            queue_seconds = max(0.0, time.monotonic() - submitted)
            lane_requests = [requests[i] for i in lane_indices]
            begin = time.perf_counter()
            begin_mono = time.monotonic()
            lane_count = len(lane_indices)

            def lane_span(group_seconds: float) -> Span:
                return Span("lane_group", begin_mono, group_seconds, None,
                            worker, None, f"lanes={lane_count}")

            try:
                lane_outcomes = lane_execute(lane_requests)
            except Exception as exc:  # noqa: BLE001 - mirrored per item
                group_seconds = time.monotonic() - begin_mono
                for i in lane_indices:
                    outcomes[i] = RunOutcome(
                        result=None, error=exc, seconds=0.0,
                        worker=worker, queue_seconds=queue_seconds,
                        spans=(lane_span(group_seconds),
                               _error_span(begin_mono, group_seconds,
                                           worker, exc)._replace(parent=0)),
                    )
                continue
            group_seconds = time.monotonic() - begin_mono
            seconds = (time.perf_counter() - begin) / lane_count
            # each lane's run span is a synthetic 1/N slice of the group:
            # the whole group executed in one schedule walk, so per-lane
            # time is attributed, not measured
            share = group_seconds / lane_count
            for slot, (i, outcome) in enumerate(
                    zip(lane_indices, lane_outcomes)):
                slice_start = begin_mono + slot * share
                if outcome.error is None:
                    run_span = Span("worker_run", slice_start, share, 0,
                                    worker, None, "lane-slice")
                else:
                    run_span = _error_span(
                        slice_start, share, worker, outcome.error,
                    )._replace(parent=0)
                outcomes[i] = RunOutcome(
                    result=outcome.result,
                    error=outcome.error,
                    seconds=seconds if outcome.error is None else 0.0,
                    worker=worker,
                    queue_seconds=queue_seconds,
                    spans=(lane_span(group_seconds), run_span),
                )
    for index, request in enumerate(requests):
        if outcomes[index] is None:
            outcomes[index] = execute_outcome(
                execute, request, submitted, worker
            )
    return outcomes  # type: ignore[return-value]


class LaneExecutor(ExecutorStrategy):
    """Lane-vectorized inline execution (see :mod:`repro.lowering.lanes`).

    Like the serial strategy, execution happens on the caller's thread at
    submission; the win is vectorization, not concurrency — every group
    of up to ``lane_width`` compatible requests costs one schedule walk
    instead of N.  The whole batch travels as a single chunk by default
    so grouping sees every request at once.
    """

    name = "lane"

    def __init__(
        self,
        lane_execute: LaneExecuteFn,
        execute: ExecuteFn,
        spec: Specification,
        lane_width: int | None = None,
    ) -> None:
        super().__init__(workers=1)
        self._lane_execute = lane_execute
        self._execute = execute
        self._spec = spec
        self.lane_width = lane_width or DEFAULT_LANE_WIDTH

    def default_chunk_size(self, count: int) -> int:
        # one chunk for the whole batch: grouping works across all of it
        return max(1, count)

    def submit_chunk(self, requests):
        future: Future = Future()
        future.set_result(self.execute_many(requests))
        return future

    def execute_many(self, requests, chunk_size=None):
        requests = list(requests)
        if chunk_size is None or chunk_size >= len(requests):
            return execute_lane_chunk(
                self._lane_execute, self._execute, self._spec, requests,
                time.monotonic(), "lane-0", self.lane_width,
            )
        # an explicit chunk size bounds how many requests one grouping
        # pass sees, exactly as on the future path
        outcomes: "list[RunOutcome]" = []
        for start in range(0, len(requests), chunk_size):
            outcomes.extend(execute_lane_chunk(
                self._lane_execute, self._execute, self._spec,
                requests[start:start + chunk_size],
                time.monotonic(), "lane-0", self.lane_width,
            ))
        return outcomes

    def close(self, wait: bool = True) -> None:
        pass


# ---------------------------------------------------------------------------
# The process strategy: worker bootstrap and chunk execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerContext:
    """Everything a worker process needs to bind a prepared simulation.

    Built once by the parent pool and pickled once into the pool
    initializer.  For the built-in backends the context carries the
    parent's already-lowered :class:`CycleProgram`, so the worker never
    lowers; with ``cache_dir`` set, the worker's compiled backend also
    loads the generated source from the persistent artifact cache the
    parent seeded, so it never generates code either.  A third-party
    backend rides along as a pickled instance (``backend``) and prepares
    from scratch.
    """

    spec: Specification
    program: CycleProgram | None
    backend_name: str | None
    backend: Backend | None
    codegen_options: CodegenOptions | None
    passes: SpecOptPasses | None
    cache_dir: str | None

    def bind(self) -> PreparedSimulation:
        """Build this worker's prepared simulation (runs in the worker)."""
        if self.backend is not None:
            return self.backend.prepare(self.spec)
        if self.backend_name == "interpreter":
            if self.program is not None:
                from repro.interp.interpreter import InterpreterSimulation

                return InterpreterSimulation(
                    self.spec, self.program, prepare_seconds=0.0
                )
            from repro.interp.interpreter import InterpreterBackend

            return InterpreterBackend(self.passes).prepare(self.spec)
        # threaded / compiled: a private in-process cache seeded with the
        # shipped program makes the worker's prepare a guaranteed hit
        cache = PrepareCache()
        if self.program is not None:
            key = cache.key_for("lowered", self.spec, self.passes)
            cache.get_or_create(key, lambda: self.program)
        disk = DiskCache(self.cache_dir) if self.cache_dir else None
        if self.backend_name == "threaded":
            from repro.compiler.threaded import ThreadedBackend

            backend: Backend = ThreadedBackend(
                specopt=self.passes, cache=cache, disk=disk
            )
        else:
            from repro.compiler.compiled import CompiledBackend

            backend = CompiledBackend(
                self.codegen_options, specopt=self.passes,
                cache=cache, disk=disk,
            )
        return backend.prepare(self.spec)


def worker_context_for(
    spec: Specification,
    backend: Backend,
    warm: PreparedSimulation,
    disk: DiskCache | None,
) -> WorkerContext:
    """Describe *backend* so a worker process can rebuild it.

    The built-in backends are rebuilt by name (shipping the lowered
    program, the pass configuration and the codegen options — never
    unpicklable run state); any other backend must itself survive a
    pickle round-trip, checked eagerly here so misconfiguration surfaces
    at pool construction, not in a dying worker.
    """
    from repro.compiler.compiled import CompiledBackend
    from repro.compiler.threaded import ThreadedBackend
    from repro.interp.interpreter import InterpreterBackend

    program = getattr(warm, "program", None)
    cache_dir = str(disk.root) if disk is not None else None
    if type(backend) in (InterpreterBackend, ThreadedBackend, CompiledBackend):
        return WorkerContext(
            spec=spec,
            program=program,
            backend_name=backend.name,
            backend=None,
            codegen_options=getattr(backend, "options", None),
            passes=getattr(backend, "passes", None),
            cache_dir=cache_dir,
        )
    try:
        pickle.dumps(backend)
    except Exception as exc:
        raise ServingError(
            f"the process executor needs a picklable backend; "
            f"{type(backend).__name__} failed to pickle ({exc}); use a "
            "built-in backend name or make the backend picklable"
        ) from exc
    return WorkerContext(
        spec=spec, program=program, backend_name=None, backend=backend,
        codegen_options=None, passes=None, cache_dir=cache_dir,
    )


def seed_disk_cache(
    disk: DiskCache,
    spec: Specification,
    warm: PreparedSimulation,
    passes: SpecOptPasses | None,
    options: CodegenOptions | None,
) -> None:
    """Persist the parent's prepare artifacts for worker cold starts."""
    fingerprint = spec_fingerprint(spec)
    program = getattr(warm, "program", None)
    if program is not None and passes is not None:
        disk.store_program(fingerprint, artifact_key(passes), program)
    source = getattr(warm, "source", None)
    if source is not None and passes is not None and options is not None:
        # mirror CompiledBackend._source_artifact: the source depends on
        # the pass configuration as well as the codegen options
        disk.store_source(fingerprint, artifact_key(passes, options), source)


#: This worker's bound simulation (set by the pool initializer).
_WORKER_PREPARED: PreparedSimulation | None = None


def _initialize_worker(context: WorkerContext) -> None:
    global _WORKER_PREPARED
    _WORKER_PREPARED = context.bind()


def _execute_in_worker(request: RunRequest):
    prepared = _WORKER_PREPARED
    if prepared is None:  # pragma: no cover - initializer always ran
        raise ServingError("worker process was never initialized")
    start = time.perf_counter()
    request.check_supported(prepared)
    result = prepared.run(
        cycles=request.cycles,
        io=request.make_io(),
        trace=request.trace,
        collect_stats=request.collect_stats,
        override=request.override,
    )
    return result, time.perf_counter() - start


def _lane_execute_in_worker(requests: list):
    prepared = _WORKER_PREPARED
    if prepared is None:  # pragma: no cover - initializer always ran
        raise ServingError("worker process was never initialized")
    return prepared_lane_outcomes(prepared, requests)


def _run_chunk_in_worker(
    requests: list, submitted: float, lane_width: int | None = None
):
    worker = f"pid-{os.getpid()}"
    if lane_width is not None and lane_width > 1 and len(requests) > 1:
        # lanes within the worker, chunks across workers
        prepared = _WORKER_PREPARED
        if prepared is None:  # pragma: no cover - initializer always ran
            raise ServingError("worker process was never initialized")
        return execute_lane_chunk(
            _lane_execute_in_worker, _execute_in_worker, prepared.spec,
            list(requests), submitted, worker, lane_width,
        )
    return [
        execute_outcome(_execute_in_worker, request, submitted, worker)
        for request in requests
    ]


def _lost_outcome(error: Exception) -> RunOutcome:
    """A per-item outcome for a request whose worker never answered.

    Carries a terminal ``error`` span (zero-length, stamped parent-side at
    the moment the loss was established) so the request does not vanish
    from its trace.
    """
    return RunOutcome(
        result=None, error=error,
        seconds=0.0, worker="lost", queue_seconds=0.0,
        spans=(_error_span(time.monotonic(), 0.0, "lost", error),),
    )


def _crash_outcome(message: str) -> RunOutcome:
    """A per-item outcome for a request lost to repeated worker deaths."""
    return _lost_outcome(WorkerCrashError(message))


class ProcessExecutor(ExecutorStrategy):
    """True multi-core serving over a pool of worker processes.

    The :class:`WorkerContext` is pickled exactly once, into the pool
    initializer; each worker binds its backend to the shipped lowered
    program at startup.  Requests travel in chunks to amortise IPC — the
    default chunk size targets four chunks per worker, balancing transfer
    overhead against scheduling granularity for heterogeneous batches.

    **Crash recovery.**  A dying worker breaks the whole
    ``ProcessPoolExecutor`` (every pending future gets
    ``BrokenProcessPool``).  Rather than failing the batch, every chunk
    is fronted by a *mirror* future: on a broken pool the executor
    respawns its process pool (once per crash, guarded by a generation
    counter so concurrent chunk callbacks do not race), waits a capped
    exponential backoff, and retries the lost requests.  A multi-item
    chunk is retried as singletons so one poisoned request cannot take
    innocents down a second time; a singleton that kills a worker again —
    :data:`MAX_CRASHES_PER_REQUEST` crashes on its account — is
    quarantined as a :class:`~repro.errors.WorkerCrashError` item.
    Recovery runs on its own daemon thread (never on the pool's executor
    management thread, which must stay free to drive the respawned pool).

    **Wall-clock backstop.**  The cooperative deadline check runs inside
    the worker and cannot interrupt a run that is stuck in a single
    blocking call; chunks with deadlines therefore arm a timer at
    :data:`WALL_CLOCK_DEADLINE_FACTOR` × the chunk's largest deadline that
    resolves the mirror future with per-item
    :class:`~repro.errors.DeadlineExceededError` outcomes, so a
    hard-hung worker bounds the caller's wait at twice the deadline.
    """

    name = "process"

    def __init__(
        self,
        context: WorkerContext,
        workers: int,
        mp_context=None,
        lane_width: int | None = None,
    ) -> None:
        super().__init__(workers=workers)
        #: lanes within each worker (``None``/1 = scalar chunks, the default)
        self.lane_width = lane_width
        if isinstance(mp_context, str):
            import multiprocessing

            mp_context = multiprocessing.get_context(mp_context)
        self._context = context
        self._mp_context = mp_context
        self._pool_lock = threading.Lock()
        # serialises post-crash retries: a retried request executes alone,
        # so a repeat crash is attributable to it and innocents that
        # merely shared the broken pool are never charged
        self._retry_lock = threading.Lock()
        self._generation = 0
        self._closed = False
        self._counter_lock = threading.Lock()
        self._crashes = 0
        self._retries = 0
        self._quarantined = 0
        self._processes = self._spawn()

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._mp_context,
            initializer=_initialize_worker,
            initargs=(self._context,),
        )

    def default_chunk_size(self, count: int) -> int:
        # about two chunks per worker: four per worker doubled the IPC
        # dispatches on small batches for no load-balance gain, which is
        # what made small-cycle process batches lose to serial
        return max(1, math.ceil(count / (self.workers * 2)))

    def counters(self) -> dict[str, int]:
        with self._counter_lock:
            return {
                "worker_crashes": self._crashes,
                "worker_retries": self._retries,
                "quarantined": self._quarantined,
            }

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._counter_lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def submit_chunk(self, requests):
        requests = list(requests)
        mirror: Future = Future()
        self._dispatch(requests, mirror, charged_crashes=0)
        self._arm_wall_clock(requests, mirror)
        return mirror

    # -- dispatch and crash detection ---------------------------------------

    def _dispatch(self, requests, mirror: Future, charged_crashes: int) -> None:
        """Submit one chunk against the current pool generation.

        A chunk that fails to pickle (e.g. a lambda override) resolves
        the mirror with the pickling error; _spread_chunk routes it to
        the chunk's items and the rest of the batch is unaffected.
        """
        with self._pool_lock:
            processes = self._processes
            generation = self._generation
        try:
            chunk_future = processes.submit(
                _run_chunk_in_worker, list(requests), time.monotonic(),
                self.lane_width,
            )
        except BrokenProcessPool:
            # the pool was already broken before this chunk entered it:
            # someone else's crash, so recover without charging these
            # requests
            self._recover_async(requests, mirror, charged_crashes,
                                generation, charge=False)
            return
        except BaseException as exc:  # noqa: BLE001 - e.g. shutdown race
            _try_resolve(mirror, error=exc)
            return
        chunk_future.add_done_callback(
            partial(self._chunk_done, requests, mirror, charged_crashes,
                    generation)
        )

    def _chunk_done(
        self, requests, mirror: Future, charged_crashes: int,
        generation: int, chunk_future: Future,
    ) -> None:
        try:
            outcomes = chunk_future.result()
        except BrokenProcessPool:
            # a worker died while this chunk was (or may have been) running
            self._recover_async(requests, mirror, charged_crashes,
                                generation, charge=True)
            return
        except BaseException as exc:  # noqa: BLE001 - mirrored to the chunk
            _try_resolve(mirror, error=exc)
            return
        _try_resolve(mirror, outcomes=outcomes)

    # -- recovery ------------------------------------------------------------

    def _recover_async(
        self, requests, mirror: Future, charged_crashes: int,
        generation: int, charge: bool,
    ) -> None:
        """Hand the lost chunk to a recovery thread.

        Never recover on the calling thread: a chunk future's done
        callback runs on the pool's executor management thread, which
        must stay free to drive the respawned pool.
        """
        thread = threading.Thread(
            target=self._recover,
            args=(requests, mirror, charged_crashes, generation, charge),
            name="repro-pool-recovery",
            daemon=True,
        )
        thread.start()

    def _recover(
        self, requests, mirror: Future, charged_crashes: int,
        generation: int, charge: bool,
    ) -> None:
        if not self._respawn(generation):
            # executor closed mid-recovery: report the loss, do not retry
            _try_resolve(mirror, outcomes=[
                _crash_outcome(
                    "worker process died and the executor was closed "
                    "before the request could be retried"
                )
                for _ in requests
            ])
            return
        if charge:
            charged_crashes += 1
        time.sleep(min(
            RETRY_BACKOFF_CAP_SECONDS,
            RETRY_BACKOFF_SECONDS * (2 ** charged_crashes),
        ))
        # retry one request at a time (even for a multi-item chunk):
        # isolation turns "some request in this chunk kills workers" into
        # "exactly this request kills workers", so quarantine lands on
        # the poisoned request and the innocents complete normally
        outcomes: list[RunOutcome] = []
        for request in requests:
            outcomes.extend(self._retry_alone(request, charged_crashes))
        _try_resolve(mirror, outcomes=outcomes)

    def _retry_alone(
        self, request: RunRequest, charged_crashes: int
    ) -> "list[RunOutcome]":
        """Retry one crashed request under the serialised retry lock.

        Holding the lock across the blocking wait means retried requests
        execute one at a time; a pool breakage during the wait is
        therefore *this* request's doing and is charged to it, while a
        pool found already-broken at submit (someone else crashed it
        between retries) costs nothing and is simply re-dispatched.
        """
        while True:
            if charged_crashes >= MAX_CRASHES_PER_REQUEST:
                self._count("_quarantined")
                return [_crash_outcome(
                    f"request quarantined after killing {charged_crashes} "
                    "worker processes (poisoned-request detection)"
                )]
            crashed_alone = False
            with self._retry_lock:
                with self._pool_lock:
                    closed = self._closed
                    processes = self._processes
                    generation = self._generation
                if closed:
                    return [_crash_outcome(
                        "worker process died and the executor was closed "
                        "before the request could be retried"
                    )]
                try:
                    chunk_future = processes.submit(
                        _run_chunk_in_worker, [request], time.monotonic()
                    )
                except BrokenProcessPool:
                    # broken before we ran: not ours, respawn and re-enter
                    self._respawn(generation)
                    continue
                except Exception as exc:  # noqa: BLE001 - e.g. shutdown race
                    return [_lost_outcome(exc)]
                self._count("_retries")
                wait = None
                if request.timeout_seconds is not None:
                    wait = (
                        request.timeout_seconds * WALL_CLOCK_DEADLINE_FACTOR
                    )
                try:
                    return chunk_future.result(timeout=wait)
                except BrokenProcessPool:
                    crashed_alone = True
                except FuturesTimeoutError:
                    chunk_future.cancel()
                    return [_lost_outcome(DeadlineExceededError(
                        "retried request did not answer within "
                        f"{WALL_CLOCK_DEADLINE_FACTOR:g}x its deadline "
                        "(wall-clock backstop)"
                    ))]
                except Exception as exc:  # noqa: BLE001 - mirrored per item
                    return [_lost_outcome(exc)]
            if crashed_alone:
                charged_crashes += 1
                self._respawn(generation)
                time.sleep(min(
                    RETRY_BACKOFF_CAP_SECONDS,
                    RETRY_BACKOFF_SECONDS * (2 ** charged_crashes),
                ))

    def _respawn(self, generation: int) -> bool:
        """Replace the broken pool; False when the executor is closed.

        Counts one crash per pool actually replaced.  The generation
        guard makes respawn idempotent under a crash storm: a dying
        worker breaks every in-flight chunk at once, each of which lands
        here, but only the first replaces the pool — the rest see a newer
        generation and simply retry against the fresh pool.
        """
        with self._pool_lock:
            if self._closed:
                return False
            if self._generation == generation:
                dead = self._processes
                self._processes = self._spawn()
                self._generation += 1
                self._count("_crashes")
                dead.shutdown(wait=False)
        return True

    # -- wall-clock backstop -------------------------------------------------

    def _arm_wall_clock(self, requests, mirror: Future) -> None:
        timeouts = [
            request.timeout_seconds
            for request in requests
            if request.timeout_seconds is not None
        ]
        if not timeouts:
            return

        def expire() -> None:
            _try_resolve(mirror, outcomes=[
                _lost_outcome(DeadlineExceededError(
                    "worker did not answer within "
                    f"{WALL_CLOCK_DEADLINE_FACTOR:g}x the deadline "
                    "(wall-clock backstop; the worker may be hung)"
                ))
                for _ in requests
            ])

        timer = threading.Timer(
            max(timeouts) * WALL_CLOCK_DEADLINE_FACTOR, expire
        )
        timer.daemon = True
        timer.start()
        mirror.add_done_callback(lambda _future: timer.cancel())

    def close(self, wait: bool = True) -> None:
        with self._pool_lock:
            self._closed = True
            processes = self._processes
        processes.shutdown(wait=wait)
