"""Execution strategies for the serving pool: serial, thread, process.

:class:`~repro.serving.pool.SimulationPool` used to be welded to one
``ThreadPoolExecutor``; this module extracts the scheduling decision into
an :class:`ExecutorStrategy` with three implementations:

* **serial** — every run executes inline on the caller's thread, in
  submission order.  The baseline and the debugging strategy: no
  concurrency, no queueing, deterministic scheduling.
* **thread** — the classic pool: worker threads interleave on the GIL, so
  the win is prepare amortisation (one cached artifact, many runs), not
  CPU parallelism.  Right for I/O-bound hooks and modest batches.
* **process** — true multi-core serving.  Worker processes are started
  once per pool; each receives the parent's :class:`WorkerContext` — the
  specification plus the already-lowered, picklable
  :class:`~repro.lowering.program.CycleProgram` — through the pool
  initializer (pickled **once** at startup, never per run) and binds its
  own backend to it.  The parent also seeds the persistent artifact cache
  (:class:`~repro.compiler.cache.DiskCache`) with the lowered IR and the
  compiled backend's generated source, so a worker's cold start skips
  lowering and code generation entirely.  Requests travel to workers in
  chunks (``chunk_size``) to amortise IPC; results come back as picklable
  :class:`RunOutcome` values with per-item error capture.

Every strategy resolves one submitted request to one future of a
:class:`RunOutcome` — result or error, worker label, busy seconds and
queue wait — so the pool, the batch aggregates and the asyncio front-end
are strategy-agnostic.
"""

from __future__ import annotations

import math
import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Sequence

from repro.compiler.cache import (
    DiskCache,
    PrepareCache,
    artifact_key,
    spec_fingerprint,
)
from repro.compiler.optimizer import CodegenOptions
from repro.compiler.specopt import SpecOptPasses
from repro.core.backend import Backend, PreparedSimulation
from repro.core.results import SimulationResult
from repro.errors import ServingError
from repro.lowering.program import CycleProgram
from repro.rtl.spec import Specification
from repro.serving.batch import RunRequest

#: Registered execution strategies, in cost order.
EXECUTOR_NAMES = ("serial", "thread", "process")

#: How a strategy runs one request: returns (result, busy seconds).
ExecuteFn = Callable[[RunRequest], "tuple[SimulationResult, float]"]


@dataclass
class RunOutcome:
    """What one scheduled run produced, wherever it executed.

    Exactly one of ``result``/``error`` is set.  ``worker`` labels the
    thread or process that ran the request; ``queue_seconds`` is the time
    the request (or its chunk) waited between submission and execution
    start, measured on the system-wide monotonic clock so it is meaningful
    across process boundaries.
    """

    result: SimulationResult | None
    error: Exception | None
    seconds: float
    worker: str
    queue_seconds: float


def execute_outcome(
    execute: ExecuteFn, request: RunRequest, submitted: float, worker: str
) -> RunOutcome:
    """Run one request, capturing any ``Exception`` into the outcome.

    ``BaseException`` (KeyboardInterrupt and friends) propagates — the
    batch machinery re-raises it rather than recording it per item.
    """
    queue_seconds = max(0.0, time.monotonic() - submitted)
    try:
        result, seconds = execute(request)
    except Exception as exc:  # noqa: BLE001 - rerouted per item
        return RunOutcome(result=None, error=exc, seconds=0.0,
                          worker=worker, queue_seconds=queue_seconds)
    return RunOutcome(result=result, error=None, seconds=seconds,
                      worker=worker, queue_seconds=queue_seconds)


def _spread_chunk(
    slots: "list[Future[RunOutcome]]", chunk_future: Future
) -> None:
    """Resolve per-item futures from one finished chunk future."""
    try:
        outcomes = chunk_future.result()
    except BaseException as exc:  # noqa: BLE001 - mirrored into every item
        for slot in slots:
            slot.set_exception(exc)
        return
    for slot, outcome in zip(slots, outcomes):
        slot.set_result(outcome)


class ExecutorStrategy(ABC):
    """One way of scheduling run requests onto compute."""

    #: strategy name as accepted by ``SimulationPool(executor=...)``
    name: str = "strategy"

    def __init__(self, workers: int) -> None:
        self.workers = workers

    @abstractmethod
    def submit_chunk(
        self, requests: Sequence[RunRequest]
    ) -> "Future[list[RunOutcome]]":
        """Schedule one chunk; the future resolves to per-item outcomes."""

    def default_chunk_size(self, count: int) -> int:
        """Requests per chunk when the caller did not choose one."""
        return 1

    def submit_many(
        self, requests: Sequence[RunRequest], chunk_size: int | None = None
    ) -> "list[Future[RunOutcome]]":
        """Schedule every request, returning one outcome future per item.

        Requests are grouped into chunks of *chunk_size* (default: the
        strategy's own heuristic) and each chunk travels as one scheduling
        unit; per-item futures are resolved when their chunk completes.
        """
        requests = list(requests)
        if not requests:
            return []
        if chunk_size is None:
            chunk_size = self.default_chunk_size(len(requests))
        item_futures: list[Future] = [Future() for _ in requests]
        for start in range(0, len(requests), chunk_size):
            chunk = requests[start:start + chunk_size]
            slots = item_futures[start:start + len(chunk)]
            self.submit_chunk(chunk).add_done_callback(
                partial(_spread_chunk, slots)
            )
        return item_futures

    @abstractmethod
    def close(self, wait: bool = True) -> None:
        """Release the strategy's workers."""


class SerialExecutor(ExecutorStrategy):
    """Inline execution on the caller's thread, in submission order."""

    name = "serial"

    def __init__(self, execute: ExecuteFn) -> None:
        super().__init__(workers=1)
        self._execute = execute

    def submit_chunk(self, requests):
        submitted = time.monotonic()
        future: Future = Future()
        future.set_result([
            execute_outcome(self._execute, request, submitted, "serial-0")
            for request in requests
        ])
        return future

    def close(self, wait: bool = True) -> None:
        pass


class ThreadExecutor(ExecutorStrategy):
    """The classic GIL-bound worker-thread pool (prepare amortisation)."""

    name = "thread"

    def __init__(self, execute: ExecuteFn, workers: int,
                 thread_name_prefix: str = "repro") -> None:
        super().__init__(workers=workers)
        self._execute = execute
        self._threads = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=thread_name_prefix
        )

    def submit_chunk(self, requests):
        return self._threads.submit(
            self._run_chunk, list(requests), time.monotonic()
        )

    def _run_chunk(self, requests, submitted):
        worker = threading.current_thread().name
        return [
            execute_outcome(self._execute, request, submitted, worker)
            for request in requests
        ]

    def close(self, wait: bool = True) -> None:
        self._threads.shutdown(wait=wait)


# ---------------------------------------------------------------------------
# The process strategy: worker bootstrap and chunk execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerContext:
    """Everything a worker process needs to bind a prepared simulation.

    Built once by the parent pool and pickled once into the pool
    initializer.  For the built-in backends the context carries the
    parent's already-lowered :class:`CycleProgram`, so the worker never
    lowers; with ``cache_dir`` set, the worker's compiled backend also
    loads the generated source from the persistent artifact cache the
    parent seeded, so it never generates code either.  A third-party
    backend rides along as a pickled instance (``backend``) and prepares
    from scratch.
    """

    spec: Specification
    program: CycleProgram | None
    backend_name: str | None
    backend: Backend | None
    codegen_options: CodegenOptions | None
    passes: SpecOptPasses | None
    cache_dir: str | None

    def bind(self) -> PreparedSimulation:
        """Build this worker's prepared simulation (runs in the worker)."""
        if self.backend is not None:
            return self.backend.prepare(self.spec)
        if self.backend_name == "interpreter":
            if self.program is not None:
                from repro.interp.interpreter import InterpreterSimulation

                return InterpreterSimulation(
                    self.spec, self.program, prepare_seconds=0.0
                )
            from repro.interp.interpreter import InterpreterBackend

            return InterpreterBackend(self.passes).prepare(self.spec)
        # threaded / compiled: a private in-process cache seeded with the
        # shipped program makes the worker's prepare a guaranteed hit
        cache = PrepareCache()
        if self.program is not None:
            key = cache.key_for("lowered", self.spec, self.passes)
            cache.get_or_create(key, lambda: self.program)
        disk = DiskCache(self.cache_dir) if self.cache_dir else None
        if self.backend_name == "threaded":
            from repro.compiler.threaded import ThreadedBackend

            backend: Backend = ThreadedBackend(
                specopt=self.passes, cache=cache, disk=disk
            )
        else:
            from repro.compiler.compiled import CompiledBackend

            backend = CompiledBackend(
                self.codegen_options, specopt=self.passes,
                cache=cache, disk=disk,
            )
        return backend.prepare(self.spec)


def worker_context_for(
    spec: Specification,
    backend: Backend,
    warm: PreparedSimulation,
    disk: DiskCache | None,
) -> WorkerContext:
    """Describe *backend* so a worker process can rebuild it.

    The built-in backends are rebuilt by name (shipping the lowered
    program, the pass configuration and the codegen options — never
    unpicklable run state); any other backend must itself survive a
    pickle round-trip, checked eagerly here so misconfiguration surfaces
    at pool construction, not in a dying worker.
    """
    from repro.compiler.compiled import CompiledBackend
    from repro.compiler.threaded import ThreadedBackend
    from repro.interp.interpreter import InterpreterBackend

    program = getattr(warm, "program", None)
    cache_dir = str(disk.root) if disk is not None else None
    if type(backend) in (InterpreterBackend, ThreadedBackend, CompiledBackend):
        return WorkerContext(
            spec=spec,
            program=program,
            backend_name=backend.name,
            backend=None,
            codegen_options=getattr(backend, "options", None),
            passes=getattr(backend, "passes", None),
            cache_dir=cache_dir,
        )
    try:
        pickle.dumps(backend)
    except Exception as exc:
        raise ServingError(
            f"the process executor needs a picklable backend; "
            f"{type(backend).__name__} failed to pickle ({exc}); use a "
            "built-in backend name or make the backend picklable"
        ) from exc
    return WorkerContext(
        spec=spec, program=program, backend_name=None, backend=backend,
        codegen_options=None, passes=None, cache_dir=cache_dir,
    )


def seed_disk_cache(
    disk: DiskCache,
    spec: Specification,
    warm: PreparedSimulation,
    passes: SpecOptPasses | None,
    options: CodegenOptions | None,
) -> None:
    """Persist the parent's prepare artifacts for worker cold starts."""
    fingerprint = spec_fingerprint(spec)
    program = getattr(warm, "program", None)
    if program is not None and passes is not None:
        disk.store_program(fingerprint, artifact_key(passes), program)
    source = getattr(warm, "source", None)
    if source is not None and passes is not None and options is not None:
        # mirror CompiledBackend._source_artifact: the source depends on
        # the pass configuration as well as the codegen options
        disk.store_source(fingerprint, artifact_key(passes, options), source)


#: This worker's bound simulation (set by the pool initializer).
_WORKER_PREPARED: PreparedSimulation | None = None


def _initialize_worker(context: WorkerContext) -> None:
    global _WORKER_PREPARED
    _WORKER_PREPARED = context.bind()


def _execute_in_worker(request: RunRequest):
    prepared = _WORKER_PREPARED
    if prepared is None:  # pragma: no cover - initializer always ran
        raise ServingError("worker process was never initialized")
    start = time.perf_counter()
    request.check_supported(prepared)
    result = prepared.run(
        cycles=request.cycles,
        io=request.make_io(),
        trace=request.trace,
        collect_stats=request.collect_stats,
        override=request.override,
    )
    return result, time.perf_counter() - start


def _run_chunk_in_worker(requests: list, submitted: float):
    worker = f"pid-{os.getpid()}"
    return [
        execute_outcome(_execute_in_worker, request, submitted, worker)
        for request in requests
    ]


class ProcessExecutor(ExecutorStrategy):
    """True multi-core serving over a pool of worker processes.

    The :class:`WorkerContext` is pickled exactly once, into the pool
    initializer; each worker binds its backend to the shipped lowered
    program at startup.  Requests travel in chunks to amortise IPC — the
    default chunk size targets four chunks per worker, balancing transfer
    overhead against scheduling granularity for heterogeneous batches.
    """

    name = "process"

    def __init__(
        self,
        context: WorkerContext,
        workers: int,
        mp_context=None,
    ) -> None:
        super().__init__(workers=workers)
        if isinstance(mp_context, str):
            import multiprocessing

            mp_context = multiprocessing.get_context(mp_context)
        self._processes = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_initialize_worker,
            initargs=(context,),
        )

    def default_chunk_size(self, count: int) -> int:
        return max(1, math.ceil(count / (self.workers * 4)))

    def submit_chunk(self, requests):
        # a chunk that fails to pickle (e.g. a lambda override) resolves
        # this future with the pickling error; _spread_chunk routes it to
        # the chunk's items and the rest of the batch is unaffected
        return self._processes.submit(
            _run_chunk_in_worker, list(requests), time.monotonic()
        )

    def close(self, wait: bool = True) -> None:
        self._processes.shutdown(wait=wait)
