"""JSON wire protocol for the long-lived simulation server.

The HTTP front-end (:mod:`repro.serving.server`) speaks plain JSON over
plain HTTP — no third-party dependency, any ``curl`` is a client.  This
module is the translation layer between that wire format and the serving
layer's native objects, in both directions:

* **requests**: :func:`run_request_from_json` builds a
  :class:`~repro.serving.batch.RunRequest` from a JSON object (cycles,
  inputs, tracing, stats, tag, and a constant-override map for fault
  injection over the wire); :func:`resolve_spec` turns the ``machine`` /
  ``spec`` request fields into a parsed
  :class:`~repro.rtl.spec.Specification` — ``spec`` accepts either
  source text in the paper's language or an interchange-format JSON
  object (``docs/spec-format.md``; rejected documents answer 400
  ``invalid_spec``); :func:`parse_batch_request` validates a whole
  ``POST /v1/batch`` body.
* **responses**: :func:`result_to_json` /
  :func:`batch_result_to_json` flatten a
  :class:`~repro.core.results.SimulationResult` /
  :class:`~repro.serving.batch.BatchResult` into JSON-safe dicts, and
  :func:`result_from_json` rebuilds a comparable ``SimulationResult`` on
  the client side — which is how the end-to-end tests assert HTTP results
  bit-identical to in-process pool runs.

Validation is strict and structured: any malformed body raises
:class:`ProtocolError` carrying an HTTP status code and a stable machine-
readable ``kind`` (``bad_request``, ``unknown_machine``,
``unsupported_capability``, ...), which the server serialises as
``{"error": {"type": ..., "message": ...}}`` — a client never has to
parse prose.  Unknown request fields are rejected rather than ignored, so
a typo (``"cylces"``) fails loudly instead of silently simulating the
wrong thing.

The documented wire format lives in ``docs/api-reference.md``; a test
keeps the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.compiler.cache import spec_fingerprint
from repro.core.iosystem import OutputEvent
from repro.core.results import SimulationResult
from repro.core.simulator import BACKEND_NAMES
from repro.errors import (
    AsimError,
    DeadlineExceededError,
    SpecFormatError,
    SpecificationError,
    WorkerCrashError,
)
from repro.machines.library import get_machine, machine_names
from repro.rtl.interchange import spec_from_json
from repro.rtl.parser import parse_spec
from repro.rtl.spec import Specification
from repro.serving.batch import BatchResult, RunRequest
from repro.serving.executor import EXECUTOR_NAMES

#: Wire protocol version, echoed in every response envelope.  Bump on any
#: incompatible change to the request or response shapes.
PROTOCOL_VERSION = 1

#: Response header the fleet router stamps on every forwarded response:
#: the id of the node that actually answered.
NODE_HEADER = "X-Repro-Node"

#: Response header present only when the router failed over: an
#: attribution trail of the node(s) that failed first and why.
RETRY_HEADER = "X-Repro-Retry"

#: Trace-correlation header, both directions: a client may send one to
#: choose the request's trace id, and every response carries the id the
#: trace was recorded under (``GET /v1/trace/<id>`` returns it).  The
#: fleet router generates the id when the client did not, and forwards it
#: so one id follows the request end-to-end: router -> node -> pool ->
#: worker.
TRACE_HEADER = "X-Repro-Trace"


class ProtocolError(AsimError):
    """A request the wire protocol rejects, with its HTTP status.

    ``kind`` is the stable machine-readable error type serialised into the
    response body; ``status`` the HTTP status code the server answers
    with.  ``retry_after`` (seconds) adds a ``Retry-After`` header, so an
    overloaded-server rejection tells the client when to come back.
    Everything the protocol layer raises is a 4xx — a 5xx means the
    *server* broke, and those are not ``ProtocolError`` (the one
    exception: ``503 not_ready``, which is the readiness probe's answer,
    not a breakage).
    """

    def __init__(self, message: str, status: int = 400,
                 kind: str = "bad_request",
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.retry_after = retry_after


def error_kind(exc: BaseException) -> str:
    """The stable wire ``type`` for a per-item run failure.

    Resilience-layer errors get fixed kinds a client can dispatch on
    (``deadline_exceeded``, ``worker_crash``); anything else reports its
    exception class name, as the batch endpoint always has.
    """
    if isinstance(exc, DeadlineExceededError):
        return "deadline_exceeded"
    if isinstance(exc, WorkerCrashError):
        return "worker_crash"
    return type(exc).__name__


def error_to_json(kind: str, message: str) -> dict:
    """The structured error body every non-2xx response carries."""
    return {
        "protocol": PROTOCOL_VERSION,
        "error": {"type": kind, "message": message},
    }


# ---------------------------------------------------------------------------
# Request side: JSON -> serving objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConstantOverride:
    """A picklable per-cycle override pinning components to constants.

    The wire format cannot carry a Python callable, but the most common
    override — the fault-injection shape from
    :mod:`repro.analysis.faults` — pins a component to a constant value
    on every cycle.  ``{"override": {"name": value}}`` builds one of
    these; being a plain dataclass it survives the pickle trip to process
    executor workers, which a lambda would not.
    """

    values: tuple[tuple[str, int], ...]

    def __call__(self, name: str, value: int, cycle: int) -> int:
        for pinned_name, pinned_value in self.values:
            if pinned_name == name:
                return pinned_value
        return value


def _require_type(doc: Any, expected: type, what: str) -> Any:
    if not isinstance(doc, expected) or isinstance(doc, bool) != (
        expected is bool
    ):
        raise ProtocolError(
            f"{what} must be a {expected.__name__}, "
            f"got {type(doc).__name__}"
        )
    return doc


def _optional_int(doc: Mapping, key: str) -> int | None:
    value = doc.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"'{key}' must be an integer")
    return value


#: Fields a run object may carry; anything else is rejected.
RUN_FIELDS = frozenset(
    {"cycles", "inputs", "trace", "collect_stats", "override", "tag",
     "timeout_seconds"}
)


def _optional_timeout(doc: Mapping) -> float | None:
    value = doc.get("timeout_seconds")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("'timeout_seconds' must be a number of seconds")
    if value <= 0:
        raise ProtocolError(
            f"'timeout_seconds' must be positive, got {value}"
        )
    return float(value)


def run_request_from_json(doc: Any) -> RunRequest:
    """Build one :class:`RunRequest` from its wire representation."""
    _require_type(doc, dict, "run request")
    unknown = set(doc) - RUN_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown run field(s) {sorted(unknown)}; "
            f"allowed: {sorted(RUN_FIELDS)}"
        )
    cycles = _optional_int(doc, "cycles")
    inputs = doc.get("inputs", [])
    _require_type(inputs, list, "'inputs'")
    for value in inputs:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError("'inputs' must be a list of integers")
    trace = doc.get("trace", None)
    if trace is not None:
        _require_type(trace, bool, "'trace'")
    collect_stats = doc.get("collect_stats", True)
    _require_type(collect_stats, bool, "'collect_stats'")
    tag = doc.get("tag")
    if tag is not None:
        _require_type(tag, str, "'tag'")
    override_doc = doc.get("override")
    override = None
    if override_doc is not None:
        _require_type(override_doc, dict, "'override'")
        pinned: list[tuple[str, int]] = []
        for name, value in override_doc.items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(
                    "'override' must map component names to integer values"
                )
            pinned.append((str(name), value))
        if not pinned:
            raise ProtocolError("'override' must pin at least one component")
        override = ConstantOverride(values=tuple(pinned))
    return RunRequest(
        cycles=cycles,
        inputs=tuple(inputs),
        trace=trace,
        collect_stats=collect_stats,
        override=override,
        tag=tag,
        timeout_seconds=_optional_timeout(doc),
    )


def with_default_timeout(
    batch: "ParsedBatch", timeout: float | None
) -> "ParsedBatch":
    """Apply a default deadline to every run that did not choose its own
    (the ``X-Request-Timeout`` header / server-wide ``--timeout``)."""
    if timeout is None or all(
        run.timeout_seconds is not None for run in batch.runs
    ):
        return batch
    return replace(batch, runs=tuple(
        run if run.timeout_seconds is not None
        else replace(run, timeout_seconds=timeout)
        for run in batch.runs
    ))


#: Built specifications of the bundled machines, memoized per process:
#: the registry is immutable, specifications are never mutated by a run
#: (pools already share one instance across worker threads), and a warm
#: server should not rebuild the machine on every request.
_BUNDLED_SPECS: dict[str, Specification] = {}


def resolve_spec(doc: Mapping) -> tuple[Specification, str, str]:
    """Resolve the ``machine``/``spec`` fields to a parsed specification.

    Exactly one of the two must be present: ``machine`` names a bundled
    machine from the registry; ``spec`` carries the machine itself —
    either specification source text in the paper's language (a JSON
    string) or an interchange-format document (a JSON object; see
    ``docs/spec-format.md``).  Returns ``(spec, label, pool_key)``:
    *label* is the display name, *pool_key* the stable identity the
    server keys its pool registry on — the machine name for bundled
    machines (no hashing on the warm path), a content fingerprint for
    inline text or JSON (the two forms of the same machine share a pool).
    """
    machine = doc.get("machine")
    source = doc.get("spec")
    if (machine is None) == (source is None):
        raise ProtocolError(
            "exactly one of 'machine' (a bundled machine name) or 'spec' "
            "(specification source text, or an interchange JSON object) "
            "is required"
        )
    if machine is not None:
        _require_type(machine, str, "'machine'")
        spec = _BUNDLED_SPECS.get(machine)
        if spec is None:
            try:
                spec = get_machine(machine).build()
            except KeyError:
                raise ProtocolError(
                    f"unknown machine '{machine}'; "
                    f"available: {', '.join(machine_names())}",
                    status=404,
                    kind="unknown_machine",
                ) from None
            _BUNDLED_SPECS[machine] = spec
        return spec, machine, f"machine:{machine}"
    if isinstance(source, dict):
        try:
            spec = spec_from_json(source)
        except SpecFormatError as exc:
            raise ProtocolError(
                f"specification document rejected: {exc}",
                kind="invalid_spec",
            ) from exc
        return spec, "<json spec>", f"spec:{spec_fingerprint(spec)}"
    _require_type(source, str, "'spec'")
    try:
        spec = parse_spec(source, source_name="<http>")
    except SpecificationError as exc:
        raise ProtocolError(
            f"specification did not parse: {exc}",
            kind="invalid_specification",
        ) from exc
    return spec, "<inline spec>", f"spec:{spec_fingerprint(spec)}"


def shard_identity(doc: Any, default_backend: str,
                   default_executor: str) -> tuple[str, str, str]:
    """The ``(pool_key, backend, executor)`` triple fleet routing shards on.

    This is exactly the identity (minus lane width) the server keys its
    warm ``PoolRegistry`` on, so a router that shards by it keeps every
    repeat of a combination on the node whose pool is already warm.
    Validation happens here, at the front door: an unknown machine or a
    spec that does not parse is rejected with the same structured 4xx a
    node would answer, without ever reaching one.
    """
    _require_type(doc, dict, "request body")
    _spec, _label, pool_key = resolve_spec(doc)
    backend = resolve_backend(doc, default_backend)
    executor = resolve_executor(doc, default_executor)
    return pool_key, backend, executor


def resolve_backend(doc: Mapping, default: str) -> str:
    """The validated backend name a request asks for."""
    backend = doc.get("backend", default)
    _require_type(backend, str, "'backend'")
    if backend not in BACKEND_NAMES:
        raise ProtocolError(
            f"unknown backend '{backend}'; expected one of {BACKEND_NAMES}",
            kind="unknown_backend",
        )
    return backend


def resolve_executor(doc: Mapping, default: str) -> str:
    """The validated executor name a request asks for."""
    executor = doc.get("executor", default)
    _require_type(executor, str, "'executor'")
    if executor not in EXECUTOR_NAMES:
        raise ProtocolError(
            f"unknown executor '{executor}'; "
            f"expected one of {EXECUTOR_NAMES}",
            kind="unknown_executor",
        )
    return executor


def resolve_lane_width(doc: Mapping) -> int | None:
    """The validated ``lane_width`` a request asks for, if any."""
    value = doc.get("lane_width")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError("'lane_width' must be an integer")
    if value <= 0:
        raise ProtocolError(
            f"'lane_width' must be positive, got {value}"
        )
    return value


#: Fields a batch body may carry beyond the per-run objects.
BATCH_FIELDS = frozenset(
    {"machine", "spec", "backend", "executor", "lane_width", "runs"}
)


@dataclass(frozen=True)
class ParsedBatch:
    """A validated ``POST /v1/batch`` body, ready for the pool registry."""

    spec: Specification
    label: str
    #: stable spec identity (machine name or content fingerprint) the
    #: pool registry keys on
    pool_key: str
    backend: str
    executor: str
    runs: tuple[RunRequest, ...]
    #: lane group size for the lane executor (and lanes inside process
    #: workers); ``None`` leaves the pool's default in charge
    lane_width: int | None = None


def parse_batch_request(
    doc: Any, default_backend: str, default_executor: str
) -> ParsedBatch:
    """Validate a whole batch body (see ``docs/api-reference.md``)."""
    _require_type(doc, dict, "batch request")
    unknown = set(doc) - BATCH_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown batch field(s) {sorted(unknown)}; "
            f"allowed: {sorted(BATCH_FIELDS)}"
        )
    spec, label, pool_key = resolve_spec(doc)
    backend = resolve_backend(doc, default_backend)
    executor = resolve_executor(doc, default_executor)
    runs_doc = doc.get("runs")
    if runs_doc is None:
        raise ProtocolError("'runs' is required (a list of run objects)")
    _require_type(runs_doc, list, "'runs'")
    if not runs_doc:
        raise ProtocolError("'runs' must contain at least one run")
    runs = tuple(run_request_from_json(run) for run in runs_doc)
    return ParsedBatch(
        spec=spec, label=label, pool_key=pool_key, backend=backend,
        executor=executor, runs=runs,
        lane_width=resolve_lane_width(doc),
    )


def parse_run_request(
    doc: Any, default_backend: str, default_executor: str
) -> ParsedBatch:
    """Validate a ``POST /v1/run`` body: one run, fields flattened.

    The single-run endpoint accepts the run fields (``cycles`` etc.) at
    the top level next to ``machine``/``spec``/``backend``/``executor``
    — the ergonomic ``curl`` shape — and normalises to a one-run
    :class:`ParsedBatch`.
    """
    _require_type(doc, dict, "run request")
    unknown = set(doc) - (BATCH_FIELDS - {"runs"}) - RUN_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown field(s) {sorted(unknown)}; allowed: "
            f"{sorted((BATCH_FIELDS - {'runs'}) | RUN_FIELDS)}"
        )
    spec, label, pool_key = resolve_spec(doc)
    backend = resolve_backend(doc, default_backend)
    executor = resolve_executor(doc, default_executor)
    run = run_request_from_json(
        {key: doc[key] for key in RUN_FIELDS if key in doc}
    )
    return ParsedBatch(
        spec=spec, label=label, pool_key=pool_key, backend=backend,
        executor=executor, runs=(run,),
        lane_width=resolve_lane_width(doc),
    )


# ---------------------------------------------------------------------------
# Response side: serving objects -> JSON
# ---------------------------------------------------------------------------


def _stats_to_json(result: SimulationResult) -> dict:
    stats = result.stats
    return {
        "cycles": stats.cycles,
        "component_evaluations": stats.component_evaluations,
        "total_memory_accesses": stats.total_memory_accesses,
        "memories": {
            name: {
                "reads": memory.reads,
                "writes": memory.writes,
                "inputs": memory.inputs,
                "outputs": memory.outputs,
            }
            for name, memory in sorted(stats.memories.items())
        },
    }


def result_to_json(result: SimulationResult,
                   include_stats: bool = True) -> dict:
    """Flatten one simulation result into its wire representation."""
    document = {
        "backend": result.backend,
        "cycles_run": result.cycles_run,
        "final_values": dict(result.final_values),
        "memory_contents": {
            name: list(cells)
            for name, cells in result.memory_contents.items()
        },
        "outputs": [
            {"address": event.address, "value": event.value,
             "cycle": event.cycle}
            for event in result.outputs
        ],
        "prepare_seconds": result.prepare_seconds,
        "run_seconds": result.run_seconds,
    }
    if include_stats:
        document["stats"] = _stats_to_json(result)
    if result.trace.enabled and len(result.trace):
        document["trace_text"] = result.trace.render()
    return document


def result_from_json(doc: Mapping) -> SimulationResult:
    """Rebuild a comparable result from its wire representation.

    The rebuilt object carries every *observable* —
    ``final_values``, ``memory_contents`` and the output events — so
    :func:`repro.core.comparison.compare_results` can assert an
    HTTP-served run bit-identical to an in-process one.  Statistics and
    traces come back as plain wire data (``stats`` / ``trace_text``
    fields), not as rebuilt objects.
    """
    return SimulationResult(
        backend=doc["backend"],
        cycles_run=doc["cycles_run"],
        final_values=dict(doc["final_values"]),
        memory_contents={
            name: list(cells)
            for name, cells in doc["memory_contents"].items()
        },
        outputs=[
            OutputEvent(
                address=event["address"], value=event["value"],
                cycle=event.get("cycle"),
            )
            for event in doc["outputs"]
        ],
        prepare_seconds=doc.get("prepare_seconds", 0.0),
        run_seconds=doc.get("run_seconds", 0.0),
    )


def batch_result_to_json(batch: BatchResult) -> dict:
    """Flatten a whole batch result, per-item errors included."""
    items = []
    for item in batch.items:
        entry: dict = {
            "index": item.index,
            "ok": item.ok,
            "tag": item.tag,
            "worker": item.worker,
            "seconds": item.seconds,
            "queue_seconds": item.queue_seconds,
        }
        if item.ok:
            entry["result"] = result_to_json(
                item.result, include_stats=item.request.collect_stats
            )
        else:
            entry["error"] = {
                "type": error_kind(item.error),
                "message": str(item.error),
            }
        items.append(entry)
    return {
        "protocol": PROTOCOL_VERSION,
        "backend": batch.backend,
        "executor": batch.executor,
        "pool_size": batch.pool_size,
        "ok": batch.ok,
        "wall_seconds": batch.wall_seconds,
        "prepare_seconds": batch.prepare_seconds,
        "runs_per_second": batch.runs_per_second,
        "runs_by_worker": batch.runs_by_worker,
        "per_worker_runs_per_second": batch.per_worker_runs_per_second,
        "queue_seconds_mean": batch.queue_seconds_mean,
        "queue_seconds_max": batch.queue_seconds_max,
        "worker_crashes": batch.worker_crashes,
        "worker_retries": batch.worker_retries,
        "quarantined": batch.quarantined,
        "items": items,
    }
