"""Long-lived simulation server: an HTTP front-end over SimulationPool.

This is the serving layer's persistent form.  ``repro serve-batch`` pays
a pool's warm-up on every invocation; the server pays it **once per
(machine, backend, executor)** and then keeps the pool — warm workers,
seeded prepare cache, shipped lowered program — alive across any number
of client requests, so a repeat client's request costs only the run
itself.  It is standard library only (`http.server.ThreadingHTTPServer`
with the JSON wire protocol of :mod:`repro.serving.protocol`), so any
HTTP client — ``curl`` included — is a client.

Endpoints (documented with schemas and examples in
``docs/api-reference.md``, kept in sync by a test):

* ``POST /v1/batch`` — a batch of N run variants of one machine, fanned
  out on the pool; answers the full per-item/aggregate batch document.
* ``POST /v1/run`` — one run, fields flattened for ``curl`` ergonomics.
* ``GET /v1/machines`` — the bundled machine registry.
* ``GET /v1/backends`` — backend names with capability flags.
* ``GET /v1/stats`` — uptime, request counters, live pools, disk cache.
* ``GET /healthz`` — liveness probe.

Pools are created lazily on first use and kept in a registry keyed on
(machine, backend, executor); the disk artifact cache is pruned once at
startup (:meth:`~repro.compiler.cache.DiskCache.prune`) so a long-running
deployment stays inside its byte/age budget.  Shutdown is graceful:
the HTTP accept loop stops, in-flight request threads finish
(``daemon_threads`` is off), then every pool drains its in-flight chunks
(``close(wait=True)``).

The CLI front door is ``repro serve``; ``examples/http_client.py`` is a
minimal client.  Deployment guidance (executor choice, worker sizing,
cache policy) lives in ``docs/serving.md``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Mapping

from repro.compiler.cache import (
    DiskCache,
    PruneReport,
    _code_version,
    resolve_disk,
)
from repro.core.simulator import BACKEND_NAMES, make_backend
from repro.errors import AsimError
from repro.machines.library import all_machines
from repro.serving.batch import BatchResult
from repro.serving.pool import SimulationPool
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ParsedBatch,
    ProtocolError,
    batch_result_to_json,
    error_to_json,
    parse_batch_request,
    parse_run_request,
)

#: Largest request body the server will read (a batch of thousands of run
#: objects fits comfortably; anything bigger is a client bug).
MAX_BODY_BYTES = 8 * 1024 * 1024


# lazily-resolved package version (this module loads during repro's own
# initialisation); one implementation, shared with the disk cache's
# artifact stamping
_version = _code_version

#: GET routes -> handler method name on :class:`SimulationServer`.
GET_ROUTES: dict[str, str] = {
    "/healthz": "handle_healthz",
    "/v1/machines": "handle_machines",
    "/v1/backends": "handle_backends",
    "/v1/stats": "handle_stats",
}

#: POST routes -> handler method name on :class:`SimulationServer`.
POST_ROUTES: dict[str, str] = {
    "/v1/run": "handle_run",
    "/v1/batch": "handle_batch",
}


class PoolRegistry:
    """Lazily created, kept-warm pools keyed on (machine, backend, executor).

    The registry is the server's whole point: the first request for a
    combination pays the pool construction (warm prepare, worker spawn,
    disk-cache seeding), every later request reuses it.  Construction is
    guarded by a *per-key* lock: two racing first-requests for the same
    combination build one pool, not two, while requests for other
    combinations — in particular warm ones — never wait behind someone
    else's compile (an inline spec on the compiled backend can hold its
    creation lock for real milliseconds).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        artifact_cache: "DiskCache | str | Path | bool | None" = None,
    ) -> None:
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.artifact_cache = artifact_cache
        self._pools: dict[tuple[str, str, str], SimulationPool] = {}
        self._labels: dict[tuple[str, str, str], str] = {}
        self._creation_locks: dict[tuple[str, str, str], threading.Lock] = {}
        self._lock = threading.Lock()
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)

    def _check_open_and_get(self, key) -> SimulationPool | None:
        with self._lock:
            if self._closed:
                raise ProtocolError(
                    "server is shutting down", status=503,
                    kind="shutting_down",
                )
            return self._pools.get(key)

    def pool_for(self, batch: ParsedBatch) -> SimulationPool:
        """The warm pool serving *batch*'s combination, created on first use."""
        key = (batch.pool_key, batch.backend, batch.executor)
        pool = self._check_open_and_get(key)
        if pool is not None:
            return pool
        with self._lock:
            creator = self._creation_locks.setdefault(key, threading.Lock())
        with creator:
            # double-checked: whoever held the creation lock first built it
            pool = self._check_open_and_get(key)
            if pool is not None:
                return pool
            pool = SimulationPool(
                batch.spec,
                backend=batch.backend,
                executor=batch.executor,
                max_workers=self.max_workers,
                chunk_size=self.chunk_size,
                artifact_cache=self.artifact_cache,
            )
            with self._lock:
                if self._closed:  # lost a race with shutdown: don't leak it
                    pool.close(wait=False)
                    raise ProtocolError(
                        "server is shutting down", status=503,
                        kind="shutting_down",
                    )
                self._pools[key] = pool
                self._labels[key] = batch.label
            return pool

    def describe(self) -> list[dict]:
        """One JSON-safe row per live pool (for ``GET /v1/stats``)."""
        with self._lock:
            return [
                {
                    "machine": self._labels[key],
                    "backend": pool.backend_name,
                    "executor": pool.executor_name,
                    "workers": pool.max_workers,
                    "prepare_seconds": pool.prepare_seconds,
                }
                for key, pool in self._pools.items()
            ]

    def close_all(self, wait: bool = True) -> None:
        """Stop accepting new pools and drain every existing one."""
        with self._lock:
            self._closed = True
            pools = list(self._pools.values())
            self._pools.clear()
            self._labels.clear()
        for pool in pools:
            pool.close(wait=wait)


class _ServerSocket(ThreadingHTTPServer):
    """ThreadingHTTPServer wired back to the owning SimulationServer.

    ``daemon_threads`` is turned back off (``ThreadingHTTPServer``
    defaults it on) so ``server_close`` joins in-flight request threads —
    the first half of the graceful-shutdown path.
    """

    daemon_threads = False
    app: "SimulationServer"


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into :class:`SimulationServer` handlers."""

    protocol_version = "HTTP/1.1"

    def version_string(self) -> str:
        return f"repro-sim-server/{_version()}"

    # the default handler logs every request to stderr; the server keeps
    # counters instead (GET /v1/stats)
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def app(self) -> "SimulationServer":
        return self.server.app  # type: ignore[attr-defined]

    def _respond(self, status: int, document: dict) -> None:
        payload = json.dumps(document).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if self.close_connection:
            # an error path left request-body bytes unread: tell the
            # keep-alive client this connection is done rather than let
            # the leftovers corrupt its next request
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _discard_body(self) -> None:
        """Consume an unread request body so a keep-alive connection stays
        in sync; when that is impossible (absent, malformed or oversized
        Content-Length) mark the connection for closing instead."""
        try:
            length = int(self.headers.get("Content-Length") or "0")
        except ValueError:
            length = -1
        if 0 <= length <= MAX_BODY_BYTES:
            while length > 0:
                chunk = self.rfile.read(min(length, 65536))
                if not chunk:
                    break
                length -= len(chunk)
        else:
            self.close_connection = True

    def _dispatch(self, routes: Mapping[str, str], other: Mapping[str, str]) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        handler_name = routes.get(path)
        if handler_name is None:
            self._discard_body()
            if path in other:
                self.app.count_error()
                self._respond(405, error_to_json(
                    "method_not_allowed",
                    f"{path} does not accept {self.command}",
                ))
            else:
                self.app.count_error()
                self._respond(404, error_to_json(
                    "unknown_route",
                    f"no such route: {path} (see docs/api-reference.md)",
                ))
            return
        self.app.count_request(path)
        handler: Callable = getattr(self.app, handler_name)
        try:
            if self.command == "POST":
                status, document = handler(self._read_json())
            else:
                status, document = handler()
        except ProtocolError as exc:
            self.app.count_error()
            status, document = exc.status, error_to_json(exc.kind, str(exc))
        except AsimError as exc:
            # the simulation itself rejected the request (bad spec
            # semantics, a run-time machine error, a closed pool): the
            # client's fault, structurally reported
            self.app.count_error()
            status, document = 400, error_to_json(
                type(exc).__name__, str(exc)
            )
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.app.count_error()
            status, document = 500, error_to_json(
                "internal_error", f"{type(exc).__name__}: {exc}"
            )
        self._respond(status, document)

    def _read_json(self) -> object:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            length = -1
        if length < 0:
            # absent or malformed (including negative): nothing sane to
            # read, so the connection cannot be kept in sync either
            self.close_connection = True
            raise ProtocolError(
                "a JSON body with a valid non-negative Content-Length "
                "header is required",
                status=411, kind="length_required",
            ) from None
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                status=413, kind="body_too_large",
            )
        payload = self.rfile.read(length)
        try:
            return json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ProtocolError(
                f"request body is not valid JSON: {exc}",
                kind="malformed_json",
            ) from exc

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(GET_ROUTES, POST_ROUTES)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(POST_ROUTES, GET_ROUTES)


class SimulationServer:
    """The long-lived serving process: pools kept warm behind HTTP.

    ``port=0`` binds an ephemeral port (the end-to-end tests use this);
    the bound address is available as :attr:`host`/:attr:`port`/
    :attr:`url` after construction.  ``backend``/``executor`` are the
    defaults a request may override per call; ``max_workers`` and
    ``chunk_size`` configure every pool the registry creates.

    ``cache_max_bytes``/``cache_max_age`` bound the persistent artifact
    directory: :meth:`~repro.compiler.cache.DiskCache.prune` runs once at
    startup (always removing corrupted entries and stale temp files, plus
    LRU eviction down to the byte budget / age limit when given).  Pass
    ``artifact_cache=False`` to run without the disk layer.

    Use as a context manager, or call :meth:`start` (background thread,
    returns once the socket accepts) / :meth:`serve_forever` (blocking,
    the CLI path) and then :meth:`close` — which stops accepting,
    finishes in-flight HTTP requests, and drains every pool.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "threaded",
        executor: str = "thread",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        artifact_cache: "DiskCache | str | Path | bool | None" = None,
        cache_max_bytes: int | None = None,
        cache_max_age: float | None = None,
    ) -> None:
        self.default_backend = backend
        self.default_executor = executor
        self.disk = resolve_disk(True if artifact_cache is None else artifact_cache)
        self.registry = PoolRegistry(
            max_workers=max_workers,
            chunk_size=chunk_size,
            artifact_cache=self.disk if self.disk is not None else False,
        )
        self.startup_prune: PruneReport | None = None
        if self.disk is not None:
            self.startup_prune = self.disk.prune(
                max_bytes=cache_max_bytes, max_age=cache_max_age
            )
        self.started_at = time.time()
        self._requests: dict[str, int] = {}
        self._errors = 0
        self._counter_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._serve_started = False
        self._http = _ServerSocket((host, port), _Handler)
        self._http.app = self

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SimulationServer":
        """Serve from a background thread; the socket is already bound."""
        self._serve_started = True
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-sim-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI path)."""
        self._serve_started = True
        self._http.serve_forever()

    def close(self, wait: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain requests, drain pools."""
        if self._closed:
            return
        self._closed = True
        if self._serve_started:
            # BaseServer.shutdown blocks until the serve loop acknowledges,
            # so it must only run when a loop was (or is) running
            self._http.shutdown()        # stop the accept loop
        self._http.server_close()        # join in-flight request threads
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=10.0)
        self.registry.close_all(wait=wait)  # drain in-flight pool chunks

    def __enter__(self) -> "SimulationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request accounting --------------------------------------------------

    def count_request(self, route: str) -> None:
        with self._counter_lock:
            self._requests[route] = self._requests.get(route, 0) + 1

    def count_error(self) -> None:
        with self._counter_lock:
            self._errors += 1

    # -- GET handlers --------------------------------------------------------

    def handle_healthz(self) -> tuple[int, dict]:
        return 200, {
            "protocol": PROTOCOL_VERSION,
            "status": "ok",
            "version": _version(),
            "uptime_seconds": time.time() - self.started_at,
        }

    def handle_machines(self) -> tuple[int, dict]:
        return 200, {
            "protocol": PROTOCOL_VERSION,
            "machines": [
                {
                    "name": entry.name,
                    "description": entry.description,
                    "demo_cycles": entry.demo_cycles,
                }
                for entry in all_machines()
            ],
        }

    def handle_backends(self) -> tuple[int, dict]:
        from repro.compiler.specopt import SpecOptPasses

        backends = []
        for name in BACKEND_NAMES:
            backend = make_backend(name)
            passes = getattr(backend, "passes", None)
            backends.append({
                "name": name,
                "supports_override": backend.supports_override,
                "supports_full_stats": backend.supports_full_stats,
                "prepare_cache": getattr(backend, "cache", None) is not None,
                "specopt_default": (
                    passes is not None and passes != SpecOptPasses.none()
                ),
            })
        return 200, {"protocol": PROTOCOL_VERSION, "backends": backends}

    def handle_stats(self) -> tuple[int, dict]:
        with self._counter_lock:
            by_route = dict(self._requests)
            errors = self._errors
        document = {
            "protocol": PROTOCOL_VERSION,
            "server": {
                "version": _version(),
                "uptime_seconds": time.time() - self.started_at,
                "host": self.host,
                "port": self.port,
            },
            "config": {
                "backend": self.default_backend,
                "executor": self.default_executor,
                "max_workers": self.registry.max_workers,
                "chunk_size": self.registry.chunk_size,
            },
            "requests": {
                "total": sum(by_route.values()),
                "by_route": by_route,
                "errors": errors,
            },
            "pools": self.registry.describe(),
        }
        if self.disk is not None:
            info = self.disk.info()
            document["disk_cache"] = {
                "root": str(info.root),
                "files": info.files,
                "total_bytes": info.total_bytes,
                "startup_prune_removed_files": (
                    self.startup_prune.removed_files
                    if self.startup_prune is not None else 0
                ),
            }
        else:
            document["disk_cache"] = None
        return 200, document

    # -- POST handlers -------------------------------------------------------

    def _check_capabilities(self, batch: ParsedBatch,
                            pool: SimulationPool) -> None:
        """Reject a request the pool's backend cannot honor — before it
        is scheduled, with a structured 4xx instead of a per-item error."""
        for run in batch.runs:
            if run.override is not None and not pool.supports_override:
                raise ProtocolError(
                    f"backend '{batch.backend}' does not support per-cycle "
                    "overrides (supports_override is off)",
                    status=422, kind="unsupported_capability",
                )

    def _run_parsed(self, batch: ParsedBatch) -> BatchResult:
        pool = self.registry.pool_for(batch)
        self._check_capabilities(batch, pool)
        return pool.run_batch(list(batch.runs))

    def handle_batch(self, doc: object) -> tuple[int, dict]:
        batch = parse_batch_request(
            doc, self.default_backend, self.default_executor
        )
        result = self._run_parsed(batch)
        return 200, batch_result_to_json(result)

    def handle_run(self, doc: object) -> tuple[int, dict]:
        batch = parse_run_request(
            doc, self.default_backend, self.default_executor
        )
        result = self._run_parsed(batch)
        item = result.items[0]
        if not item.ok:
            raise item.error
        document = batch_result_to_json(result)
        single = document["items"][0]["result"]
        return 200, {
            "protocol": PROTOCOL_VERSION,
            "backend": result.backend,
            "executor": result.executor,
            "result": single,
        }
