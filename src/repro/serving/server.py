"""Long-lived simulation server: an HTTP front-end over SimulationPool.

This is the serving layer's persistent form.  ``repro serve-batch`` pays
a pool's warm-up on every invocation; the server pays it **once per
(machine, backend, executor, lane width)** and then keeps the pool —
warm workers,
seeded prepare cache, shipped lowered program — alive across any number
of client requests, so a repeat client's request costs only the run
itself.  It is standard library only (`http.server.ThreadingHTTPServer`
with the JSON wire protocol of :mod:`repro.serving.protocol`), so any
HTTP client — ``curl`` included — is a client.

Endpoints (documented with schemas and examples in
``docs/api-reference.md``, kept in sync by a test):

* ``POST /v1/batch`` — a batch of N run variants of one machine, fanned
  out on the pool; answers the full per-item/aggregate batch document.
* ``POST /v1/run`` — one run, fields flattened for ``curl`` ergonomics.
* ``GET /v1/machines`` — the bundled machine registry.
* ``GET /v1/backends`` — backend names with capability flags.
* ``GET /v1/stats`` — uptime, request counters, live pools, disk cache,
  resilience counters (crashes, retries, quarantines, fallbacks).
* ``GET /v1/trace/<id>`` — the assembled per-request trace for a recent
  request (spans from HTTP parse to worker run; see
  :mod:`repro.serving.tracing`), served from the recorder's bounded
  in-memory ring.
* ``GET /metrics`` — Prometheus text exposition: per-route counters, the
  admission/resilience counters, and per-span-kind latency histograms.
* ``GET /healthz`` — liveness probe (is the process up at all).
* ``GET /readyz`` — readiness probe: 503 while draining or while the
  admission gate is saturated, so a load balancer routes around this
  instance without killing it.

Pools are created lazily on first use and kept in a registry keyed on
(machine, backend, executor, lane width); the disk artifact cache is
pruned once at
startup (:meth:`~repro.compiler.cache.DiskCache.prune`) so a long-running
deployment stays inside its byte/age budget.

Under load the server applies **backpressure** instead of queueing
without bound: the :class:`AdmissionGate` caps concurrently executing
simulation requests (``max_inflight``) and the briefly-queued overflow
(``max_queue``); beyond that, requests are rejected with a structured
``429`` carrying ``Retry-After``.  When the pool registry cannot prepare
a requested backend it **degrades** down a fallback chain
(compiled → threaded → interpreter) and reports the substitution in the
response and in ``/v1/stats`` rather than failing the request.

Shutdown is graceful and bounded: the HTTP accept loop stops, in-flight
request threads get ``drain_timeout`` seconds to finish, then every
pool drains its in-flight chunks; a drain that misses the timeout is
*reported* (``close`` returns ``False``, ``drain_failed`` is set)
instead of hanging forever or silently abandoning threads.

The CLI front door is ``repro serve``; ``examples/http_client.py`` is a
minimal client.  Deployment guidance (executor choice, worker sizing,
cache policy) lives in ``docs/serving.md``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Mapping

from repro.compiler.cache import (
    DiskCache,
    PruneReport,
    _code_version,
    resolve_disk,
)
from repro.core.simulator import BACKEND_NAMES, make_backend
from repro.errors import (
    AsimError,
    DeadlineExceededError,
    ServingError,
    WorkerCrashError,
)
from repro.machines.library import all_machines
from repro.serving.batch import BatchResult
from repro.serving.executor import EXECUTOR_NAMES
from repro.serving.pool import SimulationPool
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    TRACE_HEADER,
    ParsedBatch,
    ProtocolError,
    batch_result_to_json,
    error_kind,
    error_to_json,
    parse_batch_request,
    parse_run_request,
    with_default_timeout,
)
from repro.serving.tracing import (
    TraceBuilder,
    TraceRecorder,
    make_exporter,
    metric_line,
    sanitize_trace_id,
)

#: Largest request body the server will read by default (a batch of
#: thousands of run objects fits comfortably; anything bigger is a client
#: bug).  Tunable per server via ``max_body_bytes`` / ``--max-body-bytes``.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Graceful-degradation chain the pool registry walks when a backend's
#: warm prepare fails: each step trades speed for simplicity, ending at
#: the interpreter, which has no compile step left to fail.
BACKEND_FALLBACKS = {"compiled": "threaded", "threaded": "interpreter"}


# lazily-resolved package version (this module loads during repro's own
# initialisation); one implementation, shared with the disk cache's
# artifact stamping
_version = _code_version

#: GET routes -> handler method name on :class:`SimulationServer`.
GET_ROUTES: dict[str, str] = {
    "/healthz": "handle_healthz",
    "/readyz": "handle_readyz",
    "/v1/machines": "handle_machines",
    "/v1/backends": "handle_backends",
    "/v1/stats": "handle_stats",
    "/v1/trace": "handle_trace",
    "/metrics": "handle_metrics",
}

#: Routes whose requests are traced (one :class:`RequestTrace` each).
TRACED_ROUTES = frozenset({"/v1/run", "/v1/batch"})


class AdmissionGate:
    """Bounded admission for the simulation endpoints (backpressure).

    ``ThreadingHTTPServer`` gives every connection its own thread, so
    without a gate a traffic spike means an unbounded number of
    concurrent simulations grinding each other down.  The gate admits at
    most ``max_inflight`` requests into the pools at once; up to
    ``max_queue`` more block briefly waiting for a slot, and everything
    beyond that is rejected immediately with a structured ``429`` whose
    ``Retry-After`` tells the client when to come back — shedding load
    at the door instead of collapsing under it.  ``max_inflight=None``
    disables the gate (the historical behavior).
    """

    def __init__(self, max_inflight: int | None = None, max_queue: int = 16,
                 retry_after: float = 1.0) -> None:
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.retry_after = retry_after
        self._inflight = 0
        self._queued = 0
        self._rejected = 0
        self._slot_freed = threading.Condition(threading.Lock())

    @property
    def saturated(self) -> bool:
        """True while every in-flight slot is taken (readiness input)."""
        if self.max_inflight is None:
            return False
        with self._slot_freed:
            return self._inflight >= self.max_inflight

    def snapshot(self) -> dict:
        with self._slot_freed:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "inflight": self._inflight,
                "queued": self._queued,
                "rejected": self._rejected,
            }

    def acquire(self) -> None:
        """Take an in-flight slot, waiting in the bounded queue if needed.

        Raises the structured ``429`` when both the slots and the queue
        are full.
        """
        if self.max_inflight is None:
            return
        with self._slot_freed:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._queued >= self.max_queue:
                self._rejected += 1
                raise ProtocolError(
                    f"server is at capacity ({self.max_inflight} requests "
                    f"in flight, {self._queued} queued); retry later",
                    status=429, kind="overloaded",
                    retry_after=self.retry_after,
                )
            self._queued += 1
            try:
                while self._inflight >= self.max_inflight:
                    self._slot_freed.wait()
                self._inflight += 1
            finally:
                self._queued -= 1

    def release(self) -> None:
        if self.max_inflight is None:
            return
        with self._slot_freed:
            self._inflight -= 1
            self._slot_freed.notify()

#: POST routes -> handler method name on :class:`SimulationServer`.
POST_ROUTES: dict[str, str] = {
    "/v1/run": "handle_run",
    "/v1/batch": "handle_batch",
}


#: Registry key: one pool per distinct combination a request can ask for.
PoolKey = "tuple[str, str, str, int | None]"


class PoolRegistry:
    """Lazily created, kept-warm pools keyed on
    (machine, backend, executor, lane width).

    The registry is the server's whole point: the first request for a
    combination pays the pool construction (warm prepare, worker spawn,
    disk-cache seeding), every later request reuses it.  Construction is
    guarded by a *per-key* lock: two racing first-requests for the same
    combination build one pool, not two, while requests for other
    combinations — in particular warm ones — never wait behind someone
    else's compile (an inline spec on the compiled backend can hold its
    creation lock for real milliseconds).

    ``max_pools`` caps how many pools stay warm: a server fed unbounded
    distinct inline specs would otherwise grow a pool (with live worker
    threads or processes) per fingerprint forever.  Past the cap the
    least-recently-used pool is drained gracefully and evicted — the
    next request for that combination pays prepare again, which is the
    honest cost of exceeding the working set.  ``None`` means unbounded.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        lane_width: int | None = None,
        artifact_cache: "DiskCache | str | Path | bool | None" = None,
        fallback: bool = True,
        max_pools: int | None = None,
    ) -> None:
        if max_pools is not None and max_pools < 1:
            raise ValueError(
                f"max_pools must be a positive integer or None, got {max_pools!r}"
            )
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        #: server-wide default lane group size; a request's ``lane_width``
        #: field overrides it per pool
        self.lane_width = lane_width
        self.artifact_cache = artifact_cache
        #: walk :data:`BACKEND_FALLBACKS` when a backend's prepare fails
        self.fallback = fallback
        self.fallback_count = 0
        self.max_pools = max_pools
        self.eviction_count = 0
        #: insertion order doubles as the LRU order — hits re-insert
        self._pools: dict[PoolKey, SimulationPool] = {}
        self._labels: dict[PoolKey, str] = {}
        #: per-key degradation record (requested vs served backend), kept
        #: alongside the pool so later requests see the same substitution
        self._fallbacks: dict[PoolKey, dict] = {}
        self._creation_locks: dict[PoolKey, threading.Lock] = {}
        self._lock = threading.Lock()
        self._closed = False

    def _effective_lane_width(self, batch: ParsedBatch) -> int | None:
        return (
            batch.lane_width if batch.lane_width is not None
            else self.lane_width
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)

    def _check_open_and_get(self, key) -> SimulationPool | None:
        with self._lock:
            if self._closed:
                raise ProtocolError(
                    "server is shutting down", status=503,
                    kind="shutting_down",
                )
            pool = self._pools.get(key)
            if pool is not None:
                # touch: move to most-recently-used position
                self._pools[key] = self._pools.pop(key)
            return pool

    def pool_for(
        self, batch: ParsedBatch
    ) -> tuple[SimulationPool, dict | None]:
        """The warm pool serving *batch*'s combination, created on first
        use.  Returns ``(pool, degraded)``: *degraded* is ``None``
        normally, or the fallback record when the requested backend could
        not prepare and the chain substituted another (the pool stays
        keyed under the *requested* combination, so the substitution is
        sticky and later identical requests reuse it without re-failing
        the broken backend)."""
        key = (batch.pool_key, batch.backend, batch.executor,
               self._effective_lane_width(batch))
        pool = self._check_open_and_get(key)
        if pool is not None:
            with self._lock:
                return pool, self._fallbacks.get(key)
        with self._lock:
            creator = self._creation_locks.setdefault(key, threading.Lock())
        with creator:
            # double-checked: whoever held the creation lock first built it
            pool = self._check_open_and_get(key)
            if pool is not None:
                with self._lock:
                    return pool, self._fallbacks.get(key)
            pool, degraded = self._create_pool(batch)
            evicted: list[SimulationPool] = []
            with self._lock:
                if self._closed:  # lost a race with shutdown: don't leak it
                    pool.close(wait=False)
                    raise ProtocolError(
                        "server is shutting down", status=503,
                        kind="shutting_down",
                    )
                self._pools[key] = pool
                self._labels[key] = batch.label
                if degraded is not None:
                    self._fallbacks[key] = degraded
                    self.fallback_count += 1
                while (
                    self.max_pools is not None
                    and len(self._pools) > self.max_pools
                ):
                    victim_key = next(iter(self._pools))
                    evicted.append(self._pools.pop(victim_key))
                    self._labels.pop(victim_key, None)
                    self._fallbacks.pop(victim_key, None)
                    self.eviction_count += 1
            # Graceful drain outside the lock: in-flight runs on the
            # evicted pool finish; a request that raced us and still
            # holds the stale pool gets a closed-pool error and is
            # retried once by the server against a fresh pool.
            for stale in evicted:
                stale.close(wait=True)
            return pool, degraded

    def _create_pool(
        self, batch: ParsedBatch
    ) -> tuple[SimulationPool, dict | None]:
        """Build the pool, walking the fallback chain on prepare failure.

        A ``ProtocolError`` (e.g. shutting down) propagates untouched; any
        other failure to prepare the requested backend tries the next
        backend down :data:`BACKEND_FALLBACKS` — serving degraded beats
        serving a 500.  When the whole chain fails, the *first* error (the
        requested backend's) is raised: that is the one the client asked
        about.
        """
        backend = batch.backend
        first_error: Exception | None = None
        while True:
            try:
                pool = SimulationPool(
                    batch.spec,
                    backend=backend,
                    executor=batch.executor,
                    max_workers=self.max_workers,
                    chunk_size=self.chunk_size,
                    lane_width=self._effective_lane_width(batch),
                    artifact_cache=self.artifact_cache,
                )
            except ProtocolError:
                raise
            except Exception as exc:  # noqa: BLE001 - degrade, not die
                next_backend = (
                    BACKEND_FALLBACKS.get(backend) if self.fallback else None
                )
                if next_backend is None:
                    raise (first_error if first_error is not None else exc)
                if first_error is None:
                    first_error = exc
                backend = next_backend
                continue
            degraded = None
            if backend != batch.backend:
                degraded = {
                    "requested_backend": batch.backend,
                    "served_backend": backend,
                    "reason": (
                        f"{type(first_error).__name__}: {first_error}"
                    ),
                }
            return pool, degraded

    def describe(self) -> list[dict]:
        """One JSON-safe row per live pool (for ``GET /v1/stats``)."""
        with self._lock:
            return [
                {
                    "machine": self._labels[key],
                    "backend": pool.backend_name,
                    "executor": pool.executor_name,
                    "workers": pool.max_workers,
                    "prepare_seconds": pool.prepare_seconds,
                    "degraded": self._fallbacks.get(key),
                    "resilience": pool.resilience_counters(),
                }
                for key, pool in self._pools.items()
            ]

    def resilience_totals(self) -> dict[str, int]:
        """Crash/retry/quarantine counters summed over live pools, plus
        the number of backend fallbacks taken (for ``GET /v1/stats``)."""
        with self._lock:
            pools = list(self._pools.values())
            fallbacks = self.fallback_count
        totals = {"worker_crashes": 0, "worker_retries": 0, "quarantined": 0}
        for pool in pools:
            for name, value in pool.resilience_counters().items():
                totals[name] = totals.get(name, 0) + value
        totals["backend_fallbacks"] = fallbacks
        totals["pool_evictions"] = self.eviction_count
        return totals

    def close_all(self, wait: bool = True) -> None:
        """Stop accepting new pools and drain every existing one."""
        with self._lock:
            self._closed = True
            pools = list(self._pools.values())
            self._pools.clear()
            self._labels.clear()
            self._fallbacks.clear()
        for pool in pools:
            pool.close(wait=wait)


class _ServerSocket(ThreadingHTTPServer):
    """ThreadingHTTPServer wired back to the owning SimulationServer.

    ``block_on_close`` (the default) makes ``server_close`` join
    in-flight request threads — the first half of the graceful-shutdown
    path; :meth:`SimulationServer.close` bounds that join with its
    ``drain_timeout``.  The threads stay daemonic so a request that
    outlives the drain budget is abandoned without holding interpreter
    exit hostage.
    """

    daemon_threads = True
    app: "SimulationServer"


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into :class:`SimulationServer` handlers."""

    protocol_version = "HTTP/1.1"

    def version_string(self) -> str:
        return f"repro-sim-server/{_version()}"

    # the default handler logs every request to stderr; the server keeps
    # counters instead (GET /v1/stats)
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def app(self) -> "SimulationServer":
        return self.server.app  # type: ignore[attr-defined]

    def _respond(self, status: int, document: "dict | str",
                 headers: Mapping[str, str] | None = None) -> None:
        # a str document is pre-rendered Prometheus exposition text
        # (GET /metrics); everything else is the JSON wire format
        if isinstance(document, str):
            payload = document.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            payload = json.dumps(document).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            # an error path left request-body bytes unread: tell the
            # keep-alive client this connection is done rather than let
            # the leftovers corrupt its next request
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _discard_body(self) -> None:
        """Consume an unread request body so a keep-alive connection stays
        in sync; when that is impossible (absent, malformed or oversized
        Content-Length) mark the connection for closing instead."""
        try:
            length = int(self.headers.get("Content-Length") or "0")
        except ValueError:
            length = -1
        if 0 <= length <= self.app.max_body_bytes:
            while length > 0:
                chunk = self.rfile.read(min(length, 65536))
                if not chunk:
                    break
                length -= len(chunk)
        else:
            self.close_connection = True

    def _dispatch(self, routes: Mapping[str, str], other: Mapping[str, str]) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route_arg: str | None = None
        if path.startswith("/v1/trace/"):
            # the one parameterised route: /v1/trace/<id>
            route_arg = path[len("/v1/trace/"):]
            path = "/v1/trace"
        handler_name = routes.get(path)
        if handler_name is None:
            self._discard_body()
            if path in other:
                self.app.count_error()
                self._respond(405, error_to_json(
                    "method_not_allowed",
                    f"{path} does not accept {self.command}",
                ))
            else:
                self.app.count_error()
                self._respond(404, error_to_json(
                    "unknown_route",
                    f"no such route: {path} (see docs/api-reference.md)",
                ))
            return
        self.app.count_request(path)
        handler: Callable = getattr(self.app, handler_name)
        headers: dict[str, str] = {}
        recorder = self.app.recorder
        tb: TraceBuilder | None = None
        if recorder is not None and path in TRACED_ROUTES:
            tb = recorder.begin(
                path, sanitize_trace_id(self.headers.get(TRACE_HEADER))
            )
            headers[TRACE_HEADER] = tb.trace_id
        try:
            if self.command == "POST":
                doc = self._read_json()
                if tb is not None:
                    tb.mark("http_parse")
                status, document = handler(
                    doc, self._request_timeout(), tb
                )
            else:
                if route_arg is not None:
                    status, document = handler(route_arg)
                else:
                    status, document = handler()
        except ProtocolError as exc:
            self.app.count_error()
            status, document = exc.status, error_to_json(exc.kind, str(exc))
            if exc.retry_after is not None:
                headers["Retry-After"] = str(
                    max(1, round(exc.retry_after))
                )
            if tb is not None:
                tb.error(exc.kind, str(exc))
        except DeadlineExceededError as exc:
            # a single-run request that missed its deadline: the gateway-
            # timeout status, same stable kind as a per-item batch error
            self.app.count_error()
            status, document = 504, error_to_json(error_kind(exc), str(exc))
            if tb is not None:
                tb.error(error_kind(exc), str(exc))
        except WorkerCrashError as exc:
            # the server's worker died on this request's account — a
            # server-side failure, structured rather than a bare 500
            self.app.count_error()
            status, document = 500, error_to_json(error_kind(exc), str(exc))
            if tb is not None:
                tb.error(error_kind(exc), str(exc))
        except AsimError as exc:
            # the simulation itself rejected the request (bad spec
            # semantics, a run-time machine error, a closed pool): the
            # client's fault, structurally reported
            self.app.count_error()
            status, document = 400, error_to_json(
                type(exc).__name__, str(exc)
            )
            if tb is not None:
                tb.error(type(exc).__name__, str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.app.count_error()
            status, document = 500, error_to_json(
                "internal_error", f"{type(exc).__name__}: {exc}"
            )
            if tb is not None:
                tb.error("internal_error", f"{type(exc).__name__}: {exc}")
        self._respond(status, document, headers)
        if tb is not None:
            # the serialize phase closes after the response bytes are on
            # the socket, so the trace covers the full server-side wall
            # time; finishing after _respond keeps export cost (JSONL /
            # SQLite writes) off the client's measured latency.  A failed
            # request keeps its ``error`` span terminal — the error-body
            # write is folded into it rather than marked separately.
            if tb.errored:
                tb.extend_last()
            else:
                tb.mark("serialize")
            recorder.finish(tb, status)

    def _request_timeout(self) -> float | None:
        """The per-run default deadline for this request: the
        ``X-Request-Timeout`` header (seconds), else the server-wide
        default.  Per-run ``timeout_seconds`` fields always win."""
        header = self.headers.get("X-Request-Timeout")
        if header is None:
            return self.app.default_timeout
        try:
            value = float(header)
        except ValueError:
            value = -1.0
        if value <= 0 or value != value:  # reject garbage and NaN
            raise ProtocolError(
                "X-Request-Timeout must be a positive number of seconds, "
                f"got {header!r}", kind="invalid_timeout",
            )
        return value

    def _read_json(self) -> object:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            length = -1
        if length < 0:
            # absent or malformed (including negative): nothing sane to
            # read, so the connection cannot be kept in sync either
            self.close_connection = True
            raise ProtocolError(
                "a JSON body with a valid non-negative Content-Length "
                "header is required",
                status=411, kind="length_required",
            ) from None
        if length > self.app.max_body_bytes:
            self.close_connection = True
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{self.app.max_body_bytes}-byte limit",
                status=413, kind="body_too_large",
            )
        payload = self.rfile.read(length)
        try:
            return json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ProtocolError(
                f"request body is not valid JSON: {exc}",
                kind="malformed_json",
            ) from exc

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(GET_ROUTES, POST_ROUTES)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(POST_ROUTES, GET_ROUTES)


class SimulationServer:
    """The long-lived serving process: pools kept warm behind HTTP.

    ``port=0`` binds an ephemeral port (the end-to-end tests use this);
    the bound address is available as :attr:`host`/:attr:`port`/
    :attr:`url` after construction.  ``backend``/``executor`` are the
    defaults a request may override per call; ``max_workers`` and
    ``chunk_size`` configure every pool the registry creates.

    ``cache_max_bytes``/``cache_max_age`` bound the persistent artifact
    directory: :meth:`~repro.compiler.cache.DiskCache.prune` runs once at
    startup (always removing corrupted entries and stale temp files, plus
    LRU eviction down to the byte budget / age limit when given).  Pass
    ``artifact_cache=False`` to run without the disk layer.

    Resilience knobs: ``max_inflight``/``max_queue``/``retry_after``
    configure the :class:`AdmissionGate`; ``default_timeout`` applies a
    deadline to every run that does not choose its own;
    ``max_body_bytes`` caps request bodies; ``drain_timeout`` bounds the
    graceful-shutdown wait; ``fallback=False`` disables the backend
    degradation chain.

    Observability: every simulation request is traced into the recorder's
    bounded in-memory ring (``trace_ring`` entries, always on) and —
    when ``trace_sink`` is ``"jsonl"`` or ``"sqlite"`` — exported to a
    file under ``trace_dir``.  ``tracing=False`` disables the recorder
    entirely (the benchmark's tracing-off baseline).

    Use as a context manager, or call :meth:`start` (background thread,
    returns once the socket accepts) / :meth:`serve_forever` (blocking,
    the CLI path) and then :meth:`close` — which stops accepting,
    finishes in-flight HTTP requests, and drains every pool.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "threaded",
        executor: str = "thread",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        lane_width: int | None = None,
        artifact_cache: "DiskCache | str | Path | bool | None" = None,
        cache_max_bytes: int | None = None,
        cache_max_age: float | None = None,
        max_inflight: int | None = None,
        max_queue: int = 16,
        retry_after: float = 1.0,
        default_timeout: float | None = None,
        max_body_bytes: int = MAX_BODY_BYTES,
        drain_timeout: float = 10.0,
        fallback: bool = True,
        max_pools: int | None = None,
        trace_sink: str | None = None,
        trace_dir: "str | Path | None" = None,
        trace_ring: int = 256,
        tracing: bool = True,
    ) -> None:
        if max_body_bytes <= 0:
            raise ValueError(
                f"max_body_bytes must be positive, got {max_body_bytes}"
            )
        if drain_timeout < 0:
            raise ValueError(
                f"drain_timeout must be >= 0, got {drain_timeout}"
            )
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        self.default_backend = backend
        self.default_executor = executor
        self.default_timeout = default_timeout
        self.max_body_bytes = max_body_bytes
        self.drain_timeout = drain_timeout
        self.drain_failed = False
        self.gate = AdmissionGate(
            max_inflight=max_inflight, max_queue=max_queue,
            retry_after=retry_after,
        )
        self.disk = resolve_disk(True if artifact_cache is None else artifact_cache)
        self.registry = PoolRegistry(
            max_workers=max_workers,
            chunk_size=chunk_size,
            lane_width=lane_width,
            artifact_cache=self.disk if self.disk is not None else False,
            fallback=fallback,
            max_pools=max_pools,
        )
        self.startup_prune: PruneReport | None = None
        if self.disk is not None:
            self.startup_prune = self.disk.prune(
                max_bytes=cache_max_bytes, max_age=cache_max_age
            )
        self.trace_sink = trace_sink if trace_sink not in ("", "none") else None
        self.recorder: TraceRecorder | None = None
        if tracing:
            exporter = make_exporter(self.trace_sink, trace_dir)
            self.recorder = TraceRecorder(
                ring_size=trace_ring,
                exporters=(exporter,) if exporter is not None else (),
            )
        self.started_at = time.time()
        self._requests: dict[str, int] = {}
        self._errors = 0
        self._counter_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._serve_started = False
        self._http = _ServerSocket((host, port), _Handler)
        self._http.app = self

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SimulationServer":
        """Serve from a background thread; the socket is already bound."""
        self._serve_started = True
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-sim-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI path)."""
        self._serve_started = True
        self._http.serve_forever()

    def close(self, wait: bool = True) -> bool:
        """Graceful shutdown: stop accepting, drain requests, drain pools.

        The drain is bounded by ``drain_timeout`` seconds and *reported*:
        returns ``True`` when everything finished in time, ``False`` —
        with :attr:`drain_failed` set — when in-flight request threads
        outlived the budget and were abandoned (they are daemonic, so
        the process can still exit).  ``/readyz`` reports not-ready from
        the moment this is called, so a load balancer stops sending work
        before the listener goes away.
        """
        if self._closed:
            return not self.drain_failed
        self._closed = True
        if self._serve_started:
            # BaseServer.shutdown blocks until the serve loop acknowledges,
            # so it must only run when a loop was (or is) running
            self._http.shutdown()        # stop the accept loop
        deadline = time.monotonic() + self.drain_timeout
        # server_close joins in-flight request threads with no timeout of
        # its own (daemon_threads is off), so run it on a sacrificial
        # thread and bound the wait here — a hung request must not turn
        # graceful shutdown into an unbounded hang
        closer = threading.Thread(
            target=self._http.server_close,
            name="repro-sim-server-close",
            daemon=True,
        )
        closer.start()
        closer.join(timeout=max(0.0, deadline - time.monotonic()))
        if closer.is_alive():
            self.drain_failed = True
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if self._thread.is_alive():
                self.drain_failed = True
        # a failed drain means something is hung inside a pool: do not
        # wait on its chunks either, or close() would hang exactly where
        # the bounded join just refused to
        self.registry.close_all(wait=wait and not self.drain_failed)
        if self.recorder is not None:
            self.recorder.close()
        return not self.drain_failed

    def __enter__(self) -> "SimulationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request accounting --------------------------------------------------

    def count_request(self, route: str) -> None:
        with self._counter_lock:
            self._requests[route] = self._requests.get(route, 0) + 1

    def count_error(self) -> None:
        with self._counter_lock:
            self._errors += 1

    # -- GET handlers --------------------------------------------------------

    def handle_healthz(self) -> tuple[int, dict]:
        return 200, {
            "protocol": PROTOCOL_VERSION,
            "status": "ok",
            "version": _version(),
            "uptime_seconds": time.time() - self.started_at,
        }

    def handle_readyz(self) -> tuple[int, dict]:
        """Readiness, as distinct from liveness: a 503 here means "route
        new work elsewhere", not "restart me" — the server is draining
        toward shutdown or every admission slot is taken."""
        admission = self.gate.snapshot()
        if self._closed:
            reason = "draining"
        elif (
            admission["max_inflight"] is not None
            and admission["inflight"] >= admission["max_inflight"]
        ):
            reason = "saturated"
        else:
            return 200, {
                "protocol": PROTOCOL_VERSION,
                "ready": True,
                "admission": admission,
            }
        return 503, {
            "protocol": PROTOCOL_VERSION,
            "ready": False,
            "reason": reason,
            "admission": admission,
        }

    def handle_machines(self) -> tuple[int, dict]:
        return 200, {
            "protocol": PROTOCOL_VERSION,
            "machines": [
                {
                    "name": entry.name,
                    "description": entry.description,
                    "demo_cycles": entry.demo_cycles,
                }
                for entry in all_machines()
            ],
        }

    def handle_backends(self) -> tuple[int, dict]:
        from repro.compiler.specopt import SpecOptPasses

        backends = []
        for name in BACKEND_NAMES:
            backend = make_backend(name)
            passes = getattr(backend, "passes", None)
            backends.append({
                "name": name,
                "supports_override": backend.supports_override,
                "supports_full_stats": backend.supports_full_stats,
                "prepare_cache": getattr(backend, "cache", None) is not None,
                "specopt_default": (
                    passes is not None and passes != SpecOptPasses.none()
                ),
                # every built-in backend serves every executor strategy:
                # lane groups fall back to the generic lane evaluator when
                # a backend has no generated lane entry point
                "executors": list(EXECUTOR_NAMES),
            })
        return 200, {"protocol": PROTOCOL_VERSION, "backends": backends}

    def handle_stats(self) -> tuple[int, dict]:
        with self._counter_lock:
            by_route = dict(self._requests)
            errors = self._errors
        document = {
            "protocol": PROTOCOL_VERSION,
            "server": {
                "version": _version(),
                "uptime_seconds": time.time() - self.started_at,
                "host": self.host,
                "port": self.port,
            },
            "config": {
                "backend": self.default_backend,
                "executor": self.default_executor,
                "max_workers": self.registry.max_workers,
                "chunk_size": self.registry.chunk_size,
                "lane_width": self.registry.lane_width,
                "default_timeout": self.default_timeout,
                "max_body_bytes": self.max_body_bytes,
                "drain_timeout": self.drain_timeout,
                "max_pools": self.registry.max_pools,
                "trace_sink": self.trace_sink,
            },
            "requests": {
                "total": sum(by_route.values()),
                "by_route": by_route,
                "errors": errors,
            },
            "resilience": {
                "admission": self.gate.snapshot(),
                **self.registry.resilience_totals(),
            },
            "pools": self.registry.describe(),
            "tracing": (
                self.recorder.snapshot() if self.recorder is not None
                else None
            ),
        }
        if self.disk is not None:
            info = self.disk.info()
            document["disk_cache"] = {
                "root": str(info.root),
                "files": info.files,
                "total_bytes": info.total_bytes,
                "startup_prune_removed_files": (
                    self.startup_prune.removed_files
                    if self.startup_prune is not None else 0
                ),
                "degraded": self.disk.degraded,
                "write_errors": self.disk.write_errors,
            }
        else:
            document["disk_cache"] = None
        return 200, document

    def handle_trace(self, trace_id: str | None = None) -> tuple[int, dict]:
        """``GET /v1/trace/<id>``: one assembled trace from the ring."""
        trace = (
            self.recorder.get(trace_id)
            if self.recorder is not None and trace_id else None
        )
        if trace is None:
            raise ProtocolError(
                f"no trace {trace_id!r} in the ring buffer (traces are "
                "kept for the most recent requests only; the id rides the "
                f"{TRACE_HEADER} response header)",
                status=404, kind="unknown_trace",
            )
        document = trace.to_json()
        document["protocol"] = PROTOCOL_VERSION
        return 200, document

    def handle_metrics(self) -> tuple[int, str]:
        """``GET /metrics``: Prometheus text exposition format."""
        with self._counter_lock:
            by_route = dict(self._requests)
            errors = self._errors
        admission = self.gate.snapshot()
        resilience = self.registry.resilience_totals()
        lines = [
            "# HELP repro_http_requests_total HTTP requests received, "
            "by route.",
            "# TYPE repro_http_requests_total counter",
            *(metric_line("repro_http_requests_total", by_route[route],
                          {"route": route})
              for route in sorted(by_route)),
            "# HELP repro_http_errors_total HTTP requests answered with "
            "an error status.",
            "# TYPE repro_http_errors_total counter",
            metric_line("repro_http_errors_total", errors),
            "# HELP repro_admission_inflight Requests currently admitted "
            "into the pools.",
            "# TYPE repro_admission_inflight gauge",
            metric_line("repro_admission_inflight", admission["inflight"]),
            "# HELP repro_admission_queued Requests waiting for an "
            "admission slot.",
            "# TYPE repro_admission_queued gauge",
            metric_line("repro_admission_queued", admission["queued"]),
            "# HELP repro_admission_rejected_total Requests shed with 429 "
            "at the admission gate.",
            "# TYPE repro_admission_rejected_total counter",
            metric_line("repro_admission_rejected_total",
                        admission["rejected"]),
            "# HELP repro_resilience_events_total Resilience events "
            "(worker crashes, retries, quarantines, backend fallbacks, "
            "pool evictions).",
            "# TYPE repro_resilience_events_total counter",
            *(metric_line("repro_resilience_events_total",
                          resilience[kind], {"kind": kind})
              for kind in sorted(resilience)),
            "# HELP repro_pools_live Warm pools currently in the "
            "registry.",
            "# TYPE repro_pools_live gauge",
            metric_line("repro_pools_live", len(self.registry)),
            "# HELP repro_uptime_seconds Seconds since the server "
            "started.",
            "# TYPE repro_uptime_seconds gauge",
            metric_line("repro_uptime_seconds",
                        time.time() - self.started_at),
        ]
        if self.recorder is not None:
            lines.extend(self.recorder.render_metrics())
        return 200, "\n".join(lines) + "\n"

    # -- POST handlers -------------------------------------------------------

    def _check_capabilities(self, batch: ParsedBatch,
                            pool: SimulationPool) -> None:
        """Reject a request the pool's backend cannot honor — before it
        is scheduled, with a structured 4xx instead of a per-item error."""
        for run in batch.runs:
            if run.override is not None and not pool.supports_override:
                raise ProtocolError(
                    f"backend '{batch.backend}' does not support per-cycle "
                    "overrides (supports_override is off)",
                    status=422, kind="unsupported_capability",
                )

    def _run_parsed(
        self, batch: ParsedBatch, default_timeout: float | None,
        tb: TraceBuilder | None = None,
    ) -> tuple[BatchResult, dict | None]:
        """Admit, resolve the pool (fallback chain included), and run.

        The admission gate covers everything expensive — pool creation
        (a compile, potentially) and the simulations themselves — while
        parsing stayed outside it: rejecting a malformed request must
        work even on a saturated server.

        With a :class:`TraceBuilder` the stages become spans: the wait in
        the admission gate (``admission_wait``), pool resolution
        including any warm prepare/compile (``pool_resolve``), and the
        whole scheduling-to-collection envelope (``executor_dispatch``),
        plus the finished items' worker-side spans.
        """
        batch = with_default_timeout(batch, default_timeout)
        self.gate.acquire()
        if tb is not None:
            tb.mark("admission_wait")
            tb.annotate(label=batch.label, backend=batch.backend,
                        executor=batch.executor)
        try:
            # Two attempts: a request can lose an LRU-eviction race — it
            # resolved a pool that another request's insert then drained.
            # The closed-pool error is deterministic and the second
            # resolve builds (or finds) a fresh pool, so one retry is
            # exactly enough; any other failure propagates untouched.
            for attempt in (0, 1):
                pool, degraded = self.registry.pool_for(batch)
                if tb is not None:
                    tb.mark("pool_resolve")
                    tb.annotate(backend=pool.backend_name)
                self._check_capabilities(batch, pool)
                try:
                    result = pool.run_batch(list(batch.runs))
                except ServingError:
                    if attempt or not pool.closed:
                        raise
                    continue
                if tb is not None:
                    tb.mark("executor_dispatch")
                    tb.add_items(result.items)
                return result, degraded
            raise AssertionError("unreachable")
        finally:
            self.gate.release()

    def handle_batch(
        self, doc: object, default_timeout: float | None = None,
        tb: TraceBuilder | None = None,
    ) -> tuple[int, dict]:
        batch = parse_batch_request(
            doc, self.default_backend, self.default_executor
        )
        result, degraded = self._run_parsed(batch, default_timeout, tb)
        document = batch_result_to_json(result)
        if degraded is not None:
            document["degraded"] = degraded
        return 200, document

    def handle_run(
        self, doc: object, default_timeout: float | None = None,
        tb: TraceBuilder | None = None,
    ) -> tuple[int, dict]:
        batch = parse_run_request(
            doc, self.default_backend, self.default_executor
        )
        result, degraded = self._run_parsed(batch, default_timeout, tb)
        item = result.items[0]
        if not item.ok:
            raise item.error
        document = batch_result_to_json(result)
        single = document["items"][0]["result"]
        response = {
            "protocol": PROTOCOL_VERSION,
            "backend": result.backend,
            "executor": result.executor,
            "result": single,
        }
        if degraded is not None:
            response["degraded"] = degraded
        return 200, response
