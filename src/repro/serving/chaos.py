"""Fault-injection shims for exercising the serving resilience layer.

The paper's methodology is to inject faults into a simulated machine and
observe that behavior stays well-defined; this module applies the same
idea to the serving stack itself.  Each shim is a picklable, module-level
callable usable as a :class:`RunRequest` ``override`` hook — the one
per-cycle call site every backend shares — so the same fault travels
unchanged through the serial, thread and process executors (including a
fork/spawn pickle round-trip into pool workers, which classes defined in
a test module would not survive).

* :class:`KillWorker` — terminates the executing process abruptly
  (``os._exit``), simulating an OOM-killed or segfaulted pool worker.
  Drives the process executor's ``BrokenProcessPool`` recovery path:
  respawn, retry, poisoned-request quarantine.
* :class:`SleepyOverride` — sleeps a little on every hook call, so a run
  overshoots its deadline while still executing cooperatively.  Drives
  the instrumentation layer's cooperative deadline check.
* :class:`HangOverride` — one long blocking sleep, simulating a worker
  stuck in a single call the cooperative check can never interrupt.
  Drives the process executor's wall-clock backstop.

With the fleet layer the chaos surface grew from pool workers to whole
server processes: :func:`hard_kill` is the ``kill -9`` a supervisor must
survive, and :func:`await_condition` is the polling primitive the fleet
scenarios use to time their kills (e.g. "once the batch has *arrived* at
the home node, kill it") instead of sleeping and hoping.

These shims live in the package (rather than the chaos test suite) so
they import cleanly inside worker processes; they are test/ops tooling,
not part of the serving API surface.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable


def await_condition(
    predicate: Callable[[], bool],
    timeout: float = 10.0,
    interval: float = 0.02,
    message: str = "condition",
) -> None:
    """Poll *predicate* until it holds or *timeout* elapses.

    The chaos scenarios are races by construction (kill a node while a
    batch is in flight); this keeps them deterministic by synchronising
    on observable state transitions rather than wall-clock sleeps.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError(f"{message}: not reached within {timeout:g}s")


def hard_kill(pid: int) -> None:
    """``SIGKILL`` a process — the un-catchable death (OOM killer,
    ``kill -9``) that exercises crash *detection*, never graceful paths."""
    os.kill(pid, signal.SIGKILL)


@dataclass(frozen=True)
class KillWorker:
    """An override hook that kills the executing process.

    ``spare_pid`` guards the caller: the shim refuses to kill the process
    it was constructed in (construct it in the test/parent process), so a
    serial or thread executor running the same request raises a normal,
    per-item-capturable error instead of taking the suite down.
    ``after_cycle`` delays the kill so a few cycles complete first,
    placing the death mid-run rather than at cycle zero.
    """

    spare_pid: int
    exit_code: int = 13
    after_cycle: int = 0

    def __call__(self, name: str, value: int, cycle: int) -> int:
        if cycle >= self.after_cycle:
            if os.getpid() == self.spare_pid:
                raise RuntimeError(
                    "KillWorker refused to kill the spared process "
                    f"(pid {self.spare_pid}); run this request on the "
                    "process executor to observe a worker crash"
                )
            os._exit(self.exit_code)
        return value


@dataclass(frozen=True)
class SleepyOverride:
    """An override hook that dawdles: ``seconds_per_call`` of sleep on
    every component evaluation, guaranteeing a deadline overrun that the
    cooperative check interrupts between evaluations."""

    seconds_per_call: float = 0.005

    def __call__(self, name: str, value: int, cycle: int) -> int:
        time.sleep(self.seconds_per_call)
        return value


@dataclass
class HangOverride:
    """An override hook that blocks hard: one uninterruptible
    ``sleep_seconds`` sleep on its first call, simulating a run stuck
    inside a single blocking operation.  Only the process executor's
    wall-clock backstop can bound this — never run it on the serial or
    thread executor without a plan for the stuck thread.

    The sleep fires once per process (the flag resets with the pickle
    round-trip into a worker): after it returns, the run proceeds at
    normal speed, so a cooperative deadline set alongside can still
    abort it and the abandoned worker does not stay wedged forever.
    """

    sleep_seconds: float = 60.0
    _slept: bool = field(default=False, repr=False, compare=False)

    def __call__(self, name: str, value: int, cycle: int) -> int:
        if not self._slept:
            self._slept = True
            time.sleep(self.sleep_seconds)
        return value
