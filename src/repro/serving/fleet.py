"""Fleet supervisor: child lifecycle for N ``repro serve`` processes.

A single ``repro serve`` process is fault-tolerant inside (worker-crash
quarantine, deadlines, backpressure) but is still one process: an OOM
kill takes the whole service down.  The :class:`FleetSupervisor` closes
that gap by spawning N child servers on ephemeral ports and babysitting
them:

* **spawn** — children bind port 0 and publish the chosen port through
  ``--port-file``; the supervisor never guesses ports or races for them;
* **health** — liveness is the child process itself (``poll()``),
  readiness is the child's ``/readyz`` probed every ``health_interval``
  seconds, so a saturated or draining child is routed around without
  being restarted;
* **crash recovery** — a dead child is respawned with capped exponential
  backoff (:class:`Backoff`); a child that dies ``bench_after`` times
  within ``bench_window`` seconds is *benched* (:class:`FlapGuard`) —
  taken out of rotation for good rather than crash-looped;
* **drain** — :meth:`FleetSupervisor.stop` performs a *rolling* drain:
  one node at a time gets ``SIGTERM`` (which the serve CLI maps onto the
  graceful ``close()`` path) and up to ``drain_timeout`` seconds to
  finish in-flight work before ``SIGKILL``.

The supervisor knows nothing about HTTP routing; the front door that
shards requests over these children lives in
:mod:`repro.serving.router`.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ServingError

__all__ = [
    "Backoff",
    "FleetError",
    "FlapGuard",
    "FleetNode",
    "FleetSupervisor",
    "NODE_STATES",
]


class FleetError(ServingError):
    """The fleet could not reach the state it was asked for."""


#: Node lifecycle.  ``spawning`` → ``ready`` once /readyz answers 200;
#: ``ready`` ↔ ``suspect`` on probe/forward failures; a dead process goes
#: ``restarting`` (backoff, then respawn) or ``benched`` (flapping);
#: ``stopped`` is terminal after a drain.
NODE_STATES = ("spawning", "ready", "suspect", "restarting", "benched", "stopped")


class Backoff:
    """Capped exponential restart backoff: ``min(cap, base * factor**n)``."""

    def __init__(self, base: float = 0.25, factor: float = 2.0, cap: float = 8.0):
        if base <= 0:
            raise ValueError(f"base must be positive, got {base!r}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor!r}")
        if cap < base:
            raise ValueError(f"cap {cap!r} must be >= base {base!r}")
        self.base = base
        self.factor = factor
        self.cap = cap

    def delay(self, attempt: int) -> float:
        """Seconds to wait before restart *attempt* (0-based)."""
        return min(self.cap, self.base * self.factor ** max(0, attempt))


class FlapGuard:
    """Bench detector: ``max_crashes`` crashes within a sliding ``window``.

    A node that keeps dying is more dangerous in rotation than out of
    it — every restart eats a backoff delay and every routed request
    risks a failover.  The guard keeps crash timestamps, drops the ones
    older than the window, and reports :meth:`flapping` when the node
    has earned a bench.  The clock is injectable for deterministic
    tests.
    """

    def __init__(
        self,
        max_crashes: int = 3,
        window: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_crashes < 1:
            raise ValueError(f"max_crashes must be >= 1, got {max_crashes!r}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.max_crashes = max_crashes
        self.window = window
        self._clock = clock
        self._crashes: list[float] = []

    def record(self) -> None:
        now = self._clock()
        cutoff = now - self.window
        self._crashes = [stamp for stamp in self._crashes if stamp >= cutoff]
        self._crashes.append(now)

    def flapping(self) -> bool:
        return len(self._crashes) >= self.max_crashes


class FleetNode:
    """One supervised child server.  All fields are guarded by the
    supervisor's lock; tests and the router read through the snapshot
    methods on :class:`FleetSupervisor` instead of poking these."""

    def __init__(self, node_id: str, index: int, flap: FlapGuard):
        self.node_id = node_id
        self.index = index
        self.flap = flap
        self.process: subprocess.Popen | None = None
        self.port_file: Path | None = None
        self.url: str | None = None
        self.state = "stopped"
        self.restarts = 0
        self.crashes = 0
        self.restart_attempt = 0
        self.restart_at: float | None = None
        self.spawned_at: float | None = None
        self.last_exit_code: int | None = None
        self.last_error: str | None = None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def snapshot(self) -> dict:
        return {
            "id": self.node_id,
            "state": self.state,
            "url": self.url,
            "pid": self.pid,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "benched": self.state == "benched",
            "last_exit_code": self.last_exit_code,
            "last_error": self.last_error,
        }


class FleetSupervisor:
    """Spawn and babysit ``nodes`` child ``repro serve`` processes.

    ``child_args`` is appended verbatim to every child's command line
    (backend, executor, worker counts...); the supervisor itself owns
    only ``--host/--port/--port-file``.  A monitor thread drives the
    lifecycle in `NODE_STATES`; the router consumes
    :meth:`ready_nodes` and reports failures back through
    :meth:`mark_suspect`.
    """

    def __init__(
        self,
        nodes: int = 2,
        child_args: Sequence[str] = (),
        *,
        drain_timeout: float = 10.0,
        health_interval: float = 0.25,
        probe_timeout: float = 2.0,
        spawn_timeout: float = 30.0,
        bench_after: int = 3,
        bench_window: float = 30.0,
        backoff: Backoff | None = None,
        python: str = sys.executable,
        log_dir: str | os.PathLike | None = None,
        trace_sink: str | None = None,
        trace_dir: str | os.PathLike | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if nodes < 1:
            raise ValueError(f"a fleet needs at least one node, got {nodes!r}")
        if trace_sink not in (None, "none") and trace_dir is None:
            raise ValueError(
                f"trace_sink {trace_sink!r} needs a trace_dir to write into"
            )
        self.child_args = tuple(str(arg) for arg in child_args)
        self.trace_sink = None if trace_sink in (None, "", "none") else trace_sink
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.drain_timeout = drain_timeout
        self.health_interval = health_interval
        self.probe_timeout = probe_timeout
        self.spawn_timeout = spawn_timeout
        self.bench_after = bench_after
        self.bench_window = bench_window
        self.backoff = backoff or Backoff()
        self.python = python
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self.draining = False
        self.monitor_errors = 0
        self._clock = clock
        self._lock = threading.RLock()
        self._monitor: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._rundir: Path | None = None
        self.nodes = [
            FleetNode(f"node-{i}", i, FlapGuard(bench_after, bench_window, clock))
            for i in range(nodes)
        ]

    # -- queries (router + tests) ------------------------------------

    def node(self, node_id: str) -> FleetNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def node_ids(self) -> list[str]:
        return [node.node_id for node in self.nodes]

    def ready_nodes(self) -> list[tuple[str, str]]:
        """``(node_id, url)`` for every node currently routable."""
        with self._lock:
            return [
                (node.node_id, node.url)
                for node in self.nodes
                if node.state == "ready" and node.url is not None
            ]

    def describe(self) -> list[dict]:
        with self._lock:
            return [node.snapshot() for node in self.nodes]

    def mark_suspect(self, node_id: str, reason: str = "") -> None:
        """Router feedback: a forward to this node just failed at the
        connection level.  Take it out of rotation until the next
        successful readiness probe (or until the monitor notices the
        process died and handles the crash properly)."""
        with self._lock:
            for node in self.nodes:
                if node.node_id == node_id and node.state == "ready":
                    node.state = "suspect"
                    node.last_error = reason or "marked suspect by the router"

    # -- lifecycle ----------------------------------------------------

    def start(self, wait: bool = True, timeout: float | None = None):
        with self._lock:
            if self._monitor is not None:
                raise FleetError("fleet supervisor already started")
            self._rundir = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
            if self.log_dir is not None:
                self.log_dir.mkdir(parents=True, exist_ok=True)
            for node in self.nodes:
                self._spawn(node)
            self._stop_event.clear()
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
            )
            self._monitor.start()
        if wait:
            budget = self.spawn_timeout if timeout is None else timeout
            deadline = time.monotonic() + budget
            while time.monotonic() < deadline:
                with self._lock:
                    if all(node.state == "ready" for node in self.nodes):
                        return self
                time.sleep(0.02)
            with self._lock:
                states = {node.node_id: node.state for node in self.nodes}
            self.stop()
            raise FleetError(
                f"fleet did not become ready within {budget:g}s: "
                + ", ".join(f"{node_id}={state}" for node_id, state in states.items())
            )
        return self

    def stop(self) -> list[dict]:
        """Rolling drain: SIGTERM each node in turn, give it
        ``drain_timeout`` seconds to exit cleanly, SIGKILL stragglers.
        Returns one report entry per node, in drain order."""
        with self._lock:
            self.draining = True
        self._stop_event.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=self.health_interval * 4 + 2.0)
        report = [self._drain_node(node) for node in self.nodes]
        if self._rundir is not None:
            shutil.rmtree(self._rundir, ignore_errors=True)
        return report

    # -- internals ----------------------------------------------------

    def _child_env(self) -> dict:
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
        return env

    def _spawn(self, node: FleetNode) -> None:
        assert self._rundir is not None
        port_file = self._rundir / f"{node.node_id}.port"
        try:
            port_file.unlink()
        except FileNotFoundError:
            pass
        command = [
            self.python,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--drain-timeout",
            str(self.drain_timeout),
            *self.child_args,
        ]
        if self.trace_sink is not None and self.trace_dir is not None:
            # One exporter directory per node: the sinks are single-writer
            # (one process appending/one SQLite WAL), so siblings must
            # never share a file.
            command += [
                "--trace-sink", self.trace_sink,
                "--trace-dir", str(self.trace_dir / node.node_id),
            ]
        if self.log_dir is not None:
            sink = open(self.log_dir / f"{node.node_id}.log", "ab")
        else:
            sink = subprocess.DEVNULL
        try:
            node.process = subprocess.Popen(
                command,
                stdout=sink,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
                env=self._child_env(),
            )
        finally:
            if sink is not subprocess.DEVNULL:
                sink.close()
        node.port_file = port_file
        node.url = None
        node.state = "spawning"
        node.spawned_at = self._clock()
        node.restart_at = None

    def _read_port(self, node: FleetNode) -> int | None:
        if node.port_file is None:
            return None
        try:
            text = node.port_file.read_text().strip()
        except OSError:
            return None
        if not text:
            return None
        try:
            return int(text)
        except ValueError:
            return None

    def _probe(self, url: str | None) -> bool:
        if url is None:
            return False
        try:
            with urllib.request.urlopen(url + "/readyz", timeout=self.probe_timeout) as response:
                return response.status == 200
        except Exception:
            return False

    def _on_crash(self, node: FleetNode, exit_code: int | None) -> None:
        # Lock held by the caller.
        node.crashes += 1
        node.last_exit_code = exit_code
        node.flap.record()
        node.process = None
        node.url = None
        if node.flap.flapping():
            node.state = "benched"
            node.last_error = (
                f"benched after {node.crashes} crashes "
                f"({self.bench_after} within {self.bench_window:g}s)"
            )
            return
        delay = self.backoff.delay(node.restart_attempt)
        node.restart_attempt += 1
        node.restarts += 1
        node.state = "restarting"
        node.restart_at = self._clock() + delay
        node.last_error = f"exited with code {exit_code}; restart in {delay:g}s"

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.health_interval):
            try:
                self._tick()
            except Exception:
                # The monitor must outlive any single bad tick; the
                # counter makes a silent failure loop at least visible.
                self.monitor_errors += 1

    def _tick(self) -> None:
        now = self._clock()
        for node in self.nodes:
            with self._lock:
                state = node.state
                process = node.process
                if state in ("benched", "stopped"):
                    continue
                if state == "restarting":
                    if node.restart_at is not None and now >= node.restart_at:
                        try:
                            self._spawn(node)
                        except Exception as exc:
                            node.last_error = f"respawn failed: {exc}"
                            node.restart_at = now + self.backoff.delay(node.restart_attempt)
                            node.restart_attempt += 1
                    continue
                exit_code = process.poll() if process is not None else None
                if exit_code is not None:
                    self._on_crash(node, exit_code)
                    continue
                if state == "spawning" and node.url is None:
                    port = self._read_port(node)
                    if port is None:
                        started = node.spawned_at
                        if started is not None and now - started > self.spawn_timeout:
                            node.last_error = (
                                f"no port published within {self.spawn_timeout:g}s"
                            )
                            process.kill()
                            process.wait()
                            self._on_crash(node, process.returncode)
                        continue
                    node.url = f"http://127.0.0.1:{port}"
                url = node.url
            # The HTTP probe runs outside the lock; re-check that the
            # node was not replaced or stopped while we waited.
            ready = self._probe(url)
            with self._lock:
                if node.process is not process or node.state not in (
                    "spawning",
                    "ready",
                    "suspect",
                ):
                    continue
                if ready:
                    node.state = "ready"
                    node.restart_attempt = 0
                    node.last_error = None
                elif node.state == "ready":
                    node.state = "suspect"
                    node.last_error = "readiness probe failed"

    def _drain_node(self, node: FleetNode) -> dict:
        with self._lock:
            process = node.process
            pid = node.pid
            node.state = "stopped"
            node.url = None
            node.process = None
        entry = {"node": node.node_id, "pid": pid, "clean": True, "forced": False, "seconds": 0.0}
        if process is None or process.poll() is not None:
            return entry
        started = time.monotonic()
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=self.drain_timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
            entry["forced"] = True
        entry["seconds"] = round(time.monotonic() - started, 3)
        entry["clean"] = not entry["forced"] and process.returncode == 0
        return entry
