"""Batch requests and results for the serving layer.

A batch is *N variants of one machine*: the specification (and therefore
the prepare-time artifact) is fixed, while each :class:`RunRequest` varies
the things a run may vary — cycle count, memory-mapped inputs, tracing,
statistics collection and the per-cycle ``override`` hook.  This split is
what lets the pool pay preparation once and fan the runs out.

:class:`BatchResult` collects one :class:`BatchItem` per request, in
request order, each holding either a
:class:`~repro.core.results.SimulationResult` or the exception that run
raised — a poisoned variant never takes the rest of the batch down.  The
aggregate exposes the serving numbers that the ``BENCH_batch.json``
benchmark reports: pool-wide wall-clock seconds and runs per second, plus
the per-worker breakdown (which worker ran what, its busy-time
throughput) and queue-wait statistics that tell a capacity planner
whether a batch was limited by compute or by scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TYPE_CHECKING

from repro.core.backend import ValueOverride
from repro.core.iosystem import IOSystem, QueueIO
from repro.core.results import SimulationResult
from repro.core.trace import TraceOptions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.simulator import BackendLike
    from repro.rtl.spec import Specification


@dataclass(frozen=True)
class RunRequest:
    """One simulation run inside a batch.

    ``inputs`` feeds a fresh non-strict :class:`~repro.core.iosystem.QueueIO`
    per run (an :class:`~repro.core.iosystem.IOSystem` is stateful, so it can
    never be shared between runs); pass ``io_factory`` to supply any other
    I/O system.  ``override`` works on every built-in backend; the pool
    consults the prepared simulation's ``supports_override`` capability
    flag (:meth:`check_supported`) so a third-party backend that cannot
    honor the hook fails with a clear :class:`~repro.errors.ServingError`
    instead of a mid-run surprise.

    ``timeout_seconds`` is the run's deadline, measured from submission:
    queue wait counts against it, a run still queued past its deadline is
    shed without executing, and a running simulation is interrupted
    cooperatively by the instrumentation layer
    (:func:`repro.core.instrument.run_deadline`) — in-process for the
    serial/thread executors, inside the worker for the process executor,
    which additionally arms a wall-clock backstop at twice the deadline
    for workers that stop responding entirely.  A timed-out run becomes a
    :class:`~repro.errors.DeadlineExceededError` item, never a hang.
    """

    cycles: int | None = None
    inputs: tuple[int | str, ...] = ()
    trace: TraceOptions | bool | None = None
    collect_stats: bool = True
    override: ValueOverride | None = None
    #: caller-chosen label carried through to the matching :class:`BatchItem`
    tag: str | None = None
    #: builds this run's I/O system; defaults to ``QueueIO(inputs, strict=False)``
    io_factory: Callable[[], IOSystem] | None = None
    #: deadline for this run in seconds from submission, or ``None``
    timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )

    def make_io(self) -> IOSystem:
        """Build the fresh per-run I/O system this request describes."""
        if self.io_factory is not None:
            return self.io_factory()
        return QueueIO(self.inputs, strict=False)

    def check_supported(self, prepared) -> None:
        """Raise ``ServingError`` if *prepared* cannot honor this request.

        Consults the :class:`~repro.core.backend.PreparedSimulation`
        capability flags instead of letting the run fail mid-flight.
        """
        if self.override is not None and not getattr(
            prepared, "supports_override", True
        ):
            from repro.errors import ServingError

            raise ServingError(
                f"backend '{prepared.backend_name}' does not support "
                "per-cycle value overrides (supports_override is False)"
            )


@dataclass
class BatchRequest:
    """N run variants against one machine specification."""

    spec: "Specification"
    runs: Sequence[RunRequest]
    backend: "BackendLike" = "threaded"

    def __len__(self) -> int:
        return len(self.runs)

    @classmethod
    def repeat(
        cls,
        spec: "Specification",
        count: int,
        cycles: int | None = None,
        inputs: Sequence[int | str] = (),
        backend: "BackendLike" = "threaded",
        collect_stats: bool = True,
    ) -> "BatchRequest":
        """*count* identical runs (the load-test / throughput shape)."""
        if count < 0:
            raise ValueError(f"run count must be non-negative, got {count}")
        run = RunRequest(
            cycles=cycles, inputs=tuple(inputs), collect_stats=collect_stats
        )
        return cls(spec=spec, runs=[run] * count, backend=backend)

    @classmethod
    def sweep(
        cls,
        spec: "Specification",
        input_sets: Iterable[Sequence[int | str]],
        cycles: int | None = None,
        backend: "BackendLike" = "threaded",
    ) -> "BatchRequest":
        """One run per input sequence (the parameter-sweep shape)."""
        runs = [
            RunRequest(cycles=cycles, inputs=tuple(inputs))
            for inputs in input_sets
        ]
        return cls(spec=spec, runs=runs, backend=backend)


@dataclass
class BatchItem:
    """Outcome of one request: a result or the exception the run raised."""

    index: int
    request: RunRequest
    result: SimulationResult | None = None
    error: Exception | None = None
    #: wall-clock seconds this run occupied its worker (prepare + run)
    seconds: float = 0.0
    #: label of the worker that ran this request (thread name, ``pid-N``
    #: for a worker process, ``serial-0`` inline), or ``None`` when the
    #: run never reached a worker (e.g. its chunk failed to pickle)
    worker: str | None = None
    #: seconds this request (or its chunk) waited between submission and
    #: execution start
    queue_seconds: float = 0.0
    #: per-item trace spans (:class:`~repro.serving.tracing.Span` tuples):
    #: ``pool_queue`` plus the worker-stamped ``worker_run`` /
    #: ``lane_group`` / ``chunk_ipc`` / terminal ``error`` records, with
    #: ``parent`` indices relative to this tuple (``None`` = attach to the
    #: request's dispatch span at trace assembly)
    spans: tuple = ()

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def tag(self) -> str | None:
        return self.request.tag


@dataclass
class BatchResult:
    """Everything a batch produced, in request order."""

    backend: str
    pool_size: int
    items: list[BatchItem] = field(default_factory=list)
    #: wall-clock seconds from first submit to last result
    wall_seconds: float = 0.0
    #: seconds the pool spent on its warm-up ``prepare`` of the spec
    prepare_seconds: float = 0.0
    #: execution strategy that ran the batch (serial / thread / process)
    executor: str = "thread"
    #: worker processes that died while this batch ran (process executor)
    worker_crashes: int = 0
    #: chunks/requests resubmitted after a worker crash
    worker_retries: int = 0
    #: requests quarantined as poisoned (killed workers twice)
    quarantined: int = 0

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def ok(self) -> bool:
        """True when every run in the batch succeeded."""
        return all(item.ok for item in self.items)

    @property
    def results(self) -> list[SimulationResult]:
        """Successful results, in request order."""
        return [item.result for item in self.items if item.ok]

    @property
    def failures(self) -> list[BatchItem]:
        """Items whose run raised, in request order."""
        return [item for item in self.items if not item.ok]

    @property
    def timeouts(self) -> list[BatchItem]:
        """Items that missed their deadline, in request order."""
        return [
            item for item in self.items
            if isinstance(item.error, TimeoutError)
        ]

    @property
    def runs_per_second(self) -> float:
        """Batch throughput against wall-clock time."""
        if self.wall_seconds <= 0.0:
            return float("inf") if self.items else 0.0
        return len(self.items) / self.wall_seconds

    @property
    def runs_by_worker(self) -> dict[str, int]:
        """How many runs each worker executed (labelled items only)."""
        counts: dict[str, int] = {}
        for item in self.items:
            if item.worker is not None:
                counts[item.worker] = counts.get(item.worker, 0) + 1
        return counts

    @property
    def per_worker_runs_per_second(self) -> dict[str, float]:
        """Each worker's busy-time throughput: runs / seconds spent running.

        Unlike the pool-wide :attr:`runs_per_second` (which divides by
        wall-clock and therefore folds in queueing and idle workers), this
        is the rate each worker achieved while actually executing — the
        number that should scale with per-core simulation speed.
        """
        busy: dict[str, float] = {}
        counts: dict[str, int] = {}
        for item in self.items:
            if item.worker is None:
                continue
            counts[item.worker] = counts.get(item.worker, 0) + 1
            busy[item.worker] = busy.get(item.worker, 0.0) + item.seconds
        return {
            worker: (counts[worker] / seconds if seconds > 0.0 else 0.0)
            for worker, seconds in busy.items()
        }

    @property
    def queue_seconds_mean(self) -> float:
        """Mean seconds a request waited between submission and execution."""
        if not self.items:
            return 0.0
        return sum(item.queue_seconds for item in self.items) / len(self.items)

    @property
    def queue_seconds_max(self) -> float:
        """Worst queue wait across the batch."""
        if not self.items:
            return 0.0
        return max(item.queue_seconds for item in self.items)

    def raise_for_errors(self) -> None:
        """Re-raise the first failure (chained), if any run failed."""
        for item in self.items:
            if item.error is not None:
                raise item.error

    def summary(self) -> str:
        succeeded = sum(1 for item in self.items if item.ok)
        return (
            f"{self.backend}: {succeeded}/{len(self.items)} runs ok on "
            f"{self.pool_size} {self.executor} workers in "
            f"{self.wall_seconds:.4f}s wall "
            f"({self.runs_per_second:.1f} runs/sec, mean queue wait "
            f"{self.queue_seconds_mean * 1e3:.1f} ms)"
        )
