"""Hardware construction: netlists, part mapping and bills of materials."""

from repro.synth.mapper import PartUse, map_component, map_specification
from repro.synth.netlist import Netlist, Wire, extract_netlist, infer_widths
from repro.synth.parts import APPENDIX_F_PART_NAMES, CATALOG, Part, get_part
from repro.synth.report import (
    BillOfMaterials,
    HardwareReport,
    bill_of_materials,
    hardware_report,
)

__all__ = [
    "PartUse",
    "map_component",
    "map_specification",
    "Netlist",
    "Wire",
    "extract_netlist",
    "infer_widths",
    "APPENDIX_F_PART_NAMES",
    "CATALOG",
    "Part",
    "get_part",
    "BillOfMaterials",
    "HardwareReport",
    "bill_of_materials",
    "hardware_report",
]
