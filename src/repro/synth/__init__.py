"""Hardware construction: netlists, part mapping and bills of materials.

Section 5.3 of the paper: "A hardware circuit can be easily built from a
hardware specification in ASIM II" — the specification *is* a list of
components wired together by name.  This package extracts those artifacts:

* :mod:`repro.synth.netlist` — the wiring list: one wire per component
  output with inferred bit widths and every consumer's bit field;
* :mod:`repro.synth.parts` — a small 7400-series part catalog in the
  spirit of the paper's Appendix-F construction;
* :mod:`repro.synth.mapper` — maps ALUs, selectors and memories onto
  catalog parts with package counts;
* :mod:`repro.synth.report` — the human-readable combination of all three
  (the CLI's ``netlist`` command).

Synthesis reads only the specification — no backend is involved — so the
reports are identical whichever simulator runs the machine.
"""

from repro.synth.mapper import PartUse, map_component, map_specification
from repro.synth.netlist import Netlist, Wire, extract_netlist, infer_widths
from repro.synth.parts import APPENDIX_F_PART_NAMES, CATALOG, Part, get_part
from repro.synth.report import (
    BillOfMaterials,
    HardwareReport,
    bill_of_materials,
    hardware_report,
)

__all__ = [
    "PartUse",
    "map_component",
    "map_specification",
    "Netlist",
    "Wire",
    "extract_netlist",
    "infer_widths",
    "APPENDIX_F_PART_NAMES",
    "CATALOG",
    "Part",
    "get_part",
    "BillOfMaterials",
    "HardwareReport",
    "bill_of_materials",
    "hardware_report",
]
