"""Hardware part catalog.

Appendix F of the paper closes with the parts used to realise the tiny
computer by hand: "2K x 8 bit RAM, quad AND, dual D flip flop, 4 bit adder,
4 bit comparator, 8 to 1 multiplexor, dual 4 to 1 multiplexor, quad 2 to 1
multiplexor, hex D flip flop, quad D flip flop, 4 bit alu".  This module
defines that catalog so the mapper (:mod:`repro.synth.mapper`) can turn a
specification into a bill of materials using the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Part:
    """One catalog part (roughly, one 7400-series style package)."""

    name: str
    category: str           # "gate", "arithmetic", "multiplexor", "storage"
    bits_per_package: int    # how many signal bits one package covers
    inputs_per_package: int  # for multiplexors: selectable inputs
    description: str


#: The Appendix F part list, plus a handful of gates the ALU inliner can use.
CATALOG: dict[str, Part] = {
    "2K x 8 bit RAM": Part(
        "2K x 8 bit RAM", "storage", 8, 1, "2048-cell by 8-bit random access memory"
    ),
    "quad AND": Part("quad AND", "gate", 4, 2, "four 2-input AND gates"),
    "quad OR": Part("quad OR", "gate", 4, 2, "four 2-input OR gates"),
    "quad XOR": Part("quad XOR", "gate", 4, 2, "four 2-input XOR gates"),
    "hex inverter": Part("hex inverter", "gate", 6, 1, "six NOT gates"),
    "dual D flip flop": Part(
        "dual D flip flop", "storage", 2, 1, "two edge-triggered D flip-flops"
    ),
    "quad D flip flop": Part(
        "quad D flip flop", "storage", 4, 1, "four edge-triggered D flip-flops"
    ),
    "hex D flip flop": Part(
        "hex D flip flop", "storage", 6, 1, "six edge-triggered D flip-flops"
    ),
    "4 bit adder": Part("4 bit adder", "arithmetic", 4, 2, "4-bit binary full adder"),
    "4 bit comparator": Part(
        "4 bit comparator", "arithmetic", 4, 2, "4-bit magnitude comparator"
    ),
    "4 bit alu": Part(
        "4 bit alu", "arithmetic", 4, 2, "4-bit arithmetic logic unit (74181 style)"
    ),
    "quad 2 to 1 multiplexor": Part(
        "quad 2 to 1 multiplexor", "multiplexor", 4, 2, "four 2-input multiplexors"
    ),
    "dual 4 to 1 multiplexor": Part(
        "dual 4 to 1 multiplexor", "multiplexor", 2, 4, "two 4-input multiplexors"
    ),
    "8 to 1 multiplexor": Part(
        "8 to 1 multiplexor", "multiplexor", 1, 8, "one 8-input multiplexor"
    ),
}

#: Capacity (cells x bits) of the catalog RAM part.
RAM_BITS_PER_PACKAGE = 2048 * 8

#: The exact list printed at the end of Appendix F, for the fidelity test.
APPENDIX_F_PART_NAMES: tuple[str, ...] = (
    "2K x 8 bit RAM",
    "quad AND",
    "dual D flip flop",
    "4 bit adder",
    "4 bit comparator",
    "8 to 1 multiplexor",
    "dual 4 to 1 multiplexor",
    "quad 2 to 1 multiplexor",
    "hex D flip flop",
    "quad D flip flop",
    "4 bit alu",
)


def get_part(name: str) -> Part:
    """Look up a catalog part by name."""
    return CATALOG[name]
