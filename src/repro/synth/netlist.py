"""Netlist extraction (Section 5.3: "Hardware Construction").

"Essentially, ASIM II is a list of hardware components with the wiring
interconnection specified by the names of the components and their bit
fields. ... The specification is most like a block diagram of the circuit."

This module makes that block diagram explicit: every component becomes a
block, every component reference inside an expression becomes a wire from
the producing block's output to a named input port of the consuming block,
carrying the referenced bit range.  The mapper and report modules build the
bill of materials and wiring list from this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.bits import WORD_BITS
from repro.rtl.components import Component
from repro.rtl.expressions import ComponentRef, Expression
from repro.rtl.spec import Specification


@dataclass(frozen=True)
class Wire:
    """A connection from one component's output into another's input port."""

    source: str
    destination: str
    port: str            # which input of the destination ("left", "address", "case3", ...)
    low_bit: int
    high_bit: int

    @property
    def width(self) -> int:
        return self.high_bit - self.low_bit + 1

    def render(self) -> str:
        if self.low_bit == 0 and self.high_bit == WORD_BITS - 1:
            bits = ""
        elif self.low_bit == self.high_bit:
            bits = f".{self.low_bit}"
        else:
            bits = f".{self.low_bit}.{self.high_bit}"
        return f"{self.source}{bits} -> {self.destination}.{self.port}"


@dataclass
class Netlist:
    """Blocks (components) and the wires between them."""

    spec: Specification
    wires: list[Wire] = field(default_factory=list)

    @property
    def blocks(self) -> list[Component]:
        return list(self.spec.components)

    def wires_into(self, name: str) -> list[Wire]:
        return [wire for wire in self.wires if wire.destination == name]

    def wires_out_of(self, name: str) -> list[Wire]:
        return [wire for wire in self.wires if wire.source == name]

    def fanout(self, name: str) -> int:
        """Number of distinct components reading *name*."""
        return len({wire.destination for wire in self.wires_out_of(name)})

    def render_wiring_list(self) -> str:
        """The plain-text wiring list an engineer would wire a prototype from."""
        lines = [f"wiring list for {self.spec.source_name}"]
        for component in self.blocks:
            lines.append(f"{component.kind.name} {component.name}:")
            for wire in self.wires_into(component.name):
                lines.append(f"  {wire.render()}")
        return "\n".join(lines)


def _wires_for_expression(
    expression: Expression, destination: str, port: str
) -> list[Wire]:
    wires = []
    for fld in expression.fields:
        if isinstance(fld, ComponentRef):
            low = fld.low if fld.low is not None else 0
            high = (
                fld.high
                if fld.high is not None
                else (fld.low if fld.low is not None else WORD_BITS - 1)
            )
            wires.append(
                Wire(
                    source=fld.name,
                    destination=destination,
                    port=port,
                    low_bit=low,
                    high_bit=high,
                )
            )
    return wires


def extract_netlist(spec: Specification) -> Netlist:
    """Build the :class:`Netlist` of a specification."""
    netlist = Netlist(spec=spec)
    for component, role, expression in spec.iter_expressions():
        netlist.wires.extend(
            _wires_for_expression(expression, component.name, role)  # type: ignore[arg-type]
        )
    return netlist


def infer_widths(spec: Specification) -> dict[str, int]:
    """Estimate how many bits of each component are actually used.

    A component referenced only through bit fields needs just enough bits to
    cover the highest referenced bit; a component referenced whole (or a
    memory holding large initial values) is assumed to need the full word.
    The Appendix F diagram performs the same narrowing when it picks 4-bit
    and 10-bit parts for the tiny computer.
    """
    widths: dict[str, int] = {}
    whole_word: set[str] = set()
    for _component, _role, expression in spec.iter_expressions():
        for fld in expression.fields:  # type: ignore[attr-defined]
            if not isinstance(fld, ComponentRef):
                continue
            if fld.low is None:
                whole_word.add(fld.name)
                continue
            high = fld.high if fld.high is not None else fld.low
            widths[fld.name] = max(widths.get(fld.name, 1), high + 1)
    result: dict[str, int] = {}
    for component in spec.components:
        if component.name in whole_word or component.name not in widths:
            result[component.name] = WORD_BITS
        else:
            result[component.name] = widths[component.name]
    return result
