"""Map specification components onto catalog parts.

Section 5.3: "Each component in the specification can be replaced with a
hardware component when constructing the prototype ... Enough information
exists so that the engineer can choose appropriate components which perform
the function of the specified component."  The mapper makes that choice the
way the Appendix F diagram does:

* an ALU with a constant gate-like function becomes gate packages (quad
  AND/OR/XOR, hex inverter), a constant add/subtract becomes 4-bit adders, a
  comparison becomes 4-bit comparators, anything else a generic 4-bit ALU;
* a selector becomes multiplexor packages sized by its case count;
* a single-cell memory becomes D flip-flops, a multi-cell memory becomes
  RAM packages.

Component widths come from :func:`repro.synth.netlist.infer_widths`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.optimizer import constant_alu_function
from repro.errors import SynthesisError
from repro.rtl import alu_ops
from repro.rtl.components import Alu, Component, Memory, Selector
from repro.rtl.spec import Specification
from repro.synth.netlist import infer_widths
from repro.synth.parts import CATALOG, RAM_BITS_PER_PACKAGE


@dataclass(frozen=True)
class PartUse:
    """A quantity of one catalog part assigned to one component."""

    component: str
    part: str
    quantity: int

    def __post_init__(self) -> None:
        if self.part not in CATALOG:
            raise SynthesisError(f"unknown part '{self.part}'")
        if self.quantity <= 0:
            raise SynthesisError("part quantity must be positive")


def _packages(width: int, bits_per_package: int) -> int:
    return max(1, math.ceil(width / bits_per_package))


_GATE_PARTS = {
    alu_ops.FN_AND: "quad AND",
    alu_ops.FN_OR: "quad OR",
    alu_ops.FN_XOR: "quad XOR",
    alu_ops.FN_NOT: "hex inverter",
}

_ADDER_FUNCTIONS = {alu_ops.FN_ADD, alu_ops.FN_SUB}
_COMPARATOR_FUNCTIONS = {alu_ops.FN_EQ, alu_ops.FN_LT}
_WIRE_FUNCTIONS = {alu_ops.FN_ZERO, alu_ops.FN_LEFT, alu_ops.FN_RIGHT,
                   alu_ops.FN_UNUSED}


def map_alu(alu: Alu, width: int) -> list[PartUse]:
    """Choose parts for one ALU of the given output *width*."""
    constant = constant_alu_function(alu)
    if constant is not None:
        if constant in _WIRE_FUNCTIONS:
            # pure wiring / constant output: no package needed
            return []
        if constant in _GATE_PARTS:
            part = _GATE_PARTS[constant]
            return [PartUse(alu.name, part, _packages(width, CATALOG[part].bits_per_package))]
        if constant in _ADDER_FUNCTIONS:
            return [PartUse(alu.name, "4 bit adder", _packages(width, 4))]
        if constant in _COMPARATOR_FUNCTIONS:
            return [PartUse(alu.name, "4 bit comparator", _packages(width, 4))]
    return [PartUse(alu.name, "4 bit alu", _packages(width, 4))]


def map_selector(selector: Selector, width: int) -> list[PartUse]:
    """Choose multiplexor packages for one selector."""
    inputs = selector.case_count
    if inputs <= 1:
        return []
    if inputs <= 2:
        part = "quad 2 to 1 multiplexor"
    elif inputs <= 4:
        part = "dual 4 to 1 multiplexor"
    else:
        part = "8 to 1 multiplexor"
    info = CATALOG[part]
    packages = _packages(width, info.bits_per_package)
    if inputs > info.inputs_per_package:
        # cascade multiplexors in a tree for wide selectors (decode ROM style)
        packages *= math.ceil(inputs / info.inputs_per_package)
    return [PartUse(selector.name, part, packages)]


def map_memory(memory: Memory, width: int) -> list[PartUse]:
    """Choose storage parts for one memory."""
    if memory.is_register:
        if width <= 2:
            return [PartUse(memory.name, "dual D flip flop", 1)]
        if width <= 4:
            return [PartUse(memory.name, "quad D flip flop", 1)]
        return [PartUse(memory.name, "hex D flip flop", _packages(width, 6))]
    total_bits = memory.size * width
    return [
        PartUse(memory.name, "2K x 8 bit RAM", _packages(total_bits, RAM_BITS_PER_PACKAGE))
    ]


def map_component(component: Component, width: int) -> list[PartUse]:
    """Choose parts for any component kind."""
    if isinstance(component, Alu):
        return map_alu(component, width)
    if isinstance(component, Selector):
        return map_selector(component, width)
    if isinstance(component, Memory):
        return map_memory(component, width)
    raise SynthesisError(f"unknown component type {type(component)!r}")


def map_specification(spec: Specification) -> list[PartUse]:
    """Map every component of *spec* onto catalog parts."""
    widths = infer_widths(spec)
    uses: list[PartUse] = []
    for component in spec.components:
        uses.extend(map_component(component, widths[component.name]))
    return uses
