"""Bill of materials and hardware construction report."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.rtl.spec import Specification
from repro.synth.mapper import PartUse, map_specification
from repro.synth.netlist import Netlist, extract_netlist, infer_widths


@dataclass
class BillOfMaterials:
    """Aggregated part counts for one specification."""

    spec: Specification
    part_uses: list[PartUse] = field(default_factory=list)

    @property
    def part_counts(self) -> dict[str, int]:
        counts: Counter = Counter()
        for use in self.part_uses:
            counts[use.part] += use.quantity
        return dict(counts)

    @property
    def total_packages(self) -> int:
        return sum(use.quantity for use in self.part_uses)

    @property
    def part_names(self) -> set[str]:
        return {use.part for use in self.part_uses}

    def parts_for(self, component: str) -> list[PartUse]:
        return [use for use in self.part_uses if use.component == component]

    def render(self) -> str:
        lines = [f"bill of materials for {self.spec.source_name}"]
        for part, count in sorted(self.part_counts.items()):
            lines.append(f"  {count:3d} x {part}")
        lines.append(f"  total packages: {self.total_packages}")
        return "\n".join(lines)


@dataclass
class HardwareReport:
    """Everything the hardware-construction pass produces for one spec."""

    spec: Specification
    netlist: Netlist
    bill_of_materials: BillOfMaterials
    widths: dict[str, int]

    def render(self) -> str:
        return "\n\n".join(
            [
                self.bill_of_materials.render(),
                self.netlist.render_wiring_list(),
            ]
        )


def bill_of_materials(spec: Specification) -> BillOfMaterials:
    """Compute the bill of materials for *spec*."""
    return BillOfMaterials(spec=spec, part_uses=map_specification(spec))


def hardware_report(spec: Specification) -> HardwareReport:
    """Produce the full hardware-construction report for *spec*."""
    return HardwareReport(
        spec=spec,
        netlist=extract_netlist(spec),
        bill_of_materials=bill_of_materials(spec),
        widths=infer_widths(spec),
    )
