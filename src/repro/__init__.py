"""Reproduction of ASIM II — architecture simulation with a register transfer language.

The package is organised around the paper's two systems and their substrate:

* :mod:`repro.rtl` — the specification language (ALU / selector / memory
  primitives, expressions, parser, dependency analysis);
* :mod:`repro.interp` — the ASIM-style table interpreter (baseline);
* :mod:`repro.compiler` — the ASIM II-style compiler generating Python (and
  Pascal, for fidelity) simulators;
* :mod:`repro.core` — the public ``Simulator`` facade, I/O, tracing,
  statistics and cross-backend comparison;
* :mod:`repro.isa` — ISAs, assemblers and instruction-set-level simulators;
* :mod:`repro.machines` — bundled example machines (counter, stack machine
  running the Sieve of Eratosthenes, the Appendix-F tiny computer, ...);
* :mod:`repro.synth` — hardware construction (netlist and parts list);
* :mod:`repro.analysis` — fault injection, profiling and equivalence checks;
* :mod:`repro.serving` — batch/parallel serving: one cached prepare
  artifact fanned out over many concurrent runs on a pluggable execution
  strategy — serial, thread, or a true multi-core process pool (the
  lowered program ships to workers once; the persistent artifact cache
  makes their cold start nearly free) — plus an asyncio front-end and
  the long-lived HTTP server (``repro serve``): warm pools kept across
  client requests behind a JSON API, with startup garbage collection of
  the artifact cache (see ``docs/api-reference.md`` / ``docs/serving.md``).
"""

# repro.core must initialise before repro.compiler: the comparison module
# (loaded by repro.core) pulls the backends in, and they in turn import the
# already-loaded repro.core submodules.
from repro.core.comparison import compare_all_backends, compare_backends
from repro.core.iosystem import QueueIO, StreamIO
from repro.core.results import SimulationResult
from repro.core.simulator import BACKEND_NAMES, Simulator, simulate
from repro.core.trace import TraceOptions
from repro.compiler.cache import clear_prepare_cache, prepare_cache_stats
from repro.compiler.specopt import SpecOptPasses, SpecOptReport, optimize_spec
from repro.compiler.threaded import ThreadedBackend
from repro.rtl.builder import SpecBuilder
from repro.rtl.parser import parse_spec, parse_spec_file
from repro.rtl.spec import Specification
from repro.serving import (
    EXECUTOR_NAMES,
    BatchRequest,
    BatchResult,
    RunRequest,
    SimulationPool,
    SimulationServer,
    async_run_batch,
    run_batch,
)

__version__ = "1.10.0"

__all__ = [
    "BACKEND_NAMES",
    "EXECUTOR_NAMES",
    "BatchRequest",
    "BatchResult",
    "RunRequest",
    "SimulationPool",
    "SimulationServer",
    "async_run_batch",
    "run_batch",
    "compare_all_backends",
    "compare_backends",
    "QueueIO",
    "StreamIO",
    "SimulationResult",
    "Simulator",
    "simulate",
    "ThreadedBackend",
    "TraceOptions",
    "SpecBuilder",
    "SpecOptPasses",
    "SpecOptReport",
    "optimize_spec",
    "parse_spec",
    "parse_spec_file",
    "prepare_cache_stats",
    "clear_prepare_cache",
    "Specification",
    "__version__",
]
