"""Two-pass assemblers for the bundled machines.

Two tiny assembly languages are provided:

* the **stack machine** language (one mnemonic per line, PUSH/JMP/JZ take an
  operand) used by the Sieve of Eratosthenes workload of Figure 5.1;
* the **tiny computer** language (LD/ST/BR/BB/SU plus ``.word`` data) used by
  the Appendix-F style 10-bit accumulator machine.

Both support ``label:`` definitions, ``; comments``, symbolic operands,
``.equ NAME value`` constants and label arithmetic of the form
``LABEL+offset``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa import stack_isa, tiny_isa


@dataclass(frozen=True)
class SourceLine:
    """One significant line of assembly after comment stripping."""

    number: int
    label: str | None
    mnemonic: str | None
    operand: str | None


@dataclass
class Program:
    """An assembled program."""

    words: list[int]
    labels: dict[str, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    listing: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.words)

    def word(self, index: int) -> int:
        return self.words[index]

    def address_of(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(f"unknown label '{label}'") from None


# ---------------------------------------------------------------------------
# shared line handling
# ---------------------------------------------------------------------------


def _strip_comment(text: str) -> str:
    index = text.find(";")
    if index >= 0:
        text = text[:index]
    return text.strip()


def _split_lines(source: str) -> list[SourceLine]:
    lines: list[SourceLine] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw)
        if not text:
            continue
        label = None
        if ":" in text:
            label_part, text = text.split(":", 1)
            label = label_part.strip()
            if not label or " " in label:
                raise AssemblyError(f"invalid label '{label_part.strip()}'", number)
            text = text.strip()
        if not text:
            lines.append(SourceLine(number, label, None, None))
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].upper()
        operand = parts[1].strip() if len(parts) > 1 else None
        lines.append(SourceLine(number, label, mnemonic, operand))
    return lines


class _SymbolTable:
    def __init__(self) -> None:
        self.labels: dict[str, int] = {}
        self.symbols: dict[str, int] = {}

    def define_label(self, name: str, value: int, line: int) -> None:
        if name in self.labels or name in self.symbols:
            raise AssemblyError(f"label '{name}' defined twice", line)
        self.labels[name] = value

    def define_symbol(self, name: str, value: int, line: int) -> None:
        if name in self.labels or name in self.symbols:
            raise AssemblyError(f"symbol '{name}' defined twice", line)
        self.symbols[name] = value

    def resolve(self, text: str, line: int) -> int:
        """Resolve an operand: integer literal, symbol, label, or NAME+int."""
        text = text.strip()
        offset = 0
        if "+" in text:
            base, _, tail = text.partition("+")
            base = base.strip()
            tail = tail.strip()
            if base and not base.lstrip("-").isdigit():
                offset = self.resolve(tail, line)
                text = base
        if text.lstrip("-").isdigit():
            return int(text) + offset
        for table in (self.symbols, self.labels):
            if text in table:
                return table[text] + offset
        raise AssemblyError(f"unknown symbol or label '{text}'", line)


# ---------------------------------------------------------------------------
# stack machine assembler
# ---------------------------------------------------------------------------


class StackAssembler:
    """Assembler for the stack machine ISA (:mod:`repro.isa.stack_isa`)."""

    def __init__(self) -> None:
        self._mnemonics = stack_isa.mnemonics()

    def assemble(self, source: str) -> Program:
        lines = _split_lines(source)
        table = _SymbolTable()
        # pass 1: addresses and symbols
        address = 0
        for line in lines:
            if line.label is not None:
                table.define_label(line.label, address, line.number)
            if line.mnemonic is None:
                continue
            if line.mnemonic == ".EQU":
                name, value = self._parse_equ(line, table)
                table.define_symbol(name, value, line.number)
                continue
            if line.mnemonic not in self._mnemonics:
                raise AssemblyError(
                    f"unknown mnemonic '{line.mnemonic}'", line.number
                )
            address += 1
        # pass 2: encode
        words: list[int] = []
        listing: list[str] = []
        for line in lines:
            if line.mnemonic is None or line.mnemonic == ".EQU":
                continue
            op = self._mnemonics[line.mnemonic]
            operand = 0
            if op in stack_isa.OPERAND_OPCODES:
                if line.operand is None:
                    raise AssemblyError(
                        f"{op.name} requires an operand", line.number
                    )
                operand = table.resolve(line.operand, line.number)
                if operand < 0:
                    raise AssemblyError(
                        f"operand of {op.name} must be non-negative", line.number
                    )
            elif line.operand is not None:
                raise AssemblyError(
                    f"{op.name} does not take an operand", line.number
                )
            instruction = stack_isa.Instruction(op, operand)
            listing.append(f"{len(words):4d}: {instruction.render()}")
            words.append(instruction.encode())
        return Program(
            words=words,
            labels=table.labels,
            symbols=table.symbols,
            listing=listing,
        )

    @staticmethod
    def _parse_equ(line: SourceLine, table: _SymbolTable) -> tuple[str, int]:
        if line.operand is None:
            raise AssemblyError(".equ requires a name and a value", line.number)
        parts = line.operand.split(None, 1)
        if len(parts) != 2:
            raise AssemblyError(".equ requires a name and a value", line.number)
        name, value_text = parts
        return name, table.resolve(value_text, line.number)


def assemble_stack_program(source: str) -> Program:
    """Assemble stack machine assembly *source* into a :class:`Program`."""
    return StackAssembler().assemble(source)


# ---------------------------------------------------------------------------
# tiny computer assembler
# ---------------------------------------------------------------------------


class TinyAssembler:
    """Assembler for the Appendix-F style tiny computer."""

    def assemble(self, source: str) -> Program:
        lines = _split_lines(source)
        table = _SymbolTable()
        address = 0
        for line in lines:
            if line.label is not None:
                table.define_label(line.label, address, line.number)
            if line.mnemonic is None:
                continue
            if line.mnemonic == ".EQU":
                name, value = StackAssembler._parse_equ(line, table)
                table.define_symbol(name, value, line.number)
                continue
            if line.mnemonic == ".WORD" or line.mnemonic in tiny_isa.MNEMONICS:
                address += 1
                continue
            raise AssemblyError(f"unknown mnemonic '{line.mnemonic}'", line.number)
        if address > tiny_isa.MEMORY_CELLS:
            raise AssemblyError(
                f"program needs {address} words but the tiny computer has "
                f"{tiny_isa.MEMORY_CELLS} memory cells"
            )
        words: list[int] = []
        listing: list[str] = []
        for line in lines:
            if line.mnemonic is None or line.mnemonic == ".EQU":
                continue
            if line.mnemonic == ".WORD":
                if line.operand is None:
                    raise AssemblyError(".word requires a value", line.number)
                value = table.resolve(line.operand, line.number)
                listing.append(f"{len(words):4d}: .word {value}")
                words.append(value)
                continue
            op = tiny_isa.MNEMONICS[line.mnemonic]
            if line.operand is None:
                raise AssemblyError(
                    f"{line.mnemonic} requires an address operand", line.number
                )
            target = table.resolve(line.operand, line.number)
            word = tiny_isa.encode(op, target)
            listing.append(f"{len(words):4d}: {line.mnemonic} {target}")
            words.append(word)
        return Program(
            words=words,
            labels=table.labels,
            symbols=table.symbols,
            listing=listing,
        )


def assemble_tiny_program(source: str) -> Program:
    """Assemble tiny computer assembly *source* into a :class:`Program`."""
    return TinyAssembler().assemble(source)
