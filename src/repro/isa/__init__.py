"""Instruction sets, assemblers and instruction-set-level simulators.

The paper's workloads are programs for *microcoded machines*: the stack
machine of Appendix D and the Appendix-F tiny computer.  This package
holds the software side of those machines, one level above the RTL:

* :mod:`repro.isa.stack_isa` / :mod:`repro.isa.tiny_isa` — the instruction
  encodings (opcodes, operand formats) for the two bundled ISAs;
* :mod:`repro.isa.assembler` — assemblers turning mnemonic programs into
  the memory images the RTL machines execute;
* :mod:`repro.isa.isp` — instruction-set-level golden-model simulators
  ("ISP" in the paper's terminology), used to predict outputs and
  instruction counts that the cycle-accurate RTL runs are checked against.

The split mirrors the paper's verification argument: the same program runs
on the fast ISP model and on the RTL machine, and the two must agree.
"""

from repro.isa.assembler import (
    Program,
    StackAssembler,
    TinyAssembler,
    assemble_stack_program,
    assemble_tiny_program,
)
from repro.isa.isp import IspResult, StackIspSimulator, TinyIspSimulator
from repro.isa.stack_isa import Instruction, Op
from repro.isa.tiny_isa import TinyInstruction, TinyOp

__all__ = [
    "Program",
    "StackAssembler",
    "TinyAssembler",
    "assemble_stack_program",
    "assemble_tiny_program",
    "IspResult",
    "StackIspSimulator",
    "TinyIspSimulator",
    "Instruction",
    "Op",
    "TinyInstruction",
    "TinyOp",
]
