"""Instruction sets, assemblers and instruction-set-level simulators."""

from repro.isa.assembler import (
    Program,
    StackAssembler,
    TinyAssembler,
    assemble_stack_program,
    assemble_tiny_program,
)
from repro.isa.isp import IspResult, StackIspSimulator, TinyIspSimulator
from repro.isa.stack_isa import Instruction, Op
from repro.isa.tiny_isa import TinyInstruction, TinyOp

__all__ = [
    "Program",
    "StackAssembler",
    "TinyAssembler",
    "assemble_stack_program",
    "assemble_tiny_program",
    "IspResult",
    "StackIspSimulator",
    "TinyIspSimulator",
    "Instruction",
    "Op",
    "TinyInstruction",
    "TinyOp",
]
