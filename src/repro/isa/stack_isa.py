"""Instruction set of the bundled stack machine.

The paper's headline benchmark (Figure 5.1) runs the Sieve of Eratosthenes
on a small microcoded stack machine described with the three ASIM II
primitives (Appendix D).  This module defines the instruction set of our
clean-room stack machine: a word is ``opcode << 16 | operand`` (the operand
is used only by PUSH / JMP / JZ), and the opcode doubles as the index of
the decode selectors inside the RTL model
(:mod:`repro.machines.stack_machine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import AssemblyError
from repro.rtl import alu_ops

#: Number of bits reserved for the immediate operand.
OPERAND_BITS = 16
#: Bit position where the opcode field starts.
OPCODE_SHIFT = OPERAND_BITS
#: Mask for the operand field.
OPERAND_MASK = (1 << OPERAND_BITS) - 1
#: Width of the opcode field as referenced in the RTL model (8 bits).
OPCODE_BITS = 8


class Op(IntEnum):
    """Stack machine opcodes (values double as decode-selector indices)."""

    PUSH = 0
    ADD = 1
    SUB = 2
    MUL = 3
    LT = 4
    EQ = 5
    AND = 6
    OR = 7
    XOR = 8
    DUP = 9
    DROP = 10
    SWAP = 11
    LOAD = 12
    STORE = 13
    JMP = 14
    JZ = 15
    OUT = 16
    HALT = 17


#: Number of opcodes (and therefore of decode selector cases).
OPCODE_COUNT = len(Op)

#: Opcodes that carry an immediate operand.
OPERAND_OPCODES = frozenset({Op.PUSH, Op.JMP, Op.JZ})

#: Binary ALU opcodes mapped to the ASIM II ALU function they use.
ALU_OPCODES: dict[Op, int] = {
    Op.ADD: alu_ops.FN_ADD,
    Op.SUB: alu_ops.FN_SUB,
    Op.MUL: alu_ops.FN_MUL,
    Op.LT: alu_ops.FN_LT,
    Op.EQ: alu_ops.FN_EQ,
    Op.AND: alu_ops.FN_AND,
    Op.OR: alu_ops.FN_OR,
    Op.XOR: alu_ops.FN_XOR,
}


@dataclass(frozen=True)
class Instruction:
    """A decoded stack machine instruction."""

    op: Op
    operand: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.operand <= OPERAND_MASK:
            raise AssemblyError(
                f"operand {self.operand} does not fit in {OPERAND_BITS} bits"
            )
        if self.operand and self.op not in OPERAND_OPCODES:
            raise AssemblyError(f"{self.op.name} does not take an operand")

    def encode(self) -> int:
        return (int(self.op) << OPCODE_SHIFT) | self.operand

    def render(self) -> str:
        if self.op in OPERAND_OPCODES:
            return f"{self.op.name} {self.operand}"
        return self.op.name


def encode(op: Op | int, operand: int = 0) -> int:
    """Encode an instruction word."""
    return Instruction(Op(op), operand).encode()


def decode(word: int) -> Instruction:
    """Decode an instruction word back into an :class:`Instruction`."""
    code = (word >> OPCODE_SHIFT) & ((1 << OPCODE_BITS) - 1)
    try:
        op = Op(code)
    except ValueError as exc:
        raise AssemblyError(f"unknown opcode {code} in word {word:#x}") from exc
    operand = word & OPERAND_MASK
    if op not in OPERAND_OPCODES:
        return Instruction(op, 0) if operand == 0 else Instruction(op, operand)
    return Instruction(op, operand)


def mnemonics() -> dict[str, Op]:
    """Mapping of assembler mnemonics (upper case) to opcodes."""
    return {op.name: op for op in Op}


#: Net change in stack depth caused by each opcode (PUSH grows by one, a
#: binary operator consumes two and produces one, ...).  Used by the ISP
#: simulator's underflow checks and by tests.
STACK_EFFECT: dict[Op, int] = {
    Op.PUSH: +1,
    Op.ADD: -1,
    Op.SUB: -1,
    Op.MUL: -1,
    Op.LT: -1,
    Op.EQ: -1,
    Op.AND: -1,
    Op.OR: -1,
    Op.XOR: -1,
    Op.DUP: +1,
    Op.DROP: -1,
    Op.SWAP: 0,
    Op.LOAD: 0,
    Op.STORE: -2,
    Op.JMP: 0,
    Op.JZ: -1,
    Op.OUT: -1,
    Op.HALT: 0,
}
