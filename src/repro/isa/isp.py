"""Instruction-set-level (ISP) simulators.

Sections 1.2 and 2.2.4 of the paper contrast register-transfer-level
simulation with ISP (Instruction Set Processor) simulation, where "each
opcode of the test architecture [is translated] to an expression in a high
level language".  These two simulators are exactly that for the bundled
machines: they execute whole instructions in Python with no notion of
cycles, phases or components.

They serve three purposes:

* the level-of-abstraction ablation (benchmark E7): ISP simulation is much
  faster than RTL simulation but yields no timing information;
* golden models: the RTL stack machine and tiny computer are checked
  against them instruction by instruction;
* cycle budgeting: the RTL machines take a fixed number of cycles per
  instruction, so an ISP run tells the benchmarks how many cycles to request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SimulationError
from repro.isa import stack_isa, tiny_isa
from repro.isa.assembler import Program
from repro.rtl.alu_ops import dologic
from repro.rtl.bits import mask_word


@dataclass
class IspResult:
    """Outcome of an instruction-set-level run."""

    instructions_executed: int
    halted: bool
    outputs: list[int] = field(default_factory=list)
    final_pc: int = 0
    #: machine-specific state snapshots
    stack: list[int] = field(default_factory=list)
    data_memory: list[int] = field(default_factory=list)
    accumulator: int = 0


def _program_words(program: Program | Sequence[int]) -> list[int]:
    if isinstance(program, Program):
        return list(program.words)
    return list(program)


class StackIspSimulator:
    """Executes stack machine programs one instruction at a time."""

    def __init__(
        self, program: Program | Sequence[int], data_size: int = 512
    ) -> None:
        self.program = _program_words(program)
        self.data_size = data_size

    def run(self, max_instructions: int = 1_000_000) -> IspResult:
        data = [0] * self.data_size
        stack: list[int] = []
        outputs: list[int] = []
        pc = 0
        executed = 0
        halted = False

        def pop() -> int:
            if not stack:
                raise SimulationError(
                    f"stack underflow at pc={pc} after {executed} instructions"
                )
            return stack.pop()

        while executed < max_instructions:
            if pc >= len(self.program):
                raise SimulationError(f"program counter {pc} past end of program")
            instruction = stack_isa.decode(self.program[pc])
            executed += 1
            op = instruction.op
            operand = instruction.operand
            next_pc = pc + 1
            if op is stack_isa.Op.HALT:
                halted = True
                break
            if op is stack_isa.Op.PUSH:
                stack.append(mask_word(operand))
            elif op in stack_isa.ALU_OPCODES:
                right = pop()
                left = pop()
                stack.append(dologic(stack_isa.ALU_OPCODES[op], left, right))
            elif op is stack_isa.Op.DUP:
                value = pop()
                stack.append(value)
                stack.append(value)
            elif op is stack_isa.Op.DROP:
                pop()
            elif op is stack_isa.Op.SWAP:
                top = pop()
                below = pop()
                stack.append(top)
                stack.append(below)
            elif op is stack_isa.Op.LOAD:
                address = pop() % self.data_size
                stack.append(data[address])
            elif op is stack_isa.Op.STORE:
                address = pop() % self.data_size
                value = pop()
                data[address] = value
            elif op is stack_isa.Op.JMP:
                next_pc = operand
            elif op is stack_isa.Op.JZ:
                condition = pop()
                if condition == 0:
                    next_pc = operand
            elif op is stack_isa.Op.OUT:
                outputs.append(pop())
            else:  # pragma: no cover - exhaustive over Op
                raise SimulationError(f"unhandled opcode {op!r}")
            pc = next_pc
        return IspResult(
            instructions_executed=executed,
            halted=halted,
            outputs=outputs,
            final_pc=pc,
            stack=stack,
            data_memory=data,
        )


class TinyIspSimulator:
    """Executes tiny computer programs one instruction at a time."""

    def __init__(self, program: Program | Sequence[int]) -> None:
        words = _program_words(program)
        if len(words) > tiny_isa.MEMORY_CELLS:
            raise SimulationError(
                f"program of {len(words)} words exceeds the tiny computer's "
                f"{tiny_isa.MEMORY_CELLS} cells"
            )
        self.initial_memory = words + [0] * (tiny_isa.MEMORY_CELLS - len(words))

    def run(self, max_instructions: int = 100_000) -> IspResult:
        memory = list(self.initial_memory)
        accumulator = 0
        borrow = 0
        outputs: list[int] = []
        pc = 0
        executed = 0
        halted = False
        while executed < max_instructions:
            instruction = tiny_isa.decode(memory[pc])
            executed += 1
            if instruction is None:
                # data word reached: treat as no-operation, step over it
                pc = (pc + 1) % tiny_isa.MEMORY_CELLS
                continue
            op, address = instruction.op, instruction.address
            next_pc = pc + 1
            if op is tiny_isa.TinyOp.LD:
                accumulator = mask_word(memory[address])
            elif op is tiny_isa.TinyOp.ST:
                memory[address] = accumulator
                if address == tiny_isa.OUTPUT_ADDRESS:
                    outputs.append(accumulator)
            elif op is tiny_isa.TinyOp.SU:
                result = mask_word(accumulator - memory[address])
                borrow = (result >> 30) & 1
                accumulator = result
            elif op is tiny_isa.TinyOp.BR:
                if address == pc:
                    halted = True
                    break
                next_pc = address
            elif op is tiny_isa.TinyOp.BB:
                if borrow:
                    next_pc = address
            pc = next_pc
        return IspResult(
            instructions_executed=executed,
            halted=halted,
            outputs=outputs,
            final_pc=pc,
            data_memory=memory,
            accumulator=accumulator,
        )
