"""Instruction set of the Appendix-F style tiny computer.

Appendix F of the paper specifies "a small 10 bit microprocessor with five
instructions (load, store, branch, branch on borrow, and subtract) and 128
bytes of program and data memory".  A word holds a 3-bit opcode in bits 7..9
and a 7-bit memory address in bits 0..6; the appendix's macro values
(``~LD 256 ~ST 384 ~BB 512 ~BR 640 ~SU 768``) are exactly these opcodes
shifted into place, which fixes the numeric encoding reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import AssemblyError

#: Number of memory cells (program + data share one memory).
MEMORY_CELLS = 128
#: Width of the address field in bits.
ADDRESS_BITS = 7
#: Bit position of the opcode field.
OPCODE_SHIFT = ADDRESS_BITS
#: Mask for the address field.
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
#: Writing to this address is routed to memory-mapped output as well.
OUTPUT_ADDRESS = MEMORY_CELLS - 1


class TinyOp(IntEnum):
    """Opcodes, numbered to match the Appendix F macro values (op << 7)."""

    LD = 2   # 256: load accumulator from memory
    ST = 3   # 384: store accumulator to memory
    BB = 4   # 512: branch if the borrow flag is set
    BR = 5   # 640: unconditional branch
    SU = 6   # 768: subtract memory from accumulator (sets borrow)


#: Mnemonic -> opcode mapping used by the assembler.
MNEMONICS: dict[str, TinyOp] = {op.name: op for op in TinyOp}

#: The Appendix F macro values, kept for documentation and tests.
APPENDIX_F_MACROS: dict[str, int] = {
    "LD": 256,
    "ST": 384,
    "BB": 512,
    "BR": 640,
    "SU": 768,
}


@dataclass(frozen=True)
class TinyInstruction:
    """A decoded tiny computer instruction."""

    op: TinyOp
    address: int

    def __post_init__(self) -> None:
        if not 0 <= self.address <= ADDRESS_MASK:
            raise AssemblyError(
                f"address {self.address} does not fit in {ADDRESS_BITS} bits"
            )

    def encode(self) -> int:
        return (int(self.op) << OPCODE_SHIFT) | self.address

    def render(self) -> str:
        return f"{self.op.name} {self.address}"


def encode(op: TinyOp | int, address: int) -> int:
    """Encode a tiny computer instruction word."""
    return TinyInstruction(TinyOp(op), address).encode()


def decode(word: int) -> TinyInstruction | None:
    """Decode an instruction word; returns ``None`` for pure data words."""
    code = (word >> OPCODE_SHIFT) & 0x7
    address = word & ADDRESS_MASK
    try:
        op = TinyOp(code)
    except ValueError:
        return None
    return TinyInstruction(op, address)
