"""The microcoded stack machine (the paper's Appendix D workload, rebuilt).

The paper's headline benchmark runs the Sieve of Eratosthenes on an "Itty
Bitty Stack Machine" described entirely with ASIM II's three primitives.
This module rebuilds such a machine from scratch (see DESIGN.md for why the
appendix's own ROM encoding is not transcribed verbatim): a 4-phase
fetch / decode / execute / refill datapath whose control is a set of
selectors indexed by the opcode field of the instruction register — the
selector-as-decode-ROM style the thesis itself uses.

Datapath summary (every instruction takes exactly four cycles):

=====  ======================================================================
phase  activity
=====  ======================================================================
0      fetch: program ROM is read at ``pc``; the stack RAM is read at
       ``sp-1`` so the next-on-stack value is available one cycle later
1      decode: the fetched word is latched into ``ir`` and the stack read
       into ``nos``; the data RAM is read at ``tos`` (for LOAD)
2      execute: decode selectors produce the next ``tos``/``sp``/``pc``;
       pushes write the stack RAM, STORE writes the data RAM, OUT drives the
       memory-mapped output port; STORE also issues the stack read that will
       refill ``tos``
3      refill: STORE latches the refilled ``tos``; everything else holds
=====  ======================================================================

Registers (``pc``, ``sp``, ``tos``, ``nos``, ``ir``, ``phase``) are
single-cell memories that write every cycle; their data inputs are selectors
indexed by the phase counter, so "hold" simply re-writes the current value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SpecificationError
from repro.isa.assembler import Program
from repro.isa.stack_isa import (
    ALU_OPCODES,
    OPCODE_COUNT,
    Op,
    encode,
)
from repro.rtl.builder import SpecBuilder
from repro.rtl.spec import Specification

#: Every instruction takes exactly this many cycles on the RTL machine.
CYCLES_PER_INSTRUCTION = 4

#: Default sizes (cells); both must be powers of two because addresses are
#: masked with ``size - 1`` using an AND ALU.
DEFAULT_DATA_SIZE = 512
DEFAULT_STACK_SIZE = 512

#: The memory-mapped output port writes integers at this address.
OUTPUT_ADDRESS = 1

#: Components worth tracing when debugging the machine.
DEBUG_TRACE = ("phase", "pc", "ir", "tos", "sp")


def _require_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise SpecificationError(f"{what} must be a power of two, got {value}")


def _next_power_of_two(value: int) -> int:
    size = 1
    while size < value:
        size *= 2
    return size


def _per_opcode(default: object, overrides: dict[Op, object]) -> list[object]:
    """Build a decode-selector case list indexed by opcode."""
    cases: list[object] = [default] * OPCODE_COUNT
    for op, value in overrides.items():
        cases[int(op)] = value
    return cases


@dataclass(frozen=True)
class StackMachine:
    """A built stack machine: its specification plus layout facts."""

    spec: Specification
    program_words: tuple[int, ...]
    program_size: int
    data_size: int
    stack_size: int

    def cycles_for(self, instructions: int, slack_instructions: int = 4) -> int:
        """Cycles needed to execute *instructions* instructions (plus slack)."""
        return (instructions + slack_instructions) * CYCLES_PER_INSTRUCTION


def _program_words(program: Program | Sequence[int]) -> list[int]:
    if isinstance(program, Program):
        return list(program.words)
    return list(program)


def build_stack_machine(
    program: Program | Sequence[int],
    data_size: int = DEFAULT_DATA_SIZE,
    stack_size: int = DEFAULT_STACK_SIZE,
    trace: Sequence[str] = (),
    cycles: int | None = None,
) -> StackMachine:
    """Build the stack machine specification around an assembled *program*.

    The program ROM is padded to a power of two with HALT instructions so a
    runaway program counter simply halts.
    """
    _require_power_of_two(data_size, "data_size")
    _require_power_of_two(stack_size, "stack_size")
    words = _program_words(program)
    if not words:
        raise SpecificationError("the stack machine needs a non-empty program")
    program_size = _next_power_of_two(len(words))
    halt_word = encode(Op.HALT)
    rom_contents = words + [halt_word] * (program_size - len(words))

    builder = SpecBuilder(
        "# Itty Bitty Stack Machine (ASIM II reproduction)", cycles=cycles
    )

    # ---- instruction fields and simple arithmetic --------------------------------
    builder.alu("opcode", 2, "ir.16.23", 0)
    builder.alu("operand", 2, "ir.0.15", 0)
    builder.alu("pcp1", 4, "pc", 1)
    builder.alu("spp1", 4, "sp", 1)
    builder.alu("spm1", 5, "sp", 1)
    builder.alu("spm2", 5, "sp", 2)
    builder.alu("iszero", 12, "tos", 0)

    # ---- the working ALU (function chosen by the decode selector) ------------------
    builder.selector(
        "alufn",
        "opcode",
        _per_opcode(0, {op: funct for op, funct in ALU_OPCODES.items()}),
    )
    builder.alu("alures", "alufn", "nos", "tos")

    # ---- decode selectors: next register values -------------------------------------
    alu_results = {op: "alures" for op in ALU_OPCODES}
    builder.selector(
        "tosnext",
        "opcode",
        _per_opcode(
            "tos",
            {
                Op.PUSH: "operand",
                **alu_results,
                Op.DROP: "nos",
                Op.SWAP: "nos",
                Op.LOAD: "dmem",
                Op.JZ: "nos",
                Op.OUT: "nos",
            },
        ),
    )
    pops_one = {op: "spm1" for op in ALU_OPCODES}
    builder.selector(
        "spnext",
        "opcode",
        _per_opcode(
            "sp",
            {
                Op.PUSH: "spp1",
                **pops_one,
                Op.DUP: "spp1",
                Op.DROP: "spm1",
                Op.STORE: "spm2",
                Op.JZ: "spm1",
                Op.OUT: "spm1",
            },
        ),
    )
    builder.selector("jztarget", "iszero", ["pcp1", "operand"])
    builder.selector(
        "pcnext",
        "opcode",
        _per_opcode(
            "pcp1",
            {Op.JMP: "operand", Op.JZ: "jztarget", Op.HALT: "pc"},
        ),
    )
    builder.selector("tosfill", "opcode", _per_opcode("tos", {Op.STORE: "stack"}))

    # ---- decode selectors: memory control ----------------------------------------------
    builder.selector(
        "stackop2",
        "opcode",
        _per_opcode(0, {Op.PUSH: 1, Op.DUP: 1, Op.SWAP: 1}),
    )
    builder.selector(
        "stackaddr2",
        "opcode",
        _per_opcode("sp", {Op.SWAP: "spm1", Op.STORE: "spm2"}),
    )
    builder.selector("dmemop2", "opcode", _per_opcode(0, {Op.STORE: 1}))
    builder.selector("outop2", "opcode", _per_opcode(0, {Op.OUT: 3}))

    # ---- phase sequencing ----------------------------------------------------------------
    builder.alu("phinc", 4, "phase", 1)
    builder.alu("phnext", 8, "phinc", 3)
    builder.selector("pcsel", "phase", ["pc", "pc", "pcnext", "pc"])
    builder.selector("spsel", "phase", ["sp", "sp", "spnext", "sp"])
    builder.selector("tossel", "phase", ["tos", "tos", "tosnext", "tosfill"])
    builder.selector("nossel", "phase", ["nos", "stack", "nos", "nos"])
    builder.selector("irsel", "phase", ["ir", "prog", "ir", "ir"])
    builder.selector(
        "stackaddrsel", "phase", ["spm1", "spm1", "stackaddr2", "sp"]
    )
    builder.selector("stackop", "phase", [0, 0, "stackop2", 0])
    builder.selector("dmemop", "phase", [0, 0, "dmemop2", 0])
    builder.selector("outopsel", "phase", [0, 0, "outop2", 0])

    # ---- address masking -----------------------------------------------------------------
    builder.alu("stackaddr", 8, "stackaddrsel", stack_size - 1)
    builder.alu("dmaddr", 8, "tos", data_size - 1)
    builder.alu("pcmask", 8, "pc", program_size - 1)

    # ---- registers -------------------------------------------------------------------------
    builder.register("phase", data="phnext")
    builder.register("pc", data="pcsel")
    builder.register("sp", data="spsel")
    builder.register("tos", data="tossel")
    builder.register("nos", data="nossel")
    builder.register("ir", data="irsel")

    # ---- memories ----------------------------------------------------------------------------
    builder.rom("prog", address="pcmask", contents=rom_contents, size=program_size)
    builder.memory(
        "stack", address="stackaddr", data="tos", operation="stackop",
        size=stack_size,
    )
    builder.memory(
        "dmem", address="dmaddr", data="nos", operation="dmemop", size=data_size
    )
    builder.memory(
        "outport", address=OUTPUT_ADDRESS, data="tos", operation="outopsel", size=2
    )

    if trace:
        builder.trace(*trace)

    return StackMachine(
        spec=builder.build(),
        program_words=tuple(words),
        program_size=program_size,
        data_size=data_size,
        stack_size=stack_size,
    )


def build_stack_machine_spec(
    program: Program | Sequence[int],
    data_size: int = DEFAULT_DATA_SIZE,
    stack_size: int = DEFAULT_STACK_SIZE,
    trace: Sequence[str] = (),
    cycles: int | None = None,
) -> Specification:
    """Convenience wrapper returning only the :class:`Specification`."""
    return build_stack_machine(
        program, data_size=data_size, stack_size=stack_size, trace=trace,
        cycles=cycles,
    ).spec


def cycles_for_instructions(instructions: int, slack_instructions: int = 4) -> int:
    """Cycle budget for a program known to execute *instructions* instructions."""
    return (instructions + slack_instructions) * CYCLES_PER_INSTRUCTION
