"""Bundled example machines built with the ASIM II primitives.

Every machine is a plain builder function returning a ready-to-run
:class:`~repro.rtl.spec.Specification`; :mod:`repro.machines.library`
registers them all (name, description, demo cycle count) so tests,
benchmarks, examples and the CLI enumerate one canonical list:

* ``counter``, ``fibonacci``, ``gcd``, ``traffic-light`` — small machines
  exercising one primitive or idiom each;
* ``stack-machine-sieve`` (:mod:`repro.machines.stack_machine` +
  :mod:`repro.machines.sieve`) — the paper's headline workload: the
  microcoded Appendix-D stack machine running the Sieve of Eratosthenes,
  the Figure 5.1 benchmark subject;
* ``tiny-computer`` (:mod:`repro.machines.tiny_computer`) — the
  Appendix-F 10-bit accumulator machine with its division workload.

The workload helpers (``prepare_sieve_workload``,
``prepare_division_workload``) pair each program with its ISP golden-model
prediction so runs can be checked end to end.
"""

from repro.machines.counter import build_counter_spec, expected_counter_values
from repro.machines.fibonacci import build_fibonacci_spec, expected_fibonacci_values
from repro.machines.gcd import build_gcd_spec, cycles_to_converge, expected_gcd
from repro.machines.library import (
    MachineEntry,
    all_machines,
    get_machine,
    machine_names,
)
from repro.machines.sieve import (
    SieveWorkload,
    expected_outputs,
    expected_primes,
    prepare_sieve_workload,
    sieve_assembly,
    sieve_program,
)
from repro.machines.stack_machine import (
    CYCLES_PER_INSTRUCTION,
    StackMachine,
    build_stack_machine,
    build_stack_machine_spec,
    cycles_for_instructions,
)
from repro.machines.tiny_computer import (
    DivisionWorkload,
    TinyComputer,
    build_tiny_computer,
    build_tiny_computer_spec,
    division_program,
    prepare_division_workload,
)
from repro.machines.traffic_light import build_traffic_light_spec, expected_states

__all__ = [
    "build_counter_spec",
    "expected_counter_values",
    "build_fibonacci_spec",
    "expected_fibonacci_values",
    "build_gcd_spec",
    "cycles_to_converge",
    "expected_gcd",
    "MachineEntry",
    "all_machines",
    "get_machine",
    "machine_names",
    "SieveWorkload",
    "expected_outputs",
    "expected_primes",
    "prepare_sieve_workload",
    "sieve_assembly",
    "sieve_program",
    "CYCLES_PER_INSTRUCTION",
    "StackMachine",
    "build_stack_machine",
    "build_stack_machine_spec",
    "cycles_for_instructions",
    "DivisionWorkload",
    "TinyComputer",
    "build_tiny_computer",
    "build_tiny_computer_spec",
    "division_program",
    "prepare_division_workload",
    "build_traffic_light_spec",
    "expected_states",
]
