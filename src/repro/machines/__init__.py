"""Bundled example machines built with the ASIM II primitives."""

from repro.machines.counter import build_counter_spec, expected_counter_values
from repro.machines.fibonacci import build_fibonacci_spec, expected_fibonacci_values
from repro.machines.gcd import build_gcd_spec, cycles_to_converge, expected_gcd
from repro.machines.library import (
    MachineEntry,
    all_machines,
    get_machine,
    machine_names,
)
from repro.machines.sieve import (
    SieveWorkload,
    expected_outputs,
    expected_primes,
    prepare_sieve_workload,
    sieve_assembly,
    sieve_program,
)
from repro.machines.stack_machine import (
    CYCLES_PER_INSTRUCTION,
    StackMachine,
    build_stack_machine,
    build_stack_machine_spec,
    cycles_for_instructions,
)
from repro.machines.tiny_computer import (
    DivisionWorkload,
    TinyComputer,
    build_tiny_computer,
    build_tiny_computer_spec,
    division_program,
    prepare_division_workload,
)
from repro.machines.traffic_light import build_traffic_light_spec, expected_states

__all__ = [
    "build_counter_spec",
    "expected_counter_values",
    "build_fibonacci_spec",
    "expected_fibonacci_values",
    "build_gcd_spec",
    "cycles_to_converge",
    "expected_gcd",
    "MachineEntry",
    "all_machines",
    "get_machine",
    "machine_names",
    "SieveWorkload",
    "expected_outputs",
    "expected_primes",
    "prepare_sieve_workload",
    "sieve_assembly",
    "sieve_program",
    "CYCLES_PER_INSTRUCTION",
    "StackMachine",
    "build_stack_machine",
    "build_stack_machine_spec",
    "cycles_for_instructions",
    "DivisionWorkload",
    "TinyComputer",
    "build_tiny_computer",
    "build_tiny_computer_spec",
    "division_program",
    "prepare_division_workload",
    "build_traffic_light_spec",
    "expected_states",
]
