"""Machines found by the differential fuzzer, promoted to the library.

These two specifications were produced by :mod:`repro.fuzz.generator`
(seeds 390 and 40 of the default configuration) and promoted because they
exercise shapes the hand-written machines do not: ``fuzz-rom`` drives ALU
function selects and the memory operation word out of control-ROM bit
fields while mixing selectors, a RAM and both I/O ports; ``fuzz-datapath``
is a compact selector-steered datapath whose RAM write address and
selector index come from single register bits.

They are stored in the interchange JSON format (``docs/spec-format.md``)
rather than as builder calls — the library dogfoods the same documents
clients ship over the wire, and building them exercises
:func:`repro.rtl.interchange.spec_from_json` on every registry walk.  The
documents are frozen artifacts: regenerating them from the seeds is *not*
guaranteed to stay byte-identical across generator changes, which is
exactly why the JSON is committed instead of the seed.
"""

from __future__ import annotations

import json

from repro.rtl.interchange import spec_from_json
from repro.rtl.spec import Specification


_FUZZ_ROM_JSON = """
{
  "format": "repro-spec",
  "version": 1,
  "comment": "# fuzz machine seed=390",
  "name": "fuzz-rom",
  "cycles": 41,
  "declarations": [
    "pcinc",
    "pc",
    "ctrl",
    "s0*",
    "s1",
    "ram",
    "inport",
    "outport",
    "r0",
    "r1",
    "r2"
  ],
  "components": [
    {
      "type": "alu",
      "name": "pcinc",
      "function": [
        {
          "type": "const",
          "value": 4
        }
      ],
      "left": [
        {
          "type": "ref",
          "name": "pc"
        }
      ],
      "right": [
        {
          "type": "const",
          "value": 1
        }
      ]
    },
    {
      "type": "memory",
      "name": "pc",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "pcinc"
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 1
        }
      ],
      "size": 1,
      "initial": [
        0
      ]
    },
    {
      "type": "memory",
      "name": "ctrl",
      "address": [
        {
          "type": "ref",
          "name": "pc",
          "low": 0,
          "high": 2
        }
      ],
      "data": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "size": 8,
      "initial": [
        574785,
        451274,
        181526,
        1003613,
        983365,
        201490,
        360920,
        790982
      ]
    },
    {
      "type": "selector",
      "name": "s0",
      "select": [
        {
          "type": "ref",
          "name": "r0",
          "low": 1,
          "high": 2
        }
      ],
      "cases": [
        [
          {
            "type": "ref",
            "name": "ctrl",
            "low": 1,
            "high": 4
          }
        ],
        [
          {
            "type": "bits",
            "bits": "1110110"
          }
        ],
        [
          {
            "type": "ref",
            "name": "pc"
          }
        ],
        [
          {
            "type": "const",
            "value": 187
          }
        ]
      ]
    },
    {
      "type": "selector",
      "name": "s1",
      "select": [
        {
          "type": "ref",
          "name": "s0",
          "low": 1,
          "high": 2
        }
      ],
      "cases": [
        [
          {
            "type": "ref",
            "name": "r2"
          },
          {
            "type": "ref",
            "name": "r2",
            "low": 9,
            "high": 14
          },
          {
            "type": "ref",
            "name": "ctrl",
            "low": 4,
            "high": 5
          }
        ],
        [
          {
            "type": "ref",
            "name": "r2",
            "low": 9,
            "high": 10
          }
        ],
        [
          {
            "type": "const",
            "value": 7,
            "width": 4
          },
          {
            "type": "ref",
            "name": "r0",
            "low": 7,
            "high": 11
          },
          {
            "type": "const",
            "value": 3,
            "width": 2
          }
        ],
        [
          {
            "type": "const",
            "value": 1239
          }
        ]
      ]
    },
    {
      "type": "memory",
      "name": "ram",
      "address": [
        {
          "type": "ref",
          "name": "ctrl",
          "low": 2,
          "high": 3
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "r0",
          "low": 2,
          "high": 9
        },
        {
          "type": "ref",
          "name": "r0",
          "low": 7
        },
        {
          "type": "ref",
          "name": "r1",
          "low": 7,
          "high": 11
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 1
        }
      ],
      "size": 4,
      "initial": [
        39851,
        49897,
        27141,
        58084
      ]
    },
    {
      "type": "memory",
      "name": "inport",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 2
        }
      ],
      "size": 1
    },
    {
      "type": "memory",
      "name": "outport",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "pc"
        },
        {
          "type": "bits",
          "bits": "1010"
        },
        {
          "type": "ref",
          "name": "ctrl",
          "low": 9,
          "high": 15
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 3
        }
      ],
      "size": 1
    },
    {
      "type": "memory",
      "name": "r0",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "r2"
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 1
        }
      ],
      "size": 1,
      "initial": [
        36752
      ]
    },
    {
      "type": "memory",
      "name": "r1",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "ram",
          "low": 4,
          "high": 7
        }
      ],
      "operation": [
        {
          "type": "ref",
          "name": "r0",
          "low": 2
        }
      ],
      "size": 1,
      "initial": [
        15901
      ]
    },
    {
      "type": "memory",
      "name": "r2",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "ram"
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 5
        }
      ],
      "size": 1,
      "initial": [
        10468
      ]
    }
  ]
}
"""


def build_fuzz_rom_spec() -> Specification:
    """The promoted fuzzer machine (generator seed 390)."""
    return spec_from_json(json.loads(_FUZZ_ROM_JSON))


_FUZZ_DATAPATH_JSON = """
{
  "format": "repro-spec",
  "version": 1,
  "comment": "# fuzz machine seed=40",
  "name": "fuzz-datapath",
  "cycles": 9,
  "declarations": [
    "s0",
    "ram*",
    "inport",
    "outport",
    "r0",
    "r1",
    "r2"
  ],
  "components": [
    {
      "type": "selector",
      "name": "s0",
      "select": [
        {
          "type": "ref",
          "name": "r0",
          "low": 2
        }
      ],
      "cases": [
        [
          {
            "type": "ref",
            "name": "r0",
            "low": 2
          }
        ],
        [
          {
            "type": "const",
            "value": 117,
            "width": 7
          }
        ]
      ]
    },
    {
      "type": "memory",
      "name": "ram",
      "address": [
        {
          "type": "ref",
          "name": "r2",
          "low": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "r0"
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 1
        }
      ],
      "size": 2
    },
    {
      "type": "memory",
      "name": "inport",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 2
        }
      ],
      "size": 1
    },
    {
      "type": "memory",
      "name": "outport",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "ram"
        },
        {
          "type": "ref",
          "name": "r1",
          "low": 3,
          "high": 10
        },
        {
          "type": "ref",
          "name": "r0",
          "low": 3,
          "high": 7
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 3
        }
      ],
      "size": 1
    },
    {
      "type": "memory",
      "name": "r0",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "r2"
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 1
        }
      ],
      "size": 1,
      "initial": [
        31574
      ]
    },
    {
      "type": "memory",
      "name": "r1",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "r2",
          "low": 7
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 1
        }
      ],
      "size": 1,
      "initial": [
        37358
      ]
    },
    {
      "type": "memory",
      "name": "r2",
      "address": [
        {
          "type": "const",
          "value": 0
        }
      ],
      "data": [
        {
          "type": "ref",
          "name": "r1"
        },
        {
          "type": "ref",
          "name": "ram",
          "low": 7,
          "high": 7
        }
      ],
      "operation": [
        {
          "type": "const",
          "value": 1
        }
      ],
      "size": 1,
      "initial": [
        54527
      ]
    }
  ]
}
"""


def build_fuzz_datapath_spec() -> Specification:
    """The promoted fuzzer machine (generator seed 40)."""
    return spec_from_json(json.loads(_FUZZ_DATAPATH_JSON))

