"""A Fibonacci generator built from two registers and one adder.

Demonstrates register-to-register data flow with no control logic at all:
``a`` takes ``b``'s value and ``b`` takes ``a + b`` every cycle, so ``a``
walks the Fibonacci sequence.  The current value is also driven onto the
memory-mapped output port.
"""

from __future__ import annotations

from repro.rtl.bits import mask_word
from repro.rtl.builder import SpecBuilder
from repro.rtl.spec import Specification


def build_fibonacci_spec(
    traced: bool = True, cycles: int | None = None
) -> Specification:
    """Two-register Fibonacci machine: a <- b, b <- a + b."""
    builder = SpecBuilder("# fibonacci generator", cycles=cycles)
    builder.alu("sum", 4, "a", "b")
    builder.register("a", data="b", traced=traced)
    builder.register("b", data="sum", initial_value=1, traced=traced)
    builder.memory("outport", address=1, data="a", operation=3, size=2)
    return builder.build()


def expected_fibonacci_values(cycles: int) -> list[int]:
    """Value of register ``a`` visible during each cycle (wraps at 31 bits)."""
    values = []
    a, b = 0, 1
    for _ in range(cycles):
        values.append(a)
        a, b = b, mask_word(a + b)
    return values
