"""A Euclid GCD engine built from comparators, subtractors and selectors.

Each cycle the larger of the two registers is reduced by the smaller one;
when they become equal both hold ``gcd(a0, b0)`` and the machine is stable.
This is the classic small datapath-plus-steering example: two ALU
subtractors, two less-than comparators and two selectors steering each
register's next value.
"""

from __future__ import annotations

import math

from repro.errors import SpecificationError
from repro.rtl.builder import SpecBuilder
from repro.rtl.spec import Specification


def build_gcd_spec(
    a0: int, b0: int, traced: bool = True, cycles: int | None = None
) -> Specification:
    """Build a GCD machine initialised with the operands *a0* and *b0*."""
    if a0 <= 0 or b0 <= 0:
        raise SpecificationError("GCD operands must be positive")
    builder = SpecBuilder(f"# euclid gcd of {a0} and {b0}", cycles=cycles)
    builder.alu("agtb", 13, "b", "a")          # 1 when a > b
    builder.alu("altb", 13, "a", "b")          # 1 when a < b
    builder.alu("asub", 5, "a", "b")
    builder.alu("bsub", 5, "b", "a")
    builder.alu("done", 12, "a", "b", traced=traced)   # 1 when a == b
    builder.selector("anext", "agtb", ["a", "asub"])
    builder.selector("bnext", "altb", ["b", "bsub"])
    builder.register("a", data="anext", initial_value=a0, traced=traced)
    builder.register("b", data="bnext", initial_value=b0, traced=traced)
    return builder.build()


def cycles_to_converge(a0: int, b0: int) -> int:
    """Upper bound on the cycles the machine needs to reach gcd(a0, b0).

    Subtractive GCD performs at most ``a0/g + b0/g`` reductions; one extra
    cycle covers the register latency.
    """
    g = math.gcd(a0, b0)
    return a0 // g + b0 // g + 2


def expected_gcd(a0: int, b0: int) -> int:
    return math.gcd(a0, b0)
