"""Registry of the bundled example machines.

The registry gives benchmarks, tests and examples one place to enumerate
"every machine that ships with the library", each with a short description
and a zero-argument builder returning a ready-to-run specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.machines.counter import build_counter_spec
from repro.machines.fibonacci import build_fibonacci_spec
from repro.machines.gcd import build_gcd_spec
from repro.machines.generated import (
    build_fuzz_datapath_spec,
    build_fuzz_rom_spec,
)
from repro.machines.sieve import prepare_sieve_workload
from repro.machines.stack_machine import build_stack_machine_spec
from repro.machines.tiny_computer import (
    build_tiny_computer_spec,
    prepare_division_workload,
)
from repro.machines.traffic_light import build_traffic_light_spec
from repro.rtl.spec import Specification


@dataclass(frozen=True)
class MachineEntry:
    """One bundled machine: a name, a description and a builder."""

    name: str
    description: str
    build: Callable[[], Specification]
    #: a reasonable number of cycles to simulate for a demonstration run
    demo_cycles: int


def _sieve_spec() -> Specification:
    return build_stack_machine_spec(prepare_sieve_workload(10).program)


def _tiny_spec() -> Specification:
    return build_tiny_computer_spec(prepare_division_workload(60, 7).program)


_MACHINES: tuple[MachineEntry, ...] = (
    MachineEntry(
        name="counter",
        description="4-bit wrapping counter with memory-mapped output",
        build=lambda: build_counter_spec(width_bits=4),
        demo_cycles=40,
    ),
    MachineEntry(
        name="fibonacci",
        description="two-register Fibonacci generator",
        build=build_fibonacci_spec,
        demo_cycles=20,
    ),
    MachineEntry(
        name="gcd",
        description="Euclid GCD engine (subtractive)",
        build=lambda: build_gcd_spec(252, 105),
        demo_cycles=16,
    ),
    MachineEntry(
        name="traffic-light",
        description="three-state traffic light controller",
        build=build_traffic_light_spec,
        demo_cycles=30,
    ),
    MachineEntry(
        name="stack-machine-sieve",
        description="microcoded stack machine running a small Sieve of Eratosthenes",
        build=_sieve_spec,
        demo_cycles=4000,
    ),
    MachineEntry(
        name="tiny-computer",
        description="Appendix-F style 10-bit accumulator machine dividing 60 by 7",
        build=_tiny_spec,
        demo_cycles=400,
    ),
    MachineEntry(
        name="fuzz-rom",
        description="fuzzer-found microcoded machine: control-ROM bit fields "
        "drive ALU functions and the memory operation word",
        build=build_fuzz_rom_spec,
        demo_cycles=41,
    ),
    MachineEntry(
        name="fuzz-datapath",
        description="fuzzer-found selector-steered datapath with "
        "register-bit RAM addressing",
        build=build_fuzz_datapath_spec,
        demo_cycles=9,
    ),
)


def machine_names() -> list[str]:
    """Names of every bundled machine."""
    return [entry.name for entry in _MACHINES]


def all_machines() -> tuple[MachineEntry, ...]:
    """Every bundled machine entry."""
    return _MACHINES


def get_machine(name: str) -> MachineEntry:
    """Look up a bundled machine by name."""
    for entry in _MACHINES:
        if entry.name == name:
            return entry
    raise KeyError(
        f"unknown machine '{name}'; available: {', '.join(machine_names())}"
    )
