"""A traffic light controller: the textbook finite state machine.

Three states (green, yellow, red) with configurable dwell times, built from
a state register, a dwell-time counter and selectors for the next state and
the lamp outputs.  It demonstrates selector-driven control without any
datapath, complementing the pure-datapath examples (counter, Fibonacci).
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.rtl.builder import SpecBuilder
from repro.rtl.spec import Specification

#: Encoded state values.
STATE_GREEN = 0
STATE_YELLOW = 1
STATE_RED = 2

#: Lamp output encodings (one-hot: green=1, yellow=2, red=4).
LAMP_VALUES = {STATE_GREEN: 1, STATE_YELLOW: 2, STATE_RED: 4}


def build_traffic_light_spec(
    green_cycles: int = 4,
    yellow_cycles: int = 2,
    red_cycles: int = 3,
    traced: bool = True,
    cycles: int | None = None,
) -> Specification:
    """Build the controller with the given per-state dwell times (in cycles)."""
    dwells = (green_cycles, yellow_cycles, red_cycles)
    if any(d < 1 for d in dwells):
        raise SpecificationError("every dwell time must be at least one cycle")
    builder = SpecBuilder("# traffic light controller", cycles=cycles)
    # dwell limit for the current state, and whether the timer reached it
    builder.selector(
        "limit", "state", [green_cycles - 1, yellow_cycles - 1, red_cycles - 1]
    )
    builder.alu("expired", 12, "timer", "limit", traced=False)
    builder.alu("timerinc", 4, "timer", 1)
    builder.selector("timernext", "expired", ["timerinc", 0])
    # state advance on expiry (green -> yellow -> red -> green)
    builder.selector("advance", "state", [STATE_YELLOW, STATE_RED, STATE_GREEN])
    builder.selector("statenext", "expired", ["state", "advance"])
    # lamp outputs
    builder.selector(
        "lamps",
        "state",
        [LAMP_VALUES[STATE_GREEN], LAMP_VALUES[STATE_YELLOW], LAMP_VALUES[STATE_RED]],
        traced=traced,
    )
    builder.register("state", data="statenext", traced=traced)
    builder.register("timer", data="timernext")
    return builder.build()


def expected_states(
    cycles: int,
    green_cycles: int = 4,
    yellow_cycles: int = 2,
    red_cycles: int = 3,
) -> list[int]:
    """Reference sequence of the state register's visible value per cycle."""
    dwell = {
        STATE_GREEN: green_cycles,
        STATE_YELLOW: yellow_cycles,
        STATE_RED: red_cycles,
    }
    order = {
        STATE_GREEN: STATE_YELLOW,
        STATE_YELLOW: STATE_RED,
        STATE_RED: STATE_GREEN,
    }
    states = []
    state = STATE_GREEN
    timer = 0
    for _ in range(cycles):
        states.append(state)
        if timer == dwell[state] - 1:
            state = order[state]
            timer = 0
        else:
            timer += 1
    return states
