"""A wrapping counter — the "simple counter" the paper cites as the smallest
useful ASIM II design ("ranging from a simple counter to a stack machine",
Section 3.2).

The counter increments every cycle, wraps at a power of two, and drives its
value onto the memory-mapped output port so runs have observable output.
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.rtl.builder import SpecBuilder
from repro.rtl.spec import Specification


def build_counter_spec(
    width_bits: int = 4,
    output_every_cycle: bool = True,
    traced: bool = True,
    cycles: int | None = None,
) -> Specification:
    """Build a *width_bits*-bit wrapping counter.

    The counter register is traced (the paper's ``*`` declaration) so the
    per-cycle trace shows it counting 0, 1, 2, ... and wrapping.
    """
    if not 1 <= width_bits <= 30:
        raise SpecificationError("counter width must be between 1 and 30 bits")
    modulus_mask = (1 << width_bits) - 1
    builder = SpecBuilder(f"# {width_bits}-bit wrapping counter", cycles=cycles)
    builder.alu("next", 4, "count", 1)
    builder.alu("wrapped", 8, "next", modulus_mask)
    builder.register("count", data="wrapped", traced=traced)
    if output_every_cycle:
        builder.memory("outport", address=1, data="count", operation=3, size=2)
    return builder.build()


def expected_counter_values(width_bits: int, cycles: int) -> list[int]:
    """The counter's visible value at each cycle (it lags the increment by one)."""
    modulus = 1 << width_bits
    return [cycle % modulus for cycle in range(cycles)]
