"""The Appendix-F tiny computer.

Appendix F of the paper gives "an example of a hardware specification and
circuit for a small 10 bit microprocessor with five instructions (load,
store, branch, branch on borrow, and subtract) and 128 bytes of program and
data memory".  This module rebuilds that machine on our grammar:

* one 128-cell memory shared by program and data;
* an accumulator ``ac``, a ``borrow`` flag, ``pc``, ``ir`` and a 2-bit phase
  counter;
* four phases per instruction: fetch, latch ``ir``, operand fetch, execute;
* a store to address 127 is additionally routed to the memory-mapped output
  port so programs have observable output.

The bundled demonstration program divides two numbers by repeated
subtraction (the natural workload for a machine whose only arithmetic
instruction is subtract) and outputs the quotient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SpecificationError
from repro.isa import tiny_isa
from repro.isa.assembler import Program, assemble_tiny_program
from repro.isa.isp import TinyIspSimulator
from repro.rtl.bits import WORD_MASK
from repro.rtl.builder import SpecBuilder
from repro.rtl.spec import Specification

#: Every instruction takes exactly this many cycles on the RTL machine.
CYCLES_PER_INSTRUCTION = 4

#: The borrow flag is this bit of the 31-bit subtraction result.
BORROW_BIT = 30

#: Components worth tracing when debugging the machine.
DEBUG_TRACE = ("phase", "pc", "ir", "ac", "borrow")


@dataclass(frozen=True)
class TinyComputer:
    """A built tiny computer: its specification plus program facts."""

    spec: Specification
    program_words: tuple[int, ...]

    def cycles_for(self, instructions: int, slack_instructions: int = 4) -> int:
        return (instructions + slack_instructions) * CYCLES_PER_INSTRUCTION


def _program_words(program: Program | Sequence[int]) -> list[int]:
    if isinstance(program, Program):
        return list(program.words)
    return list(program)


def build_tiny_computer(
    program: Program | Sequence[int],
    trace: Sequence[str] = (),
    cycles: int | None = None,
) -> TinyComputer:
    """Build the tiny computer specification around an assembled *program*."""
    words = _program_words(program)
    if not words:
        raise SpecificationError("the tiny computer needs a non-empty program")
    if len(words) > tiny_isa.MEMORY_CELLS:
        raise SpecificationError(
            f"program of {len(words)} words exceeds the tiny computer's "
            f"{tiny_isa.MEMORY_CELLS} cells"
        )
    memory_contents = words + [0] * (tiny_isa.MEMORY_CELLS - len(words))

    builder = SpecBuilder(
        "# tiny computer specification (Appendix F reproduction)", cycles=cycles
    )

    ld, st, bb, br, su = (
        int(tiny_isa.TinyOp.LD),
        int(tiny_isa.TinyOp.ST),
        int(tiny_isa.TinyOp.BB),
        int(tiny_isa.TinyOp.BR),
        int(tiny_isa.TinyOp.SU),
    )

    def per_opcode(default: object, overrides: dict[int, object]) -> list[object]:
        cases: list[object] = [default] * 8
        for code, value in overrides.items():
            cases[code] = value
        return cases

    # ---- instruction fields and arithmetic -----------------------------------------
    builder.alu("opcode", 2, "ir.7.9", 0)
    builder.alu("addrfield", 2, "ir.0.6", 0)
    builder.alu("pcp1", 4, "pc", 1)
    builder.alu("subres", 5, "ac", "mem")
    builder.alu("borrowbit", 2, f"subres.{BORROW_BIT}", 0)
    builder.alu("isout", 12, "addrfield", tiny_isa.OUTPUT_ADDRESS)

    # ---- execute-phase decode ----------------------------------------------------------
    builder.selector(
        "acnext", "opcode", per_opcode("ac", {ld: "mem", su: "subres"})
    )
    builder.selector(
        "borrownext", "opcode", per_opcode("borrow", {su: "borrowbit"})
    )
    builder.selector("pcbranch", "borrow", ["pcp1", "addrfield"])
    builder.selector(
        "pcnext",
        "opcode",
        per_opcode("pcp1", {bb: "pcbranch", br: "addrfield"}),
    )
    builder.selector("memop3", "opcode", per_opcode(0, {st: 1}))
    builder.selector("outselect", "isout", [0, 3])
    builder.selector("outop3", "opcode", per_opcode(0, {st: "outselect"}))

    # ---- phase sequencing ------------------------------------------------------------------
    builder.alu("phinc", 4, "phase", 1)
    builder.alu("phnext", 8, "phinc", 3)
    builder.selector("memaddr", "phase", ["pc", "pc", "addrfield", "addrfield"])
    builder.selector("memop", "phase", [0, 0, 0, "memop3"])
    builder.selector("outop", "phase", [0, 0, 0, "outop3"])
    builder.selector("acsel", "phase", ["ac", "ac", "ac", "acnext"])
    builder.selector("pcsel", "phase", ["pc", "pc", "pc", "pcnext"])
    builder.selector("irsel", "phase", ["ir", "mem", "ir", "ir"])
    builder.selector(
        "borrowsel", "phase", ["borrow", "borrow", "borrow", "borrownext"]
    )

    # ---- registers and memory ------------------------------------------------------------------
    builder.register("phase", data="phnext")
    builder.register("pc", data="pcsel")
    builder.register("ir", data="irsel")
    builder.register("ac", data="acsel")
    builder.register("borrow", data="borrowsel")
    builder.memory(
        "mem",
        address="memaddr",
        data="ac",
        operation="memop",
        size=tiny_isa.MEMORY_CELLS,
        initial_values=memory_contents,
    )
    builder.memory("outport", address=1, data="ac", operation="outop", size=2)

    if trace:
        builder.trace(*trace)

    return TinyComputer(spec=builder.build(), program_words=tuple(words))


def build_tiny_computer_spec(
    program: Program | Sequence[int],
    trace: Sequence[str] = (),
    cycles: int | None = None,
) -> Specification:
    """Convenience wrapper returning only the :class:`Specification`."""
    return build_tiny_computer(program, trace=trace, cycles=cycles).spec


# ---------------------------------------------------------------------------
# Bundled demonstration program: division by repeated subtraction
# ---------------------------------------------------------------------------

#: ``NEG1`` holds -1 modulo 2**31; subtracting it increments the accumulator.
MINUS_ONE = WORD_MASK


def division_assembly(dividend: int = 100, divisor: int = 7) -> str:
    """Assembly that computes ``dividend // divisor`` and outputs it.

    The only arithmetic instruction is subtract, so the quotient is counted
    by repeatedly subtracting the divisor until a borrow occurs; the counter
    is incremented by subtracting -1 (stored as ``2**31 - 1``).
    """
    if divisor <= 0 or dividend < 0:
        raise ValueError("dividend must be >= 0 and divisor > 0")
    return f"""\
; divide A by B by repeated subtraction; output the quotient to cell 127
.equ OUT 127
LOOP:   LD A        ; ac = a
        SU B        ; ac = a - b (sets borrow when a < b)
        BB DONE     ; stop when it went negative
        ST A        ; a = a - b
        LD Q        ; q = q + 1 (subtracting -1 increments)
        SU NEG1
        ST Q
        BR LOOP
DONE:   LD Q        ; output the quotient
        ST OUT
HALT:   BR HALT
A:      .word {dividend}
B:      .word {divisor}
Q:      .word 0
NEG1:   .word {MINUS_ONE}
"""


def division_program(dividend: int = 100, divisor: int = 7) -> Program:
    """Assemble the division demonstration program."""
    return assemble_tiny_program(division_assembly(dividend, divisor))


@dataclass(frozen=True)
class DivisionWorkload:
    """A prepared division workload with its ISP-measured reference."""

    dividend: int
    divisor: int
    program: Program
    instructions_executed: int
    outputs: list[int]

    @property
    def expected_quotient(self) -> int:
        return self.dividend // self.divisor

    @property
    def cycles_needed(self) -> int:
        return (self.instructions_executed + 4) * CYCLES_PER_INSTRUCTION


def prepare_division_workload(
    dividend: int = 100, divisor: int = 7
) -> DivisionWorkload:
    """Assemble the division program and measure it with the ISP model."""
    program = division_program(dividend, divisor)
    result = TinyIspSimulator(program).run()
    return DivisionWorkload(
        dividend=dividend,
        divisor=divisor,
        program=program,
        instructions_executed=result.instructions_executed,
        outputs=list(result.outputs),
    )
