"""The Sieve of Eratosthenes workload (the paper's benchmark program).

Appendix D of the paper runs "the popular Sieve of Eratosthenes (a prime
number generator implemented with a standard algorithm to assure similar
test conditions among the various machines being benchmarked)" on the stack
machine.  This module generates the same algorithm — the classic Byte-
benchmark formulation where slot *i* of the flags array represents the odd
number ``2*i + 3`` — as stack machine assembly, assembles it, and provides
the reference outputs the RTL and ISP simulators are checked against.

The program's observable output is every prime it finds (via the
memory-mapped output port) followed by the prime count, exactly like the
thesis's simulator whose "output ... consists of the prime numbers generated
by the simulator".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import Program, assemble_stack_program
from repro.isa.isp import StackIspSimulator

#: Data memory layout (cell addresses) used by the generated program.
VAR_I = 0
VAR_COUNT = 1
VAR_PRIME = 2
VAR_K = 3
FLAGS_BASE = 10

#: Default sieve size: flags[0..SIZE] represent the odd numbers 3..2*SIZE+3.
DEFAULT_SIZE = 20


def sieve_assembly(size: int = DEFAULT_SIZE) -> str:
    """Generate the sieve as stack machine assembly source."""
    if size < 1:
        raise ValueError("sieve size must be at least 1")
    limit = size + 1
    return f"""\
; Sieve of Eratosthenes over the odd numbers 3 .. {2 * size + 3}
; flags[i] (data cell {FLAGS_BASE}+i) is 1 when 2*i+3 is still prime.
.equ I {VAR_I}
.equ COUNT {VAR_COUNT}
.equ PRIME {VAR_PRIME}
.equ K {VAR_K}
.equ FLAGS {FLAGS_BASE}
.equ LIMIT {limit}

        PUSH 0          ; count = 0
        PUSH COUNT
        STORE
        PUSH 0          ; i = 0
        PUSH I
        STORE

INIT:   PUSH I          ; while i < LIMIT: flags[i] = 1
        LOAD
        PUSH LIMIT
        LT
        JZ INITDONE
        PUSH 1
        PUSH I
        LOAD
        PUSH FLAGS
        ADD
        STORE
        PUSH I          ; i = i + 1
        LOAD
        PUSH 1
        ADD
        PUSH I
        STORE
        JMP INIT

INITDONE:
        PUSH 0          ; i = 0
        PUSH I
        STORE

OUTER:  PUSH I          ; while i < LIMIT
        LOAD
        PUSH LIMIT
        LT
        JZ DONE
        PUSH I          ; if flags[i] == 0: next i
        LOAD
        PUSH FLAGS
        ADD
        LOAD
        JZ NEXT
        PUSH I          ; prime = i + i + 3
        LOAD
        DUP
        ADD
        PUSH 3
        ADD
        PUSH PRIME
        STORE
        PUSH PRIME      ; output the prime
        LOAD
        OUT
        PUSH COUNT      ; count = count + 1
        LOAD
        PUSH 1
        ADD
        PUSH COUNT
        STORE
        PUSH I          ; k = i + prime
        LOAD
        PUSH PRIME
        LOAD
        ADD
        PUSH K
        STORE

INNER:  PUSH K          ; while k < LIMIT: flags[k] = 0; k += prime
        LOAD
        PUSH LIMIT
        LT
        JZ NEXT
        PUSH 0
        PUSH K
        LOAD
        PUSH FLAGS
        ADD
        STORE
        PUSH K
        LOAD
        PUSH PRIME
        LOAD
        ADD
        PUSH K
        STORE
        JMP INNER

NEXT:   PUSH I          ; i = i + 1
        LOAD
        PUSH 1
        ADD
        PUSH I
        STORE
        JMP OUTER

DONE:   PUSH COUNT      ; output the prime count, then halt
        LOAD
        OUT
        HALT
"""


def sieve_program(size: int = DEFAULT_SIZE) -> Program:
    """Assemble the sieve program for the given *size*."""
    return assemble_stack_program(sieve_assembly(size))


# ---------------------------------------------------------------------------
# Reference model
# ---------------------------------------------------------------------------


def expected_primes(size: int = DEFAULT_SIZE) -> list[int]:
    """Primes the sieve finds: every prime ``2*i + 3`` for ``i`` in 0..size.

    Computed directly (trial division) so that the simulators are checked
    against an independent implementation of the same definition.
    """
    primes = []
    for i in range(size + 1):
        candidate = 2 * i + 3
        is_prime = all(candidate % d for d in range(2, int(candidate ** 0.5) + 1))
        if is_prime:
            primes.append(candidate)
    return primes


def expected_outputs(size: int = DEFAULT_SIZE) -> list[int]:
    """The exact output sequence: each prime, then the count of primes."""
    primes = expected_primes(size)
    return primes + [len(primes)]


@dataclass(frozen=True)
class SieveWorkload:
    """A fully prepared sieve workload for benchmarks and tests."""

    size: int
    program: Program
    instructions_executed: int
    outputs: list[int]

    @property
    def cycles_needed(self) -> int:
        from repro.machines.stack_machine import cycles_for_instructions

        return cycles_for_instructions(self.instructions_executed)


def prepare_sieve_workload(size: int = DEFAULT_SIZE) -> SieveWorkload:
    """Assemble the sieve and measure it with the ISP golden model."""
    program = sieve_program(size)
    result = StackIspSimulator(program).run()
    return SieveWorkload(
        size=size,
        program=program,
        instructions_executed=result.instructions_executed,
        outputs=list(result.outputs),
    )
