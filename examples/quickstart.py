"""Quickstart: write a specification, simulate it, inspect everything.

This example builds the smallest interesting design — an 8-bit counter with
a memory-mapped output port — in the ASIM II specification language, runs it
on both backends (the ASIM-style interpreter and the ASIM II-style
compiler), shows the per-cycle trace, and prints the code the compiler
generated.

Run with:  python examples/quickstart.py
"""

from repro import Simulator, compare_backends, parse_spec

SPEC = """\
# eight bit counter with memory mapped output
count* next wrapped outport .
A next 4 count 1          { count + 1 }
A wrapped 8 next 255      { wrap at eight bits }
M count 0 wrapped 1 1     { the count register, written every cycle }
M outport 1 count 3 2     { drive the count onto the integer output port }
.
"""


def main() -> None:
    spec = parse_spec(SPEC)
    print("Parsed specification:", spec.summary())
    print()

    # --- simulate on the compiled backend (the paper's ASIM II) ----------------
    simulator = Simulator(spec, backend="compiled")
    result = simulator.run(cycles=20, trace=True)
    print("First twenty cycles of the traced 'count' register:")
    print(" ", result.trace.values_of("count"))
    print("Values seen on the output port:", result.output_integers()[:10], "...")
    print()

    # --- the same run on the interpreter (the paper's ASIM) --------------------
    comparison = compare_backends(spec, cycles=2000)
    print("Backend comparison over 2000 cycles:")
    print(" ", comparison.summary())
    print()

    # --- statistics (Section 1.4: cycles, memory accesses, ...) ----------------
    print("Simulation statistics:")
    print(result.stats.summary())
    print()

    # --- the generated simulator program ---------------------------------------
    print("Generated Python simulator (first 30 lines):")
    for line in simulator.generated_source.splitlines()[:30]:
        print("   ", line)


if __name__ == "__main__":
    main()
