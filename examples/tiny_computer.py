"""The Appendix-F tiny computer: assemble, simulate, trace and synthesise.

The 10-bit accumulator machine has five instructions (LD, ST, BR, BB, SU)
and 128 words of memory.  Its only arithmetic instruction is subtract, so
the bundled program divides two numbers by repeated subtraction and writes
the quotient to the memory-mapped output cell (address 127).

Run with:  python examples/tiny_computer.py [dividend divisor]
"""

import sys

from repro import Simulator, TraceOptions
from repro.machines.tiny_computer import (
    build_tiny_computer,
    division_assembly,
    prepare_division_workload,
)
from repro.synth import bill_of_materials


def main(dividend: int = 100, divisor: int = 7) -> None:
    # --- the program ---------------------------------------------------------------
    print("Assembly program (division by repeated subtraction):")
    print(division_assembly(dividend, divisor))

    workload = prepare_division_workload(dividend, divisor)
    machine = build_tiny_computer(workload.program, trace=("pc", "ac", "borrow"))
    print(f"The ISP golden model executed {workload.instructions_executed} "
          f"instructions; the RTL machine needs {workload.cycles_needed} cycles.")
    print()

    # --- simulate with a short trace window -----------------------------------------
    result = Simulator(machine.spec, backend="compiled").run(
        cycles=workload.cycles_needed,
        trace=TraceOptions(trace_cycles=True),
    )
    print("First 24 cycles (pc / ac / borrow):")
    for record in result.trace.cycles[:24]:
        print(f"  {record.render()}")
    print()

    quotient = result.output_integers()
    print(f"{dividend} divided by {divisor} -> output {quotient} "
          f"(expected {dividend // divisor})")
    assert quotient == [dividend // divisor]
    print()

    # --- Section 5.3: what it would take to build this machine -----------------------
    print("Bill of materials for a hardware prototype (Appendix F style):")
    print(bill_of_materials(machine.spec).render())


if __name__ == "__main__":
    if len(sys.argv) >= 3:
        main(int(sys.argv[1]), int(sys.argv[2]))
    else:
        main()
