"""Hardware construction: from specification to wiring list and parts.

Section 5.3 of the paper: "A hardware circuit can be easily built from a
hardware specification in ASIM II.  Essentially, ASIM II is a list of
hardware components with the wiring interconnection specified by the names
of the components and their bit fields."  This example prints exactly those
artifacts — the wiring list and the bill of materials — for every bundled
machine, plus an activity profile showing which parts of the stack machine
actually toggle while the sieve runs.

Run with:  python examples/hardware_netlist.py
"""

from repro.analysis import profile_activity
from repro.machines import all_machines, prepare_sieve_workload
from repro.machines.stack_machine import build_stack_machine_spec
from repro.synth import bill_of_materials, extract_netlist


def survey_all_machines() -> None:
    print("Bill of materials for every bundled machine:")
    print(f"  {'machine':<24s} {'components':>10s} {'wires':>6s} {'packages':>9s}")
    for entry in all_machines():
        spec = entry.build()
        netlist = extract_netlist(spec)
        bom = bill_of_materials(spec)
        print(f"  {entry.name:<24s} {len(spec.components):>10d} "
              f"{len(netlist.wires):>6d} {bom.total_packages:>9d}")
    print()


def detail_counter() -> None:
    from repro.machines import build_counter_spec

    spec = build_counter_spec(width_bits=4)
    print("Wiring list for the 4-bit counter:")
    print(extract_netlist(spec).render_wiring_list())
    print()
    print(bill_of_materials(spec).render())
    print()


def profile_stack_machine() -> None:
    workload = prepare_sieve_workload(6)
    spec = build_stack_machine_spec(workload.program)
    profile = profile_activity(spec, cycles=workload.cycles_needed)
    print("Activity profile of the stack machine while sieving:")
    print(profile.render())


if __name__ == "__main__":
    survey_all_machines()
    detail_counter()
    profile_stack_machine()
